//! Plain-text aligned tables for harness output.

use std::fmt::Write as _;

/// A simple column-aligned table printed to stdout.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (shorter rows are padded with empty cells).
    pub fn add_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders the table with column alignment.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let measure = |widths: &mut Vec<usize>, row: &[String]| {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        };
        measure(&mut widths, &self.headers);
        for row in &self.rows {
            measure(&mut widths, row);
        }

        let mut out = String::new();
        let write_row = |out: &mut String, row: &[String]| {
            for (i, width) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(out, "{cell:>width$}  ");
            }
            let _ = writeln!(out);
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with sensible precision for table cells.
pub fn fmt_f64(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

/// Formats large counts the way the paper does (`≈ 1.5G`, `≈ 2M`, plain
/// numbers below 100k).
pub fn fmt_big(x: f64) -> String {
    if x >= 1e9 {
        format!("~{:.1}G", x / 1e9)
    } else if x >= 1e6 {
        format!("~{:.1}M", x / 1e6)
    } else if x >= 1e5 {
        format!("~{:.0}k", x / 1e3)
    } else {
        format!("{}", x.round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.add_row(vec!["x".into(), "1".into()]);
        t.add_row(vec!["longer".into(), "23".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        // All data lines have equal length (alignment).
        assert!(lines[2].trim_end().len() <= lines[3].trim_end().len() + 6);
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(&["a", "b", "c"]);
        t.add_row(vec!["1".into()]);
        assert!(t.render().lines().count() == 3);
    }

    #[test]
    fn big_number_formatting() {
        assert_eq!(fmt_big(1_500_000_000.0), "~1.5G");
        assert_eq!(fmt_big(2_000_000.0), "~2.0M");
        assert_eq!(fmt_big(137_000.0), "~137k");
        assert_eq!(fmt_big(968.0), "968");
    }
}
