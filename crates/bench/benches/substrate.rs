//! Criterion micro-benchmarks for the graph substrate: the primitives
//! whose cost model Theorem 4's `Õ(|Q||E|)` analysis is built on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::SeedableRng;

use mwc_datasets::realworld;
use mwc_graph::traversal::bfs::BfsWorkspace;
use mwc_graph::traversal::dijkstra::{dijkstra, multi_source_dijkstra};
use mwc_graph::{centrality, wiener};

fn bench_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("bfs");
    for name in ["email", "oregon"] {
        let si = realworld::standin(name).unwrap();
        let g = si.graph;
        group.throughput(Throughput::Elements(g.num_edges() as u64));
        let mut ws = BfsWorkspace::new();
        group.bench_with_input(BenchmarkId::new("full", name), &g, |b, g| {
            let mut src = 0u32;
            b.iter(|| {
                ws.run(g, src % g.num_nodes() as u32);
                src = src.wrapping_add(7919);
            });
        });
    }
    group.finish();
}

fn bench_dijkstra(c: &mut Criterion) {
    let si = realworld::standin("email").unwrap();
    let g = si.graph;
    let mut group = c.benchmark_group("dijkstra");
    group.throughput(Throughput::Elements(g.num_edges() as u64));
    group.bench_function("single_source_unit", |b| {
        b.iter(|| dijkstra(&g, 0, |_, _| 1.0));
    });
    let terminals: Vec<u32> = vec![1, 100, 500, 900, 1100];
    group.bench_function("multi_source_reweighted", |b| {
        let mut ws = BfsWorkspace::new();
        let dist = ws.run(&g, 0).to_vec();
        let lambda = 2.0;
        b.iter(|| {
            multi_source_dijkstra(&g, &terminals, |u, v| {
                lambda + dist[u as usize].max(dist[v as usize]) as f64 / lambda
            })
        });
    });
    group.finish();
}

fn bench_wiener(c: &mut Criterion) {
    let mut group = c.benchmark_group("wiener");
    // Typical candidate sizes for ws-q evaluation.
    for k in [16usize, 64, 256] {
        let g = mwc_graph::generators::structured::grid(k / 4, 4, false);
        group.bench_with_input(BenchmarkId::new("exact", k), &g, |b, g| {
            b.iter(|| wiener::wiener_index(g).unwrap());
        });
    }
    let big = mwc_graph::generators::structured::grid(60, 60, false);
    group.bench_function("sampled_3600", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        b.iter(|| wiener::wiener_index_sampled(&big, 32, &mut rng).unwrap());
    });
    group.finish();
}

fn bench_centrality(c: &mut Criterion) {
    let si = realworld::standin("email").unwrap();
    let g = si.graph;
    let mut group = c.benchmark_group("betweenness");
    group.sample_size(10);
    group.bench_function("sampled_64_sources", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        b.iter(|| centrality::betweenness_sampled(&g, 64, true, &mut rng));
    });
    group.finish();
}

fn bench_induced(c: &mut Criterion) {
    let si = realworld::standin("oregon").unwrap();
    let g = si.graph;
    let nodes: Vec<u32> = (0..512u32).map(|i| i * 17 % g.num_nodes() as u32).collect();
    c.bench_function("induced_subgraph_512", |b| {
        b.iter(|| g.induced(&nodes).unwrap());
    });
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    group.bench_function("barabasi_albert_50k", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        b.iter(|| mwc_graph::generators::barabasi_albert(50_000, 3, &mut rng));
    });
    group.bench_function("gnm_50k_100k", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        b.iter(|| mwc_graph::generators::gnm(50_000, 100_000, &mut rng));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_bfs,
    bench_dijkstra,
    bench_wiener,
    bench_centrality,
    bench_induced,
    bench_generators
);
criterion_main!(benches);
