//! Criterion benchmarks comparing per-query latency of all five methods
//! (the runtime side of Table 3 — the paper notes cps/ppr are limited by
//! random-walk processing time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;

use mwc_baselines::full_engine;
use mwc_bench::PAPER_METHODS;
use mwc_datasets::{realworld, workloads};

fn bench_methods(c: &mut Criterion) {
    let si = realworld::standin("email").unwrap();
    let g = si.graph;
    let engine = full_engine(&g);
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let q = workloads::distance_controlled_query(
        &g,
        &workloads::WorkloadConfig::new(10, 4.0),
        &mut rng,
    )
    .unwrap()
    .vertices;

    let mut group = c.benchmark_group("methods_email_q10");
    group.sample_size(10);
    for name in PAPER_METHODS {
        group.bench_with_input(BenchmarkId::from_parameter(name), &q, |b, q| {
            b.iter(|| engine.solve(name, q).unwrap());
        });
    }
    group.finish();
}

fn bench_rwr(c: &mut Criterion) {
    let si = realworld::standin("oregon").unwrap();
    let g = si.graph;
    c.bench_function("rwr_oregon", |b| {
        b.iter(|| {
            mwc_baselines::rwr::random_walk_with_restart(
                &g,
                &[0, 5000, 9000],
                mwc_baselines::RwrParams::default(),
            )
        });
    });
}

criterion_group!(benches, bench_methods, bench_rwr);
criterion_main!(benches);
