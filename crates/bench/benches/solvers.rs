//! Criterion benchmarks for the solver stack: Mehlhorn's Steiner
//! approximation, AdjustDistances, and end-to-end ws-q — the components
//! whose runtimes compose into Figure 5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;

use mwc_core::adjust::adjust_distances;
use mwc_core::exact::{exact_minimum, ExactConfig};
use mwc_core::steiner::mehlhorn_steiner;
use mwc_core::{WienerSteiner, WsqConfig};
use mwc_datasets::{karate, realworld, workloads};
use mwc_graph::traversal::bfs::bfs_parents;

fn bench_steiner(c: &mut Criterion) {
    let si = realworld::standin("oregon").unwrap();
    let g = si.graph;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("mehlhorn_steiner");
    for q_size in [5usize, 20, 80] {
        let q = workloads::uniform_query(&g, q_size, &mut rng)
            .unwrap()
            .vertices;
        group.bench_with_input(BenchmarkId::new("unit_weights", q_size), &q, |b, q| {
            b.iter(|| mehlhorn_steiner(&g, q, |_, _| 1.0).unwrap());
        });
    }
    group.finish();
}

fn bench_adjust(c: &mut Criterion) {
    let si = realworld::standin("oregon").unwrap();
    let g = si.graph;
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let q = workloads::uniform_query(&g, 20, &mut rng).unwrap().vertices;
    let tree = mehlhorn_steiner(&g, &q, |_, _| 1.0).unwrap();
    let bfs = bfs_parents(&g, q[0]);
    c.bench_function("adjust_distances", |b| {
        b.iter(|| adjust_distances(&g, &tree, q[0], &bfs.dist, &bfs.parent));
    });
}

fn bench_wsq(c: &mut Criterion) {
    let mut group = c.benchmark_group("wsq_end_to_end");
    group.sample_size(10);
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    for name in ["email", "oregon"] {
        let si = realworld::standin(name).unwrap();
        let g = si.graph;
        for q_size in [5usize, 10] {
            let q = workloads::uniform_query(&g, q_size, &mut rng)
                .unwrap()
                .vertices;
            let id = format!("{name}_q{q_size}");
            group.bench_with_input(BenchmarkId::new("parallel", &id), &q, |b, q| {
                let solver = WienerSteiner::new(&g);
                b.iter(|| solver.solve(q).unwrap());
            });
            group.bench_with_input(BenchmarkId::new("sequential", &id), &q, |b, q| {
                let solver = WienerSteiner::with_config(
                    &g,
                    WsqConfig {
                        parallel: false,
                        ..WsqConfig::default()
                    },
                );
                b.iter(|| solver.solve(q).unwrap());
            });
        }
    }
    group.finish();
}

fn bench_exact(c: &mut Criterion) {
    let g = karate::karate_club();
    let mut group = c.benchmark_group("exact_enumeration");
    group.sample_size(10);
    for q in [vec![0u32, 33], vec![11, 24, 25, 29]] {
        let label = format!("karate_q{}", q.len());
        group.bench_with_input(BenchmarkId::from_parameter(&label), &q, |b, q| {
            b.iter(|| exact_minimum(&g, q, None, &ExactConfig::default()).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_steiner, bench_adjust, bench_wsq, bench_exact);
criterion_main!(benches);
