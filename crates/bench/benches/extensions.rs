//! Criterion micro-benchmarks for the extension substrates: community
//! detection (§7 pipeline), the landmark distance oracle (§6.6), the
//! Steiner subroutine variants, and the LP machinery behind the §5
//! bounds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::SeedableRng;

use mwc_core::ilp::{fundamental_cycles, tree_formulation};
use mwc_core::ilp_solve::{lp_relaxation, to_lp};
use mwc_core::steiner::{steiner_tree, SteinerAlgorithm};
use mwc_datasets::realworld;
use mwc_graph::community::{cnm, label_propagation, CnmStop};
use mwc_graph::generators::karate::karate_club;
use mwc_graph::oracle::{LandmarkOracle, LandmarkStrategy};
use mwc_lp::{branch_and_bound, Cmp, LpProblem, MipConfig, SimplexConfig, Var};

fn bench_community(c: &mut Criterion) {
    let mut group = c.benchmark_group("community");
    group.sample_size(10);
    for name in ["email", "yeast"] {
        let g = realworld::standin(name).unwrap().graph;
        group.throughput(Throughput::Elements(g.num_edges() as u64));
        group.bench_with_input(BenchmarkId::new("cnm_peak", name), &g, |b, g| {
            b.iter(|| cnm(g, CnmStop::PeakModularity));
        });
        group.bench_with_input(BenchmarkId::new("label_propagation", name), &g, |b, g| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            b.iter(|| label_propagation(g, 20, &mut rng));
        });
    }
    group.finish();
}

fn bench_oracle(c: &mut Criterion) {
    let g = realworld::standin("oregon").unwrap().graph;
    let mut group = c.benchmark_group("oracle");
    group.throughput(Throughput::Elements(g.num_nodes() as u64));
    group.bench_function("build_16_hubs", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        b.iter(|| LandmarkOracle::build(&g, 16, LandmarkStrategy::HighestDegree, &mut rng));
    });
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let oracle = LandmarkOracle::build(&g, 16, LandmarkStrategy::HighestDegree, &mut rng);
    group.bench_function("estimate_all", |b| {
        let mut src = 1u32;
        b.iter(|| {
            let est = oracle.estimate_all(src % g.num_nodes() as u32);
            src = src.wrapping_add(7919);
            est
        });
    });
    group.finish();
}

fn bench_steiner_variants(c: &mut Criterion) {
    let g = realworld::standin("email").unwrap().graph;
    let terminals: Vec<u32> = vec![3, 97, 405, 771, 1002, 1100];
    let mut group = c.benchmark_group("steiner_variants");
    group.sample_size(20);
    group.throughput(Throughput::Elements(g.num_edges() as u64));
    for (label, alg) in [
        ("mehlhorn", SteinerAlgorithm::Mehlhorn),
        ("kmb", SteinerAlgorithm::KouMarkowskyBerman),
        ("takahashi", SteinerAlgorithm::TakahashiMatsuyama),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| steiner_tree(alg, &g, &terminals, |_, _| 1.0).unwrap());
        });
    }
    group.finish();
}

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp");
    group.sample_size(10);

    // A mid-size dense LP: 40 vars, 60 rows.
    group.bench_function("simplex_40x60", |b| {
        let mut lp = LpProblem::minimize();
        let vars: Vec<Var> = (0..40)
            .map(|i| {
                lp.add_var(format!("x{i}"), 0.0, 10.0, ((i % 7) as f64) - 3.0)
                    .unwrap()
            })
            .collect();
        for r in 0..60usize {
            let terms: Vec<(Var, f64)> = vars
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, (((i + r) % 5) as f64) - 2.0))
                .collect();
            lp.add_constraint(terms, Cmp::Le, 25.0 + r as f64).unwrap();
        }
        b.iter(|| lp.solve(&SimplexConfig::default()).unwrap());
    });

    // The Table 2 pipeline pieces on the karate club.
    let g = karate_club();
    let q = vec![11u32, 24, 25, 29];
    let cycles = fundamental_cycles(&g);
    group.bench_function("program7_karate_relaxation", |b| {
        let ip = tree_formulation(&g, &q, &cycles).unwrap();
        b.iter(|| lp_relaxation(&ip, &SimplexConfig::default()).unwrap());
    });
    group.bench_function("program7_karate_mip_50_nodes", |b| {
        let ip = tree_formulation(&g, &q, &cycles).unwrap();
        let (lp, bins) = to_lp(&ip).unwrap();
        let cfg = MipConfig {
            max_nodes: 50,
            ..MipConfig::default()
        };
        b.iter(|| branch_and_bound(&lp, &bins, &cfg).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_community,
    bench_oracle,
    bench_steiner_variants,
    bench_lp
);
criterion_main!(benches);
