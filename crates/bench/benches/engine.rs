//! The amortization win: per-query solver construction vs. `QueryEngine`
//! reuse over a 100-query batch (the serving pattern of §6 — many query
//! sets against one fixed graph).
//!
//! Three configurations on a Barabási–Albert graph:
//!
//! * `fresh_per_query` — the legacy pattern: every query pays for new BFS
//!   workspaces (and, for the approximate solver, a full oracle build);
//! * `engine_reuse` — one `QueryEngine` serves the whole batch from its
//!   workspace pool and shared caches;
//! * `engine_batch` — same, through the parallel `solve_batch` entry.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::{Rng, SeedableRng};

use mwc_baselines::full_engine;
use mwc_core::wsq_approx::{ApproxWienerSteiner, ApproxWsqConfig};
use mwc_core::{minimum_wiener_connector, QueryOptions};
use mwc_graph::generators::barabasi_albert;
use mwc_graph::NodeId;

const QUERIES: usize = 100;

fn queries(n_nodes: usize) -> Vec<Vec<NodeId>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    (0..QUERIES)
        .map(|_| {
            let size = rng.gen_range(3..=6usize);
            let mut q: Vec<NodeId> = Vec::new();
            while q.len() < size {
                let v = rng.gen_range(0..n_nodes as NodeId);
                if !q.contains(&v) {
                    q.push(v);
                }
            }
            q
        })
        .collect()
}

fn bench_amortization(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let n = 2000;
    let g = barabasi_albert(n, 3, &mut rng);
    let qs = queries(n);

    let mut group = c.benchmark_group("engine_amortization_ba2000_100q");
    group.sample_size(10);
    group.throughput(Throughput::Elements(QUERIES as u64));

    group.bench_with_input(BenchmarkId::new("ws-q", "fresh_per_query"), &qs, |b, qs| {
        b.iter(|| {
            for q in qs {
                minimum_wiener_connector(&g, q).unwrap();
            }
        });
    });
    group.bench_with_input(BenchmarkId::new("ws-q", "engine_reuse"), &qs, |b, qs| {
        let engine = full_engine(&g);
        b.iter(|| {
            for q in qs {
                engine.solve("ws-q", q).unwrap();
            }
        });
    });
    group.bench_with_input(BenchmarkId::new("ws-q", "engine_batch"), &qs, |b, qs| {
        let engine = full_engine(&g);
        let opts = QueryOptions::default();
        b.iter(|| engine.solve_batch("ws-q", qs, &opts));
    });

    // The approximate solver is where amortization bites hardest: the
    // legacy pattern rebuilds the 16-landmark oracle (16 BFS) per query.
    group.bench_with_input(
        BenchmarkId::new("ws-q-approx", "fresh_per_query"),
        &qs,
        |b, qs| {
            b.iter(|| {
                for q in qs {
                    let mut oracle_rng = rand::rngs::StdRng::seed_from_u64(0x5EED);
                    let solver =
                        ApproxWienerSteiner::build(&g, ApproxWsqConfig::default(), &mut oracle_rng);
                    solver.solve(q).unwrap();
                }
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("ws-q-approx", "engine_reuse"),
        &qs,
        |b, qs| {
            let engine = full_engine(&g);
            engine.landmark_oracle(); // warm outside the timer, like a server
            b.iter(|| {
                for q in qs {
                    engine.solve("ws-q-approx", q).unwrap();
                }
            });
        },
    );
    group.finish();
}

criterion_group!(benches, bench_amortization);
criterion_main!(benches);
