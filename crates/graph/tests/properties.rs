//! Property-based tests for the graph substrate.

use proptest::prelude::*;

use mwc_graph::connectivity::{connected_components, is_connected, is_connected_subset};
use mwc_graph::traversal::bfs::{bfs_distances, bfs_parents, path_from_parents};
use mwc_graph::traversal::dijkstra::dijkstra;
use mwc_graph::wiener::{distance_sum_from, wiener_index};
use mwc_graph::{centrality, Graph, GraphBuilder, NodeId, INF_DIST};

/// Strategy: an arbitrary (possibly disconnected) simple graph with
/// 1..40 vertices.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        1usize..40,
        proptest::collection::vec((any::<u32>(), any::<u32>()), 0..120),
    )
        .prop_map(|(n, raw)| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in raw {
                let _ = b.add_edge(u % n as u32, v % n as u32);
            }
            b.build()
        })
}

/// Strategy: a connected graph (random tree + extra edges).
fn arb_connected_graph() -> impl Strategy<Value = Graph> {
    (2usize..40, any::<u64>()).prop_map(|(n, seed)| {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        for v in 1..n as NodeId {
            b.add_edge(rng.gen_range(0..v), v).unwrap();
        }
        for _ in 0..rng.gen_range(0..2 * n) {
            b.add_edge(rng.gen_range(0..n as NodeId), rng.gen_range(0..n as NodeId))
                .unwrap();
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// CSR adjacency is symmetric, sorted, deduplicated, loop-free.
    #[test]
    fn csr_invariants(g in arb_graph()) {
        for v in g.nodes() {
            let nbrs = g.neighbors(v);
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "sorted+dedup");
            prop_assert!(!nbrs.contains(&v), "no self-loop");
            for &u in nbrs {
                prop_assert!(g.neighbors(u).contains(&v), "symmetry {u}<->{v}");
            }
        }
        let total: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(total, 2 * g.num_edges());
    }

    /// Induced subgraphs never shorten distances.
    #[test]
    fn induced_distances_dominate(g in arb_connected_graph(), pick in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(pick);
        let n = g.num_nodes();
        let size = rng.gen_range(1..=n);
        let mut set: Vec<NodeId> = (0..size).map(|_| rng.gen_range(0..n as NodeId)).collect();
        set.sort_unstable();
        set.dedup();
        let sub = g.induced(&set).unwrap();
        let src_local = 0 as NodeId;
        let src_global = sub.to_global(src_local);
        let d_sub = bfs_distances(sub.graph(), src_local);
        let d_g = bfs_distances(&g, src_global);
        for local in 0..sub.num_nodes() as NodeId {
            let global = sub.to_global(local);
            if d_sub[local as usize] != INF_DIST {
                prop_assert!(d_sub[local as usize] >= d_g[global as usize]);
            }
        }
    }

    /// BFS and unit-weight Dijkstra agree everywhere.
    #[test]
    fn bfs_matches_unit_dijkstra(g in arb_graph()) {
        let d_bfs = bfs_distances(&g, 0);
        let d_dij = dijkstra(&g, 0, |_, _| 1.0);
        for (v, &d) in d_bfs.iter().enumerate() {
            if d == INF_DIST {
                prop_assert!(d_dij.dist[v].is_infinite());
            } else {
                prop_assert_eq!(d as f64, d_dij.dist[v]);
            }
        }
    }

    /// BFS parents reconstruct paths of exactly the reported length.
    #[test]
    fn bfs_paths_have_reported_length(g in arb_connected_graph()) {
        let r = bfs_parents(&g, 0);
        for t in 0..g.num_nodes() as NodeId {
            let p = path_from_parents(&r.parent, 0, t).unwrap();
            prop_assert_eq!(p.len() as u32 - 1, r.dist[t as usize]);
            for w in p.windows(2) {
                prop_assert!(g.has_edge(w[0], w[1]));
            }
        }
    }

    /// The triangle inequality holds for BFS distances.
    #[test]
    fn triangle_inequality(g in arb_connected_graph(), seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = g.num_nodes() as NodeId;
        let (a, b, c) = (rng.gen_range(0..n), rng.gen_range(0..n), rng.gen_range(0..n));
        let da = bfs_distances(&g, a);
        let db = bfs_distances(&g, b);
        prop_assert!(da[c as usize] <= da[b as usize] + db[c as usize]);
    }

    /// W(G) equals half the sum of all single-source distance sums.
    #[test]
    fn wiener_consistent_with_row_sums(g in arb_connected_graph()) {
        let w = wiener_index(&g).unwrap();
        let rows: u64 = g.nodes().map(|v| distance_sum_from(&g, v).unwrap()).sum();
        prop_assert_eq!(w, rows / 2);
    }

    /// Unnormalized betweenness sums to W(G) - C(n, 2) on connected graphs
    /// (every pair spreads d(s,t) - 1 units over interior vertices).
    #[test]
    fn betweenness_mass_conservation(g in arb_connected_graph()) {
        let n = g.num_nodes() as u64;
        let w = wiener_index(&g).unwrap();
        let bc = centrality::betweenness(&g, false);
        let total: f64 = bc.iter().sum();
        let expect = (w - n * (n - 1) / 2) as f64;
        prop_assert!((total - expect).abs() < 1e-6 * expect.max(1.0),
            "bc mass {total} vs {expect}");
    }

    /// Component labelling agrees with pairwise reachability.
    #[test]
    fn components_match_reachability(g in arb_graph()) {
        let comps = connected_components(&g);
        let d0 = bfs_distances(&g, 0);
        for (v, &d) in d0.iter().enumerate() {
            prop_assert_eq!(comps.same(0, v as NodeId), d != INF_DIST);
        }
        prop_assert_eq!(comps.count == 1, is_connected(&g));
    }

    /// `is_connected_subset` agrees with materializing the subgraph.
    #[test]
    fn subset_connectivity_matches_materialized(g in arb_graph(), seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = g.num_nodes();
        let size = rng.gen_range(1..=n);
        let set: Vec<NodeId> = (0..size).map(|_| rng.gen_range(0..n as NodeId)).collect();
        let quick = is_connected_subset(&g, &set).unwrap();
        let sub = g.induced(&set).unwrap();
        prop_assert_eq!(quick, is_connected(sub.graph()));
    }

    /// Edge-list round trip through the text format is lossless.
    #[test]
    fn io_round_trip(g in arb_graph()) {
        let mut buf = Vec::new();
        mwc_graph::io::write_edge_list(&g, &mut buf).unwrap();
        let loaded = mwc_graph::io::read_edge_list(std::io::BufReader::new(buf.as_slice())).unwrap();
        prop_assert_eq!(loaded.graph.num_edges(), g.num_edges());
        // Isolated vertices are not representable in an edge list; every
        // edge must survive with original ids recoverable.
        for (u, v) in loaded.graph.edges() {
            let (ou, ov) = (loaded.original_id[u as usize] as NodeId,
                            loaded.original_id[v as usize] as NodeId);
            prop_assert!(g.has_edge(ou, ov));
        }
    }
}

/// Strategy: a random graph from one of the paper's evaluation families —
/// Erdős–Rényi `G(n, p)`, Barabási–Albert, or a planted partition (SBM) —
/// sized past the direction-optimizing cutoff so `run_auto` really takes
/// the bitset path.
fn arb_family_graph() -> impl Strategy<Value = Graph> {
    (0usize..3, 280usize..400, any::<u64>()).prop_map(|(family, n, seed)| {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        match family {
            0 => mwc_graph::generators::gnp(n, 0.02, &mut rng),
            1 => mwc_graph::generators::barabasi_albert(n, 3, &mut rng),
            _ => {
                let third = n / 3;
                mwc_graph::generators::planted_partition(
                    &[third, third, n - 2 * third],
                    0.08,
                    0.005,
                    &mut rng,
                )
                .graph
            }
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Direction-optimizing BFS distances are bit-identical to plain BFS
    /// on every graph family (ER / BA / SBM), connected or not.
    #[test]
    fn direction_optimizing_bfs_parity(g in arb_family_graph(), seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        use mwc_graph::traversal::bfs::BfsWorkspace;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut plain = BfsWorkspace::new();
        let mut auto = BfsWorkspace::new();
        for _ in 0..4 {
            let s = rng.gen_range(0..g.num_nodes() as NodeId);
            let want: Vec<u32> = plain.run(&g, s).to_vec();
            let got: Vec<u32> = auto.run_auto(&g, s).to_vec();
            prop_assert_eq!(want, got, "source {}", s);
        }
    }

    /// Multi-source batched BFS matches per-source plain BFS lane by lane
    /// on every graph family.
    #[test]
    fn multi_source_bfs_parity(g in arb_family_graph(), seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        use mwc_graph::traversal::bfs::{BfsWorkspace, MsBfsWorkspace};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = g.num_nodes() as NodeId;
        let lanes = rng.gen_range(1..=64usize);
        let sources: Vec<NodeId> = (0..lanes).map(|_| rng.gen_range(0..n)).collect();
        let mut ms = MsBfsWorkspace::new();
        ms.run(&g, &sources);
        let mut single = BfsWorkspace::new();
        for (lane, &s) in sources.iter().enumerate() {
            let want: Vec<u32> = single.run(&g, s).to_vec();
            prop_assert_eq!(ms.lane_distances(lane), want, "lane {} source {}", lane, s);
            prop_assert_eq!(ms.distance_sum(lane), single.last_run_distance_sum());
        }
    }

    /// Parent trees reconstructed from the batched (multi-source)
    /// distance matrix have the same per-root distance profile as plain
    /// per-root BFS on every graph family: walking each vertex's
    /// canonical parent chain reaches the root in exactly `d(root, v)`
    /// steps, and the reconstruction is identical whether the distances
    /// came from the batched sweep or a single-source run.
    #[test]
    fn batched_parent_trees_preserve_distance_profiles(
        g in arb_family_graph(),
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        use mwc_graph::traversal::bfs::{canonical_parents, BfsWorkspace, MsBfsWorkspace};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = g.num_nodes() as NodeId;
        let lanes = rng.gen_range(1..=16usize);
        let sources: Vec<NodeId> = (0..lanes).map(|_| rng.gen_range(0..n)).collect();
        let mut ms = MsBfsWorkspace::new();
        ms.run(&g, &sources);
        let mut single = BfsWorkspace::new();
        for (lane, &s) in sources.iter().enumerate() {
            let dist: Vec<u32> = single.run(&g, s).to_vec();
            let batched = ms.lane_parents(&g, lane);
            // Reconstruction is a pure function of the (identical)
            // distances: per-root and batched parents coincide.
            prop_assert_eq!(&batched, &canonical_parents(&g, &dist));
            // Tree distance profile == BFS distance profile: every
            // reachable vertex sits at depth d(s, v) in the parent tree.
            for v in 0..n {
                if dist[v as usize] == INF_DIST {
                    prop_assert!(path_from_parents(&batched, s, v).is_none());
                    continue;
                }
                let path = path_from_parents(&batched, s, v)
                    .expect("reachable vertex has a parent chain");
                prop_assert_eq!(
                    path.len() as u32 - 1, dist[v as usize],
                    "vertex {} depth mismatch", v
                );
                for w in path.windows(2) {
                    prop_assert!(g.has_edge(w[0], w[1]));
                }
            }
        }
    }

    /// The parallel multi-source Wiener index equals the sequential
    /// per-source reference, and degree ordering preserves both distances
    /// and the Wiener index (it is an isomorphism).
    #[test]
    fn kernel_wiener_and_layout_parity(g in arb_family_graph()) {
        prop_assert_eq!(wiener_index(&g), mwc_graph::wiener::wiener_index_sequential(&g));
        let (h, perm) = g.degree_ordered();
        prop_assert_eq!(wiener_index(&g), wiener_index(&h));
        // Spot-check distance preservation under the relabeling.
        let d_g = bfs_distances(&g, 0);
        let d_h = bfs_distances(&h, perm.to_new(0));
        for v in 0..g.num_nodes() as NodeId {
            prop_assert_eq!(d_g[v as usize], d_h[perm.to_new(v) as usize]);
        }
    }
}
