//! Property-based parity suite for the delta-stepping SSSP kernels.
//!
//! Delta-stepping is only worth having if it is *exactly* Dijkstra on
//! integer weights — every test here pins bit-identical distance arrays
//! against the sequential reference, across the paper's evaluation
//! families (ER / BA / SBM), for single-source and batched multi-source
//! runs, and across the Δ spectrum (Δ = 1 degenerates to Dijkstra's
//! priority order, Δ ≥ max weight degenerates to Bellman–Ford rounds).

use proptest::prelude::*;

use mwc_graph::traversal::bfs::{BfsWorkspace, MsBfsWorkspace};
use mwc_graph::traversal::delta::{DeltaWorkspace, MsDeltaWorkspace};
use mwc_graph::traversal::dijkstra::DijkstraWorkspace;
use mwc_graph::{Graph, NodeId};

/// Reattach deterministic hash weights in `1..=max_weight` to a graph's
/// topology (the same scheme the service's `wba:` source uses).
fn weighted_version(g: &Graph, max_weight: u32) -> Graph {
    let edges: Vec<(NodeId, NodeId, u32)> = g
        .edges()
        .map(|(u, v)| {
            let h = (u as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (v as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
            (u, v, (h % max_weight as u64) as u32 + 1)
        })
        .collect();
    Graph::from_weighted_edges(g.num_nodes(), &edges).unwrap()
}

/// Strategy: a weighted random graph from one of the paper's evaluation
/// families — ER `G(n, p)`, Barabási–Albert, or a planted partition —
/// with hash weights in `1..=max_weight` for a sampled `max_weight`.
fn arb_weighted_family_graph() -> impl Strategy<Value = Graph> {
    (0usize..3, 60usize..200, any::<u64>(), 2u32..64).prop_map(|(family, n, seed, maxw)| {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let base = match family {
            0 => mwc_graph::generators::gnp(n, 0.04, &mut rng),
            1 => mwc_graph::generators::barabasi_albert(n, 3, &mut rng),
            _ => {
                let third = n / 3;
                mwc_graph::generators::planted_partition(
                    &[third, third, n - 2 * third],
                    0.1,
                    0.01,
                    &mut rng,
                )
                .graph
            }
        };
        weighted_version(&base, maxw)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Single-source delta-stepping is bit-identical to Dijkstra on every
    /// weighted family, at the auto-tuned Δ and across the Δ spectrum:
    /// Δ = 1 (pure bucket-per-distance), Δ = mean weight, and a Δ larger
    /// than any weight (one giant bucket, Bellman–Ford-style rounds).
    #[test]
    fn delta_matches_dijkstra_across_the_delta_spectrum(
        g in arb_weighted_family_graph(),
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut dij = DijkstraWorkspace::new();
        let mut delta = DeltaWorkspace::new();
        let huge = g.max_edge_weight().saturating_mul(4).max(1);
        for _ in 0..3 {
            let s = rng.gen_range(0..g.num_nodes() as NodeId);
            let want: Vec<u32> = dij.run(&g, s).to_vec();
            let auto: Vec<u32> = delta.run(&g, s).to_vec();
            prop_assert_eq!(&auto, &want, "auto delta, source {}", s);
            prop_assert_eq!(delta.last_run_distance_sum(), dij.last_run_distance_sum());
            for d in [1, g.mean_edge_weight().max(1), huge] {
                let got: Vec<u32> = delta.run_with_delta(&g, s, d).to_vec();
                prop_assert_eq!(&got, &want, "delta {}, source {}", d, s);
            }
        }
    }

    /// The batched multi-source delta-stepping kernel matches per-source
    /// Dijkstra lane by lane — distances, distance sums, and the
    /// canonical parent trees derived from them.
    #[test]
    fn multi_source_delta_parity(
        g in arb_weighted_family_graph(),
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        use mwc_graph::traversal::bfs::canonical_parents;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = g.num_nodes() as NodeId;
        let lanes = rng.gen_range(1..=64usize);
        let sources: Vec<NodeId> = (0..lanes).map(|_| rng.gen_range(0..n)).collect();
        let mut ms = MsDeltaWorkspace::new();
        ms.run(&g, &sources);
        let mut single = DijkstraWorkspace::new();
        for (lane, &s) in sources.iter().enumerate() {
            let want: Vec<u32> = single.run(&g, s).to_vec();
            prop_assert_eq!(ms.lane_distances(lane), want.clone(), "lane {} source {}", lane, s);
            prop_assert_eq!(ms.distance_sum(lane), single.last_run_distance_sum());
            prop_assert_eq!(ms.lane_parents(&g, lane), canonical_parents(&g, &want));
        }
    }

    /// Small explicit Δ values agree with the auto-tuned batched run —
    /// bucket granularity must never change answers.
    #[test]
    fn multi_source_delta_is_delta_invariant(
        g in arb_weighted_family_graph(),
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = g.num_nodes() as NodeId;
        let sources: Vec<NodeId> = (0..rng.gen_range(1..=16usize))
            .map(|_| rng.gen_range(0..n))
            .collect();
        let mut auto = MsDeltaWorkspace::new();
        auto.run(&g, &sources);
        let want = auto.all_lane_distances();
        let mut pinned = MsDeltaWorkspace::new();
        for d in [1, g.max_edge_weight().saturating_mul(2).max(1)] {
            pinned.run_with_delta(&g, &sources, d);
            prop_assert_eq!(pinned.all_lane_distances(), want.clone(), "delta {}", d);
        }
    }
}

/// Strategy: an *unweighted* family graph (for the weight-1 cross-check).
fn arb_family_graph() -> impl Strategy<Value = Graph> {
    (0usize..3, 60usize..200, any::<u64>()).prop_map(|(family, n, seed)| {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        match family {
            0 => mwc_graph::generators::gnp(n, 0.04, &mut rng),
            1 => mwc_graph::generators::barabasi_albert(n, 3, &mut rng),
            _ => {
                let third = n / 3;
                mwc_graph::generators::planted_partition(
                    &[third, third, n - 2 * third],
                    0.1,
                    0.01,
                    &mut rng,
                )
                .graph
            }
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// On a weight-1 graph, delta-stepping reduces to BFS: single-source
    /// and batched runs are bit-identical to the BFS kernels.
    #[test]
    fn weight_one_delta_matches_bfs(g in arb_family_graph(), seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let w = weighted_version(&g, 1);
        prop_assert!(w.is_weighted());
        prop_assert_eq!(w.mean_edge_weight(), if w.num_edges() == 0 { 0 } else { 1 });
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = g.num_nodes() as NodeId;
        let mut bfs = BfsWorkspace::new();
        let mut delta = DeltaWorkspace::new();
        for _ in 0..3 {
            let s = rng.gen_range(0..n);
            let want: Vec<u32> = bfs.run(&g, s).to_vec();
            prop_assert_eq!(delta.run(&w, s).to_vec(), want, "source {}", s);
        }
        let sources: Vec<NodeId> = (0..rng.gen_range(1..=32usize))
            .map(|_| rng.gen_range(0..n))
            .collect();
        let mut ms_bfs = MsBfsWorkspace::new();
        ms_bfs.run(&g, &sources);
        let mut ms_delta = MsDeltaWorkspace::new();
        ms_delta.run(&w, &sources);
        for lane in 0..sources.len() {
            prop_assert_eq!(ms_delta.lane_distances(lane), ms_bfs.lane_distances(lane));
            prop_assert_eq!(ms_delta.distance_sum(lane), ms_bfs.distance_sum(lane));
        }
    }

    /// Weighted graphs survive degree ordering: the permuted graph keeps
    /// its weights and delta-stepping distances transport through the
    /// relabeling.
    #[test]
    fn weighted_degree_ordering_preserves_distances(g in arb_weighted_family_graph()) {
        let (h, perm) = g.degree_ordered();
        prop_assert!(h.is_weighted());
        let mut a = DeltaWorkspace::new();
        let mut b = DeltaWorkspace::new();
        let d_g: Vec<u32> = a.run(&g, 0).to_vec();
        let d_h = b.run(&h, perm.to_new(0));
        for v in 0..g.num_nodes() as NodeId {
            prop_assert_eq!(d_g[v as usize], d_h[perm.to_new(v) as usize]);
        }
    }
}
