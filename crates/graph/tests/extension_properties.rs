//! Property-based tests for the extension substrates: community
//! detection and the landmark distance oracle.

use proptest::prelude::*;

use mwc_graph::community::{
    cnm, communities_spanned, label_propagation, modularity, rand_index, CnmStop,
};
use mwc_graph::oracle::{LandmarkOracle, LandmarkStrategy};
use mwc_graph::traversal::bfs::bfs_distances;
use mwc_graph::{Graph, GraphBuilder, NodeId, INF_DIST};

/// Strategy: an arbitrary (possibly disconnected) simple graph with
/// 1..30 vertices.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        1usize..30,
        proptest::collection::vec((any::<u32>(), any::<u32>()), 0..90),
    )
        .prop_map(|(n, raw)| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in raw {
                let _ = b.add_edge(u % n as u32, v % n as u32);
            }
            b.build()
        })
}

/// Strategy: a connected graph (random tree + extra edges).
fn arb_connected_graph() -> impl Strategy<Value = Graph> {
    (2usize..30, any::<u64>()).prop_map(|(n, seed)| {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        for v in 1..n as NodeId {
            b.add_edge(rng.gen_range(0..v), v).unwrap();
        }
        for _ in 0..rng.gen_range(0..2 * n) {
            b.add_edge(rng.gen_range(0..n as NodeId), rng.gen_range(0..n as NodeId))
                .unwrap();
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // --- community detection ---

    #[test]
    fn modularity_is_bounded(g in arb_graph(), seed in any::<u64>()) {
        // Q ∈ [-1/2, 1) for any labelling of any graph.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let labels: Vec<u32> = (0..g.num_nodes()).map(|_| rng.gen_range(0..4)).collect();
        if g.num_nodes() > 0 {
            let q = modularity(&g, &labels);
            prop_assert!((-0.5..1.0).contains(&q), "Q = {q}");
        }
    }

    #[test]
    fn cnm_produces_a_valid_dense_labelling(g in arb_graph()) {
        let c = cnm(&g, CnmStop::PeakModularity);
        prop_assert_eq!(c.membership.len(), g.num_nodes());
        if g.num_nodes() > 0 {
            let max = c.membership.iter().copied().max().unwrap() as usize;
            prop_assert_eq!(max + 1, c.num_communities);
        }
        // Reported modularity matches an independent recomputation.
        prop_assert!((c.modularity - modularity(&g, &c.membership)).abs() < 1e-9);
    }

    #[test]
    fn cnm_never_scores_below_the_singleton_partition(g in arb_graph()) {
        // CNM starts from singletons and only applies improving merges
        // under PeakModularity, so its final Q dominates the start.
        let singletons: Vec<u32> = (0..g.num_nodes() as u32).collect();
        let start = modularity(&g, &singletons);
        let c = cnm(&g, CnmStop::PeakModularity);
        prop_assert!(c.modularity >= start - 1e-9, "{} < {start}", c.modularity);
    }

    #[test]
    fn cnm_communities_are_connected_when_graph_is(g in arb_connected_graph()) {
        // Merges only happen across edges, so every community induces a
        // connected subgraph.
        let c = cnm(&g, CnmStop::PeakModularity);
        for comm in 0..c.num_communities as u32 {
            let members = c.community(comm);
            prop_assert!(
                mwc_graph::connectivity::is_connected_subset(&g, &members).unwrap(),
                "community {comm} disconnected: {members:?}"
            );
        }
    }

    #[test]
    fn label_propagation_labelling_is_valid(g in arb_graph(), seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let c = label_propagation(&g, 30, &mut rng);
        prop_assert_eq!(c.membership.len(), g.num_nodes());
        if g.num_nodes() > 0 {
            let max = c.membership.iter().copied().max().unwrap() as usize;
            prop_assert_eq!(max + 1, c.num_communities);
        }
    }

    #[test]
    fn rand_index_is_symmetric_and_reflexive(g in arb_graph(), seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = g.num_nodes();
        let a: Vec<u32> = (0..n).map(|_| rng.gen_range(0..3)).collect();
        let b: Vec<u32> = (0..n).map(|_| rng.gen_range(0..3)).collect();
        prop_assert_eq!(rand_index(&a, &a), 1.0);
        prop_assert_eq!(rand_index(&a, &b), rand_index(&b, &a));
        let ri = rand_index(&a, &b);
        prop_assert!((0.0..=1.0).contains(&ri));
    }

    #[test]
    fn communities_spanned_is_monotone_in_the_query(g in arb_graph(), seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = g.num_nodes();
        let labels: Vec<u32> = (0..n).map(|_| rng.gen_range(0..4)).collect();
        let q: Vec<NodeId> = (0..n.min(6)).map(|_| rng.gen_range(0..n as NodeId)).collect();
        if !q.is_empty() {
            let all = communities_spanned(&labels, &q);
            let fewer = communities_spanned(&labels, &q[..q.len() - 1]);
            prop_assert!(fewer <= all);
        }
    }

    // --- landmark oracle ---

    #[test]
    fn oracle_bounds_sandwich_bfs(g in arb_graph(), k in 1usize..6, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for strategy in [
            LandmarkStrategy::Random,
            LandmarkStrategy::HighestDegree,
            LandmarkStrategy::FarthestFirst,
        ] {
            let oracle = LandmarkOracle::build(&g, k, strategy, &mut rng);
            for u in 0..g.num_nodes() as NodeId {
                let d = bfs_distances(&g, u);
                for v in 0..g.num_nodes() as NodeId {
                    let truth = d[v as usize];
                    let lo = oracle.lower_bound(u, v);
                    let hi = oracle.upper_bound(u, v);
                    if truth == INF_DIST {
                        prop_assert_eq!(hi, INF_DIST, "{:?}: finite bound across components", strategy);
                    } else {
                        prop_assert!(lo <= truth && truth <= hi, "{strategy:?}: {lo} ≤ {truth} ≤ {hi} fails");
                    }
                }
            }
        }
    }

    #[test]
    fn oracle_estimate_is_a_metric_upper_bound(g in arb_connected_graph(), seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let oracle = LandmarkOracle::build(&g, 3, LandmarkStrategy::HighestDegree, &mut rng);
        let n = g.num_nodes() as NodeId;
        for u in 0..n {
            prop_assert_eq!(oracle.estimate(u, u), 0);
            for v in 0..n {
                prop_assert_eq!(oracle.estimate(u, v), oracle.estimate(v, u));
            }
        }
    }

    #[test]
    fn more_landmarks_never_hurt(g in arb_connected_graph(), seed in any::<u64>()) {
        // Landmark sets are chosen independently, so compare a set with a
        // superset built deterministically: HighestDegree with k and k+2
        // (the k-set is a prefix of the (k+2)-set by construction).
        use rand::SeedableRng;
        let mut rng1 = rand::rngs::StdRng::seed_from_u64(seed);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(seed);
        let small = LandmarkOracle::build(&g, 2, LandmarkStrategy::HighestDegree, &mut rng1);
        let large = LandmarkOracle::build(&g, 4, LandmarkStrategy::HighestDegree, &mut rng2);
        let n = g.num_nodes() as NodeId;
        for u in 0..n {
            for v in 0..n {
                prop_assert!(large.upper_bound(u, v) <= small.upper_bound(u, v));
                prop_assert!(large.lower_bound(u, v) >= small.lower_bound(u, v));
            }
        }
    }
}
