//! Mutable edge-list builder producing [`Graph`]s.

use crate::csr::Graph;
use crate::error::{GraphError, Result};
use crate::NodeId;

/// Accumulates undirected edges and builds a deduplicated, sorted CSR
/// [`Graph`].
///
/// The builder is the single place where the graph invariants are
/// established: self-loops are silently dropped, duplicate edges (in either
/// orientation) are merged, adjacency lists come out sorted.
///
/// ```
/// use mwc_graph::GraphBuilder;
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(0, 1).unwrap();
/// b.add_edge(1, 0).unwrap(); // duplicate, merged
/// b.add_edge(2, 2).unwrap(); // self-loop, dropped
/// b.add_edge(2, 3).unwrap();
/// let g = b.build();
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_nodes: usize,
    /// Normalized (min, max) endpoint pairs; may contain duplicates until
    /// `build`.
    edges: Vec<(NodeId, NodeId)>,
    /// Per-edge weights aligned with `edges` (always maintained; ignored
    /// unless `weighted` — [`GraphBuilder::add_edge`] records weight 1).
    weights: Vec<u32>,
    /// Set by the first [`GraphBuilder::add_weighted_edge`]; selects the
    /// weighted CSR build (duplicates merge to the minimum weight).
    weighted: bool,
}

impl GraphBuilder {
    /// A builder for a graph with `num_nodes` vertices.
    pub fn new(num_nodes: usize) -> Self {
        GraphBuilder {
            num_nodes,
            edges: Vec::new(),
            weights: Vec::new(),
            weighted: false,
        }
    }

    /// Like [`GraphBuilder::new`], pre-allocating room for `edge_capacity`
    /// edges.
    pub fn with_capacity(num_nodes: usize, edge_capacity: usize) -> Self {
        GraphBuilder {
            num_nodes,
            edges: Vec::with_capacity(edge_capacity),
            weights: Vec::with_capacity(edge_capacity),
            weighted: false,
        }
    }

    /// Number of vertices the built graph will have.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges added so far (before deduplication).
    pub fn num_pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `{u, v}`. Self-loops are ignored.
    ///
    /// Returns an error if an endpoint is `>= num_nodes`.
    #[inline]
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<()> {
        if (u as usize) >= self.num_nodes {
            return Err(GraphError::NodeOutOfRange {
                node: u as u64,
                num_nodes: self.num_nodes,
            });
        }
        if (v as usize) >= self.num_nodes {
            return Err(GraphError::NodeOutOfRange {
                node: v as u64,
                num_nodes: self.num_nodes,
            });
        }
        if u != v {
            self.edges.push(if u < v { (u, v) } else { (v, u) });
            self.weights.push(1);
        }
        Ok(())
    }

    /// Adds an edge without bounds checks in release builds.
    ///
    /// Intended for generators that produce ids in range by construction;
    /// debug builds still assert.
    #[inline]
    pub fn add_edge_unchecked(&mut self, u: NodeId, v: NodeId) {
        debug_assert!((u as usize) < self.num_nodes && (v as usize) < self.num_nodes);
        if u != v {
            self.edges.push(if u < v { (u, v) } else { (v, u) });
            self.weights.push(1);
        }
    }

    /// Adds the undirected edge `{u, v}` with weight `w`. Self-loops are
    /// ignored, weight 0 is clamped to 1, and duplicate edges merge to the
    /// minimum weight at [`GraphBuilder::build`] time.
    ///
    /// The first weighted edge switches the builder into weighted mode; the
    /// built graph then reports `is_weighted()` (edges added via
    /// [`GraphBuilder::add_edge`] carry weight 1).
    #[inline]
    pub fn add_weighted_edge(&mut self, u: NodeId, v: NodeId, w: u32) -> Result<()> {
        if (u as usize) >= self.num_nodes {
            return Err(GraphError::NodeOutOfRange {
                node: u as u64,
                num_nodes: self.num_nodes,
            });
        }
        if (v as usize) >= self.num_nodes {
            return Err(GraphError::NodeOutOfRange {
                node: v as u64,
                num_nodes: self.num_nodes,
            });
        }
        self.weighted = true;
        if u != v {
            self.edges.push(if u < v { (u, v) } else { (v, u) });
            self.weights.push(w.max(1));
        }
        Ok(())
    }

    /// Weighted counterpart of [`GraphBuilder::add_edge_unchecked`].
    #[inline]
    pub fn add_weighted_edge_unchecked(&mut self, u: NodeId, v: NodeId, w: u32) {
        debug_assert!((u as usize) < self.num_nodes && (v as usize) < self.num_nodes);
        self.weighted = true;
        if u != v {
            self.edges.push(if u < v { (u, v) } else { (v, u) });
            self.weights.push(w.max(1));
        }
    }

    /// Finalizes the builder into a CSR [`Graph`].
    ///
    /// Runs in `O(n + m)` using two counting-sort passes (no comparison sort),
    /// then deduplicates each adjacency list in place.
    ///
    /// # Panics
    /// Panics if the graph would need more than `u32::MAX` adjacency entries
    /// (2 per undirected edge); such graphs are outside this project's scope.
    pub fn build(self) -> Graph {
        if self.weighted {
            return self.build_weighted();
        }
        let n = self.num_nodes;
        let directed = self
            .edges
            .len()
            .checked_mul(2)
            .filter(|&d| d <= u32::MAX as usize)
            .expect("graph exceeds u32::MAX adjacency entries");

        // Pass 1: degree counting (both directions).
        let mut offsets = vec![0u32; n + 1];
        for &(u, v) in &self.edges {
            offsets[u as usize + 1] += 1;
            offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }

        // Pass 2: scatter. `cursor` tracks the next free slot per vertex.
        let mut neighbors = vec![0 as NodeId; directed];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for &(u, v) in &self.edges {
            neighbors[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        drop(cursor);

        // Sort + dedup each adjacency list, compacting the arrays.
        let mut write = 0usize;
        let mut new_offsets = vec![0u32; n + 1];
        let mut read_start = 0usize;
        for v in 0..n {
            let read_end = offsets[v + 1] as usize;
            let list_start = write;
            {
                let list = &mut neighbors[read_start..read_end];
                list.sort_unstable();
            }
            let mut prev: Option<NodeId> = None;
            for i in read_start..read_end {
                let x = neighbors[i];
                if prev != Some(x) {
                    neighbors[write] = x;
                    write += 1;
                    prev = Some(x);
                }
            }
            // Keep lists contiguous: nothing between list_start..write moved.
            new_offsets[v + 1] = write as u32;
            let _ = list_start;
            read_start = read_end;
        }
        neighbors.truncate(write);
        debug_assert_eq!(write % 2, 0, "deduped adjacency must remain symmetric");

        Graph::from_csr_parts(new_offsets, neighbors)
    }

    /// Weighted CSR assembly: same two counting-sort passes, scattering
    /// `(neighbor, weight)` pairs, with duplicates merged to the minimum
    /// weight per adjacency list.
    fn build_weighted(self) -> Graph {
        let n = self.num_nodes;
        let directed = self
            .edges
            .len()
            .checked_mul(2)
            .filter(|&d| d <= u32::MAX as usize)
            .expect("graph exceeds u32::MAX adjacency entries");

        let mut offsets = vec![0u32; n + 1];
        for &(u, v) in &self.edges {
            offsets[u as usize + 1] += 1;
            offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }

        let mut entries = vec![(0 as NodeId, 0u32); directed];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for (&(u, v), &w) in self.edges.iter().zip(&self.weights) {
            entries[cursor[u as usize] as usize] = (v, w);
            cursor[u as usize] += 1;
            entries[cursor[v as usize] as usize] = (u, w);
            cursor[v as usize] += 1;
        }
        drop(cursor);

        // Sort each row by (neighbor, weight); keeping the first occurrence
        // of each neighbor then merges duplicates to their minimum weight.
        let mut neighbors = vec![0 as NodeId; directed];
        let mut weights = vec![0u32; directed];
        let mut write = 0usize;
        let mut new_offsets = vec![0u32; n + 1];
        let mut read_start = 0usize;
        for v in 0..n {
            let read_end = offsets[v + 1] as usize;
            entries[read_start..read_end].sort_unstable();
            let mut prev: Option<NodeId> = None;
            for &(nb, w) in &entries[read_start..read_end] {
                if prev != Some(nb) {
                    neighbors[write] = nb;
                    weights[write] = w;
                    write += 1;
                    prev = Some(nb);
                }
            }
            new_offsets[v + 1] = write as u32;
            read_start = read_end;
        }
        neighbors.truncate(write);
        weights.truncate(write);
        debug_assert_eq!(write % 2, 0, "deduped adjacency must remain symmetric");

        Graph::from_csr_parts_weighted(new_offsets, neighbors, weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_self_loop_removal() {
        let mut b = GraphBuilder::new(3);
        for _ in 0..5 {
            b.add_edge(0, 1).unwrap();
            b.add_edge(1, 0).unwrap();
        }
        b.add_edge(1, 1).unwrap();
        b.add_edge(1, 2).unwrap();
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn adjacency_comes_out_sorted() {
        let mut b = GraphBuilder::new(6);
        for v in [5u32, 3, 1, 4, 2] {
            b.add_edge(0, v).unwrap();
        }
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn build_empty() {
        let g = GraphBuilder::new(4).build();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn out_of_range_rejected_for_either_endpoint() {
        let mut b = GraphBuilder::new(2);
        assert!(b.add_edge(2, 0).is_err());
        assert!(b.add_edge(0, 2).is_err());
        assert!(b.add_edge(0, 1).is_ok());
    }

    #[test]
    fn weighted_build_merges_duplicates_to_min() {
        let mut b = GraphBuilder::new(4);
        b.add_weighted_edge(0, 1, 7).unwrap();
        b.add_weighted_edge(1, 0, 3).unwrap(); // duplicate, keeps min
        b.add_weighted_edge(2, 2, 9).unwrap(); // self-loop, dropped
        b.add_weighted_edge(2, 3, 0).unwrap(); // clamps to 1
        b.add_edge(1, 2).unwrap(); // unweighted add contributes weight 1
        let g = b.build();
        assert!(g.is_weighted());
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.edge_weight(0, 1), 3);
        assert_eq!(g.edge_weight(2, 3), 1);
        assert_eq!(g.edge_weight(1, 2), 1);
        assert_eq!(g.neighbor_weights(1).unwrap(), &[3, 1]);
    }

    #[test]
    fn counting_sort_matches_naive_construction() {
        // Cross-check CSR assembly against a naive adjacency-set build on a
        // pseudo-random multigraph.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 50usize;
        let mut b = GraphBuilder::new(n);
        let mut naive: Vec<std::collections::BTreeSet<NodeId>> = vec![Default::default(); n];
        for _ in 0..400 {
            let u = rng.gen_range(0..n as NodeId);
            let v = rng.gen_range(0..n as NodeId);
            b.add_edge(u, v).unwrap();
            if u != v {
                naive[u as usize].insert(v);
                naive[v as usize].insert(u);
            }
        }
        let g = b.build();
        for (v, entry) in naive.iter().enumerate() {
            let expect: Vec<NodeId> = entry.iter().copied().collect();
            assert_eq!(g.neighbors(v as NodeId), expect.as_slice(), "vertex {v}");
        }
    }
}
