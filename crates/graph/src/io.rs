//! Plain-text edge-list I/O (the SNAP interchange format the paper's
//! datasets ship in).
//!
//! Format: one `u v` pair per line, whitespace-separated; lines starting
//! with `#` or `%` are comments. Node ids need not be contiguous — they are
//! compacted to `0..n` and the mapping is returned.

use std::io::{BufRead, Write};

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::error::{GraphError, Result};
use crate::hash::FxHashMap;
use crate::NodeId;

/// An edge-list graph plus the mapping from compact ids back to the ids in
/// the file.
#[derive(Debug, Clone)]
pub struct LoadedGraph {
    /// The graph over compact ids `0..n`.
    pub graph: Graph,
    /// `original_id[v]` = id as written in the input.
    pub original_id: Vec<u64>,
}

/// Reads an edge list, remapping arbitrary ids to `0..n` (first-seen
/// order).
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<LoadedGraph> {
    let mut id_map: FxHashMap<u64, NodeId> = FxHashMap::default();
    let mut original_id: Vec<u64> = Vec::new();
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();

    let mut intern = |raw: u64, original_id: &mut Vec<u64>| -> NodeId {
        *id_map.entry(raw).or_insert_with(|| {
            let id = original_id.len() as NodeId;
            original_id.push(raw);
            id
        })
    };

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<u64> {
            let tok = tok.ok_or_else(|| GraphError::Parse {
                line: lineno + 1,
                message: "expected two node ids".into(),
            })?;
            tok.parse::<u64>().map_err(|e| GraphError::Parse {
                line: lineno + 1,
                message: format!("bad node id {tok:?}: {e}"),
            })
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        let ul = intern(u, &mut original_id);
        let vl = intern(v, &mut original_id);
        edges.push((ul, vl));
    }

    let mut b = GraphBuilder::with_capacity(original_id.len(), edges.len());
    for (u, v) in edges {
        b.add_edge(u, v)?;
    }
    Ok(LoadedGraph {
        graph: b.build(),
        original_id,
    })
}

/// Reads a weighted edge list (`u v w` per line; a missing third token
/// means weight 1, weight 0 clamps to 1), remapping arbitrary ids to
/// `0..n` in first-seen order. Duplicate edges merge to the minimum weight.
///
/// Weights above [`crate::MAX_EDGE_WEIGHT`] are rejected with a parse
/// error: distance arithmetic saturates at [`crate::INF_DIST`]
/// (`u32::MAX`), so a near-`u32::MAX` weight would silently make
/// connected vertices read as unreachable. Path sums that exceed
/// [`crate::INF_DIST`] despite the per-edge bound still saturate, and
/// the affected vertices are reported unreachable.
pub fn read_weighted_edge_list<R: BufRead>(reader: R) -> Result<LoadedGraph> {
    let mut id_map: FxHashMap<u64, NodeId> = FxHashMap::default();
    let mut original_id: Vec<u64> = Vec::new();
    let mut edges: Vec<(NodeId, NodeId, u32)> = Vec::new();

    let mut intern = |raw: u64, original_id: &mut Vec<u64>| -> NodeId {
        *id_map.entry(raw).or_insert_with(|| {
            let id = original_id.len() as NodeId;
            original_id.push(raw);
            id
        })
    };

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<u64> {
            let tok = tok.ok_or_else(|| GraphError::Parse {
                line: lineno + 1,
                message: "expected two node ids".into(),
            })?;
            tok.parse::<u64>().map_err(|e| GraphError::Parse {
                line: lineno + 1,
                message: format!("bad node id {tok:?}: {e}"),
            })
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        let w = match it.next() {
            None => 1u32,
            Some(tok) => {
                let w = tok.parse::<u32>().map_err(|e| GraphError::Parse {
                    line: lineno + 1,
                    message: format!("bad edge weight {tok:?}: {e}"),
                })?;
                if w > crate::MAX_EDGE_WEIGHT {
                    return Err(GraphError::Parse {
                        line: lineno + 1,
                        message: format!(
                            "edge weight {w} exceeds the maximum {} (distances saturate at \
                             u32::MAX, so larger weights would read as unreachable)",
                            crate::MAX_EDGE_WEIGHT
                        ),
                    });
                }
                w
            }
        };
        let ul = intern(u, &mut original_id);
        let vl = intern(v, &mut original_id);
        edges.push((ul, vl, w));
    }

    let mut b = GraphBuilder::with_capacity(original_id.len(), edges.len());
    for (u, v, w) in edges {
        b.add_weighted_edge(u, v, w)?;
    }
    Ok(LoadedGraph {
        graph: b.build(),
        original_id,
    })
}

/// Writes a graph as a weighted edge list (one `u v w` per line, `u < v`;
/// unweighted graphs write weight 1 throughout).
pub fn write_weighted_edge_list<W: Write>(g: &Graph, mut writer: W) -> Result<()> {
    writeln!(
        writer,
        "# nodes {} edges {} weighted",
        g.num_nodes(),
        g.num_edges()
    )?;
    for (u, v, w) in g.weighted_edges() {
        writeln!(writer, "{u} {v} {w}")?;
    }
    writer.flush()?;
    Ok(())
}

/// Writes a graph as an edge list (one `u v` per line, `u < v`), with a
/// leading comment describing the size.
pub fn write_edge_list<W: Write>(g: &Graph, mut writer: W) -> Result<()> {
    writeln!(writer, "# nodes {} edges {}", g.num_nodes(), g.num_edges())?;
    for (u, v) in g.edges() {
        writeln!(writer, "{u} {v}")?;
    }
    writer.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn round_trip() {
        let g = crate::generators::karate::karate_club();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let loaded = read_edge_list(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(loaded.graph.num_nodes(), g.num_nodes());
        assert_eq!(loaded.graph.num_edges(), g.num_edges());
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# header\n\n% more\n0 1\n1 2\n";
        let loaded = read_edge_list(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(loaded.graph.num_nodes(), 3);
        assert_eq!(loaded.graph.num_edges(), 2);
    }

    #[test]
    fn non_contiguous_ids_are_compacted() {
        let text = "100 2000\n2000 5\n";
        let loaded = read_edge_list(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(loaded.graph.num_nodes(), 3);
        assert_eq!(loaded.original_id, vec![100, 2000, 5]);
        // 100 ↔ 2000 and 2000 ↔ 5.
        assert!(loaded.graph.has_edge(0, 1));
        assert!(loaded.graph.has_edge(1, 2));
        assert!(!loaded.graph.has_edge(0, 2));
    }

    #[test]
    fn malformed_lines_error_with_position() {
        let text = "0 1\nbogus\n";
        let err = read_edge_list(BufReader::new(text.as_bytes())).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
        let text = "0\n";
        assert!(read_edge_list(BufReader::new(text.as_bytes())).is_err());
    }

    #[test]
    fn duplicate_and_self_loop_edges_cleaned() {
        let text = "0 1\n1 0\n2 2\n1 2\n";
        let loaded = read_edge_list(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(loaded.graph.num_edges(), 2);
    }

    #[test]
    fn weighted_round_trip() {
        let text = "# comment\n0 1 5\n1 2 3\n2 0\n";
        let loaded = read_weighted_edge_list(BufReader::new(text.as_bytes())).unwrap();
        assert!(loaded.graph.is_weighted());
        assert_eq!(loaded.graph.edge_weight(0, 1), 5);
        assert_eq!(loaded.graph.edge_weight(0, 2), 1); // missing weight → 1
        let mut buf = Vec::new();
        write_weighted_edge_list(&loaded.graph, &mut buf).unwrap();
        let again = read_weighted_edge_list(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(again.graph.num_edges(), loaded.graph.num_edges());
        assert_eq!(again.graph.edge_weight(0, 1), 5);
    }

    #[test]
    fn weighted_duplicates_merge_to_min() {
        let text = "0 1 9\n1 0 4\n0 1 6\n";
        let loaded = read_weighted_edge_list(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(loaded.graph.num_edges(), 1);
        assert_eq!(loaded.graph.edge_weight(0, 1), 4);
    }

    #[test]
    fn oversized_weights_rejected_at_load() {
        let max = crate::MAX_EDGE_WEIGHT;
        let text = format!("0 1 {max}\n");
        let loaded = read_weighted_edge_list(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(loaded.graph.edge_weight(0, 1), max);
        let text = format!("0 1 1\n1 2 {}\n", max as u64 + 1);
        let err = read_weighted_edge_list(BufReader::new(text.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("exceeds the maximum"), "{err}");
    }
}
