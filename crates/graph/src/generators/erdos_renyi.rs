//! Erdős–Rényi random graphs (`G(n, m)` and `G(n, p)`), used for the
//! scalability experiments (§6.6, Fig 5).

use rand::Rng;

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::hash::FxHashSet;
use crate::NodeId;

/// `G(n, m)`: exactly `m` distinct undirected edges, uniformly at random.
///
/// # Panics
/// Panics if `m` exceeds `C(n, 2)`.
pub fn gnm<R: Rng>(n: usize, m: usize, rng: &mut R) -> Graph {
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(
        m <= max_edges,
        "G(n,m): m = {m} exceeds C({n},2) = {max_edges}"
    );
    let mut b = GraphBuilder::with_capacity(n, m);
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    seen.reserve(m * 2);
    let mut added = 0usize;
    while added < m {
        let u = rng.gen_range(0..n as NodeId);
        let v = rng.gen_range(0..n as NodeId);
        if u == v {
            continue;
        }
        let key = ((u.min(v) as u64) << 32) | u.max(v) as u64;
        if seen.insert(key) {
            b.add_edge_unchecked(u, v);
            added += 1;
        }
    }
    b.build()
}

/// `G(n, p)`: each of the `C(n, 2)` edges present independently with
/// probability `p`, sampled in expected `O(n + m)` time via geometric
/// skipping.
pub fn gnp<R: Rng>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "G(n,p): p must be in [0,1]");
    let mut b = GraphBuilder::new(n);
    if p == 0.0 || n < 2 {
        return b.build();
    }
    if p >= 1.0 {
        return super::structured::complete(n);
    }
    // Iterate over the implicit sequence of all C(n,2) pairs, jumping
    // Geometric(p) positions between successive present edges
    // (Batagelj–Brandes).
    let log1p = (1.0 - p).ln();
    let mut v: i64 = 1;
    let mut w: i64 = -1;
    let n = n as i64;
    while v < n {
        let r: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        w += 1 + (r.ln() / log1p) as i64;
        while w >= v && v < n {
            w -= v;
            v += 1;
        }
        if v < n {
            b.add_edge_unchecked(w as NodeId, v as NodeId);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn gnm_has_exactly_m_edges() {
        let g = gnm(50, 200, &mut rng(1));
        assert_eq!(g.num_nodes(), 50);
        assert_eq!(g.num_edges(), 200);
    }

    #[test]
    fn gnm_extremes() {
        assert_eq!(gnm(10, 0, &mut rng(2)).num_edges(), 0);
        let full = gnm(6, 15, &mut rng(3));
        assert_eq!(full.num_edges(), 15); // complete K6
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn gnm_rejects_impossible_m() {
        gnm(4, 7, &mut rng(4));
    }

    #[test]
    fn gnp_density_is_near_p() {
        let n = 400usize;
        let p = 0.05;
        let g = gnp(n, p, &mut rng(5));
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.num_edges() as f64;
        assert!(
            (got - expected).abs() < 0.15 * expected,
            "edges {got} far from expectation {expected}"
        );
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(20, 0.0, &mut rng(6)).num_edges(), 0);
        assert_eq!(gnp(6, 1.0, &mut rng(7)).num_edges(), 15);
        assert_eq!(gnp(1, 0.5, &mut rng(8)).num_edges(), 0);
        assert_eq!(gnp(0, 0.5, &mut rng(9)).num_nodes(), 0);
    }

    #[test]
    fn gnp_is_deterministic_per_seed() {
        let a = gnp(100, 0.03, &mut rng(42));
        let b = gnp(100, 0.03, &mut rng(42));
        assert_eq!(a, b);
    }
}
