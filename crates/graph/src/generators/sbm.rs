//! Planted-partition stochastic block model: random graphs with
//! ground-truth communities.
//!
//! §6.4 of the paper uses graphs with ground-truth communities (dblp,
//! youtube) to build same-community (`sc`) and different-community (`dc`)
//! query workloads. The planted partition is the standard synthetic model
//! with that property: dense blocks (`p_in`), sparse cross-block edges
//! (`p_out`).

use rand::Rng;

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::NodeId;

/// A graph together with its planted ground-truth communities.
#[derive(Debug, Clone)]
pub struct PlantedPartition {
    /// The generated graph.
    pub graph: Graph,
    /// `membership[v]` = community id of `v`, in `0..num_communities`.
    pub membership: Vec<u32>,
}

impl PlantedPartition {
    /// Number of planted communities.
    pub fn num_communities(&self) -> usize {
        self.membership
            .iter()
            .map(|&c| c as usize + 1)
            .max()
            .unwrap_or(0)
    }

    /// Vertices of community `c`.
    pub fn community(&self, c: u32) -> Vec<NodeId> {
        (0..self.membership.len() as NodeId)
            .filter(|&v| self.membership[v as usize] == c)
            .collect()
    }

    /// Sizes of all communities.
    pub fn community_sizes(&self) -> Vec<usize> {
        let k = self.num_communities();
        let mut sizes = vec![0usize; k];
        for &c in &self.membership {
            sizes[c as usize] += 1;
        }
        sizes
    }
}

/// Generates a planted partition with the given community `sizes`,
/// within-community edge probability `p_in` and cross-community
/// probability `p_out`.
///
/// Intra- and inter-community edges are sampled with geometric skipping, so
/// generation is `O(n + m)` in expectation. Vertices are numbered community
/// by community.
pub fn planted_partition<R: Rng>(
    sizes: &[usize],
    p_in: f64,
    p_out: f64,
    rng: &mut R,
) -> PlantedPartition {
    assert!((0.0..=1.0).contains(&p_in) && (0.0..=1.0).contains(&p_out));
    let n: usize = sizes.iter().sum();
    let mut membership = vec![0u32; n];
    let mut starts = Vec::with_capacity(sizes.len() + 1);
    let mut acc = 0usize;
    for (c, &s) in sizes.iter().enumerate() {
        starts.push(acc);
        membership[acc..acc + s].fill(c as u32);
        acc += s;
    }
    starts.push(acc);

    let mut b = GraphBuilder::new(n);

    // Within each community: sample pairs (i, j), i < j, with prob p_in.
    for (c, &s) in sizes.iter().enumerate() {
        let base = starts[c] as NodeId;
        sample_pairs(s, p_in, rng, |i, j| {
            b.add_edge_unchecked(base + i, base + j);
        });
    }
    // Between each pair of communities: bipartite sampling with prob p_out.
    for c1 in 0..sizes.len() {
        for c2 in (c1 + 1)..sizes.len() {
            let (b1, s1) = (starts[c1] as NodeId, sizes[c1]);
            let (b2, s2) = (starts[c2] as NodeId, sizes[c2]);
            sample_bipartite(s1, s2, p_out, rng, |i, j| {
                b.add_edge_unchecked(b1 + i, b2 + j);
            });
        }
    }

    PlantedPartition {
        graph: b.build(),
        membership,
    }
}

/// Convenience constructor: `k` equal communities of size `n / k`, with
/// `p_in`/`p_out` chosen to hit an expected average degree split between
/// `deg_in` internal and `deg_out` external neighbors per vertex.
pub fn planted_partition_by_degree<R: Rng>(
    n: usize,
    k: usize,
    deg_in: f64,
    deg_out: f64,
    rng: &mut R,
) -> PlantedPartition {
    assert!(k >= 1 && n >= k);
    let size = n / k;
    let sizes: Vec<usize> = (0..k)
        .map(|i| if i < k - 1 { size } else { n - size * (k - 1) })
        .collect();
    let p_in = (deg_in / (size.max(2) as f64 - 1.0)).min(1.0);
    let p_out = if k > 1 {
        (deg_out / ((n - size) as f64)).min(1.0)
    } else {
        0.0
    };
    planted_partition(&sizes, p_in, p_out, rng)
}

/// Calls `emit(i, j)` for each pair `0 <= i < j < s` present with
/// probability `p` (geometric skipping over the triangular index space).
fn sample_pairs<R: Rng>(s: usize, p: f64, rng: &mut R, mut emit: impl FnMut(NodeId, NodeId)) {
    if p <= 0.0 || s < 2 {
        return;
    }
    if p >= 1.0 {
        for i in 0..s as NodeId {
            for j in (i + 1)..s as NodeId {
                emit(i, j);
            }
        }
        return;
    }
    let log1p = (1.0 - p).ln();
    let mut v: i64 = 1;
    let mut w: i64 = -1;
    let s = s as i64;
    while v < s {
        let r: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        w += 1 + (r.ln() / log1p) as i64;
        while w >= v && v < s {
            w -= v;
            v += 1;
        }
        if v < s {
            emit(w as NodeId, v as NodeId);
        }
    }
}

/// Calls `emit(i, j)` for each pair in the `s1 × s2` bipartite index space
/// present with probability `p`.
fn sample_bipartite<R: Rng>(
    s1: usize,
    s2: usize,
    p: f64,
    rng: &mut R,
    mut emit: impl FnMut(NodeId, NodeId),
) {
    if p <= 0.0 || s1 == 0 || s2 == 0 {
        return;
    }
    if p >= 1.0 {
        for i in 0..s1 as NodeId {
            for j in 0..s2 as NodeId {
                emit(i, j);
            }
        }
        return;
    }
    let log1p = (1.0 - p).ln();
    let total = (s1 as u64) * (s2 as u64);
    let mut pos: i64 = -1;
    loop {
        let r: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        pos += 1 + (r.ln() / log1p) as i64;
        if pos as u64 >= total {
            break;
        }
        let i = (pos as u64 / s2 as u64) as NodeId;
        let j = (pos as u64 % s2 as u64) as NodeId;
        emit(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn membership_matches_sizes() {
        let pp = planted_partition(&[10, 20, 30], 0.5, 0.01, &mut rng(1));
        assert_eq!(pp.graph.num_nodes(), 60);
        assert_eq!(pp.num_communities(), 3);
        assert_eq!(pp.community_sizes(), vec![10, 20, 30]);
        assert_eq!(pp.community(0).len(), 10);
        assert!(pp.community(2).iter().all(|&v| v >= 30));
    }

    #[test]
    fn intra_density_exceeds_inter_density() {
        let pp = planted_partition(&[100, 100], 0.2, 0.01, &mut rng(2));
        let mut intra = 0usize;
        let mut inter = 0usize;
        for (u, v) in pp.graph.edges() {
            if pp.membership[u as usize] == pp.membership[v as usize] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        // Expected intra ≈ 2 * 0.2 * C(100,2) = 1980, inter ≈ 0.01 * 10000 = 100.
        assert!(intra > 5 * inter, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn edge_counts_near_expectation() {
        let pp = planted_partition(&[200, 200], 0.1, 0.005, &mut rng(3));
        let expected = 2.0 * 0.1 * (200.0 * 199.0 / 2.0) + 0.005 * 200.0 * 200.0;
        let got = pp.graph.num_edges() as f64;
        assert!(
            (got - expected).abs() < 0.15 * expected,
            "got {got}, expected {expected}"
        );
    }

    #[test]
    fn degenerate_probabilities() {
        let pp = planted_partition(&[5, 5], 1.0, 0.0, &mut rng(4));
        // Two disjoint K5s.
        assert_eq!(pp.graph.num_edges(), 2 * 10);
        assert!(!crate::connectivity::is_connected(&pp.graph));
        let pp = planted_partition(&[3, 3], 0.0, 1.0, &mut rng(5));
        assert_eq!(pp.graph.num_edges(), 9); // complete bipartite
    }

    #[test]
    fn by_degree_constructor_hits_average_degree() {
        let pp = planted_partition_by_degree(1000, 10, 8.0, 2.0, &mut rng(6));
        let avg_deg = 2.0 * pp.graph.num_edges() as f64 / 1000.0;
        assert!((avg_deg - 10.0).abs() < 1.5, "avg degree {avg_deg}");
        assert_eq!(pp.community_sizes().len(), 10);
    }
}
