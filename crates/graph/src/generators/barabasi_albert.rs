//! Barabási–Albert preferential attachment (power-law degree
//! distribution), used for the paper's `PL` synthetic graphs (§6.6) and the
//! social/web stand-ins.

use rand::Rng;

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::NodeId;

/// Barabási–Albert graph: starts from a small clique and attaches each new
/// vertex to `k` existing vertices chosen proportionally to degree.
///
/// Implementation: the classic "repeated nodes" list — every edge endpoint
/// is appended to a list, and sampling uniformly from the list is sampling
/// proportionally to degree. Produces a connected graph with
/// `m ≈ k · n` edges and a power-law degree tail (`γ ≈ 3`).
///
/// # Panics
/// Panics if `k == 0` or `n <= k`.
pub fn barabasi_albert<R: Rng>(n: usize, k: usize, rng: &mut R) -> Graph {
    assert!(k >= 1, "BA: attachment count k must be >= 1");
    assert!(n > k, "BA: need n > k (got n = {n}, k = {k})");

    let mut b = GraphBuilder::with_capacity(n, n * k);
    // Seed: clique on the first k + 1 vertices so every early vertex has
    // degree >= k and the repeated-nodes list is non-degenerate.
    let seed = k + 1;
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n * k);
    for u in 0..seed as NodeId {
        for v in (u + 1)..seed as NodeId {
            b.add_edge_unchecked(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }

    let mut targets: Vec<NodeId> = Vec::with_capacity(k);
    for v in seed..n {
        targets.clear();
        // Rejection-sample k distinct targets by degree.
        while targets.len() < k {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            b.add_edge_unchecked(v as NodeId, t);
            endpoints.push(v as NodeId);
            endpoints.push(t);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_connected;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn edge_count_is_clique_plus_attachments() {
        let (n, k) = (200usize, 3usize);
        let g = barabasi_albert(n, k, &mut rng(1));
        let expect = (k + 1) * k / 2 + (n - k - 1) * k;
        assert_eq!(g.num_edges(), expect);
        assert_eq!(g.num_nodes(), n);
    }

    #[test]
    fn always_connected() {
        for seed in 0..5 {
            let g = barabasi_albert(300, 2, &mut rng(seed));
            assert!(is_connected(&g), "seed {seed}");
        }
    }

    #[test]
    fn min_degree_is_k() {
        let g = barabasi_albert(150, 4, &mut rng(2));
        let min_deg = (0..150).map(|v| g.degree(v)).min().unwrap();
        assert!(min_deg >= 4);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // Hubs should emerge: max degree far above the median.
        let g = barabasi_albert(2000, 2, &mut rng(3));
        let mut degs: Vec<usize> = (0..2000).map(|v| g.degree(v)).collect();
        degs.sort_unstable();
        let median = degs[1000];
        let max = *degs.last().unwrap();
        assert!(
            max >= 8 * median,
            "expected heavy tail: max {max}, median {median}"
        );
    }

    #[test]
    #[should_panic(expected = "n > k")]
    fn rejects_tiny_n() {
        barabasi_albert(3, 3, &mut rng(4));
    }
}
