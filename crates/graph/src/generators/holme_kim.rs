//! Holme–Kim power-law generator with tunable clustering.
//!
//! Barabási–Albert graphs have vanishing clustering coefficients, while
//! the paper's social/biological graphs cluster heavily (Table 1: cc up to
//! 0.65). Holme & Kim ("Growing scale-free networks with tunable
//! clustering", PRE 2002) interleave preferential-attachment steps with
//! *triad formation* steps — connecting the new vertex to a random
//! neighbor of its previous target — preserving the power-law degree tail
//! while raising the clustering coefficient with `p_triangle`.

use rand::Rng;

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::NodeId;

/// Holme–Kim graph: like [`super::barabasi_albert()`] with `k` attachments
/// per new vertex, but each attachment after the first is, with
/// probability `p_triangle`, a triad-formation step (attach to a random
/// neighbor of the previous target, closing a triangle).
///
/// `p_triangle = 0` degenerates to plain preferential attachment.
///
/// # Panics
/// Panics if `k == 0`, `n <= k`, or `p_triangle ∉ [0, 1]`.
pub fn holme_kim<R: Rng>(n: usize, k: usize, p_triangle: f64, rng: &mut R) -> Graph {
    assert!(k >= 1, "HK: attachment count k must be >= 1");
    assert!(n > k, "HK: need n > k (got n = {n}, k = {k})");
    assert!(
        (0.0..=1.0).contains(&p_triangle),
        "HK: p_triangle must be in [0, 1]"
    );

    let mut b = GraphBuilder::with_capacity(n, n * k);
    // Adjacency is needed during generation for the triad step; keep a
    // growable copy alongside the repeated-endpoints list.
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n * k);
    let seed = k + 1;
    let mut connect =
        |u: NodeId, v: NodeId, adj: &mut Vec<Vec<NodeId>>, endpoints: &mut Vec<NodeId>| {
            b.add_edge_unchecked(u, v);
            adj[u as usize].push(v);
            adj[v as usize].push(u);
            endpoints.push(u);
            endpoints.push(v);
        };
    for u in 0..seed as NodeId {
        for v in (u + 1)..seed as NodeId {
            connect(u, v, &mut adj, &mut endpoints);
        }
    }

    for v in seed..n {
        let v = v as NodeId;
        let mut last_target: Option<NodeId> = None;
        let mut added = 0usize;
        let mut guard = 0usize;
        while added < k {
            guard += 1;
            let target = if let (Some(prev), true) =
                (last_target, guard < 8 * k && rng.gen_bool(p_triangle))
            {
                // Triad formation: a random neighbor of the previous target.
                let nbrs = &adj[prev as usize];
                nbrs[rng.gen_range(0..nbrs.len())]
            } else {
                // Preferential attachment via the repeated-endpoints list.
                endpoints[rng.gen_range(0..endpoints.len())]
            };
            if target == v || adj[v as usize].contains(&target) {
                if guard > 16 * k {
                    // Degenerate neighborhoods: fall back to any fresh vertex.
                    let fallback = (0..v).find(|t| !adj[v as usize].contains(t));
                    if let Some(t) = fallback {
                        connect(v, t, &mut adj, &mut endpoints);
                        added += 1;
                        last_target = Some(t);
                    }
                    continue;
                }
                continue;
            }
            connect(v, target, &mut adj, &mut endpoints);
            added += 1;
            last_target = Some(target);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_connected;
    use crate::metrics::clustering_coefficient;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn sizes_match_ba() {
        let (n, k) = (500usize, 3usize);
        let g = holme_kim(n, k, 0.5, &mut rng(1));
        let expect = (k + 1) * k / 2 + (n - k - 1) * k;
        assert_eq!(g.num_edges(), expect);
        assert!(is_connected(&g));
    }

    #[test]
    fn triangle_probability_raises_clustering() {
        let low = holme_kim(1500, 3, 0.0, &mut rng(2));
        let high = holme_kim(1500, 3, 0.9, &mut rng(2));
        let cc_low = clustering_coefficient(&low);
        let cc_high = clustering_coefficient(&high);
        assert!(
            cc_high > 3.0 * cc_low,
            "clustering did not rise: {cc_low} vs {cc_high}"
        );
        assert!(cc_high > 0.15, "absolute clustering too low: {cc_high}");
    }

    #[test]
    fn keeps_heavy_tail() {
        let g = holme_kim(2000, 2, 0.7, &mut rng(3));
        let mut degs: Vec<usize> = (0..2000).map(|v| g.degree(v)).collect();
        degs.sort_unstable();
        let median = degs[1000];
        let max = *degs.last().unwrap();
        assert!(max >= 6 * median, "no hubs: max {max}, median {median}");
    }

    #[test]
    fn zero_probability_is_plain_preferential_attachment() {
        let g = holme_kim(300, 2, 0.0, &mut rng(4));
        assert!(is_connected(&g));
        let min_deg = (0..300).map(|v| g.degree(v)).min().unwrap();
        assert!(min_deg >= 2);
    }

    #[test]
    #[should_panic(expected = "p_triangle")]
    fn rejects_bad_probability() {
        holme_kim(10, 2, 1.5, &mut rng(5));
    }
}
