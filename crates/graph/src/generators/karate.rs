//! Zachary's karate club network (the paper's Figure 1 example).
//!
//! 34 members of a university karate club; an edge records interaction
//! outside the club. A dispute between the instructor (vertex 1 in the
//! paper's 1-based numbering) and the president (vertex 34) split the club
//! into two known factions — the classic ground-truth community benchmark.

use crate::csr::Graph;
use crate::NodeId;

/// Number of vertices in the karate club graph.
pub const KARATE_NUM_NODES: usize = 34;

/// The 78 edges, 1-indexed as in Zachary's original paper (and the paper's
/// Figure 1).
const EDGES_1_INDEXED: [(NodeId, NodeId); 78] = [
    (1, 2),
    (1, 3),
    (1, 4),
    (1, 5),
    (1, 6),
    (1, 7),
    (1, 8),
    (1, 9),
    (1, 11),
    (1, 12),
    (1, 13),
    (1, 14),
    (1, 18),
    (1, 20),
    (1, 22),
    (1, 32),
    (2, 3),
    (2, 4),
    (2, 8),
    (2, 14),
    (2, 18),
    (2, 20),
    (2, 22),
    (2, 31),
    (3, 4),
    (3, 8),
    (3, 9),
    (3, 10),
    (3, 14),
    (3, 28),
    (3, 29),
    (3, 33),
    (4, 8),
    (4, 13),
    (4, 14),
    (5, 7),
    (5, 11),
    (6, 7),
    (6, 11),
    (6, 17),
    (7, 17),
    (9, 31),
    (9, 33),
    (9, 34),
    (10, 34),
    (14, 34),
    (15, 33),
    (15, 34),
    (16, 33),
    (16, 34),
    (19, 33),
    (19, 34),
    (20, 34),
    (21, 33),
    (21, 34),
    (23, 33),
    (23, 34),
    (24, 26),
    (24, 28),
    (24, 30),
    (24, 33),
    (24, 34),
    (25, 26),
    (25, 28),
    (25, 32),
    (26, 32),
    (27, 30),
    (27, 34),
    (28, 34),
    (29, 32),
    (29, 34),
    (30, 33),
    (30, 34),
    (31, 33),
    (31, 34),
    (32, 33),
    (32, 34),
    (33, 34),
];

/// Members who sided with the instructor (vertex 1), 1-indexed.
const FACTION_INSTRUCTOR: [NodeId; 16] = [1, 2, 3, 4, 5, 6, 7, 8, 11, 12, 13, 14, 17, 18, 20, 22];

/// The karate club graph with **0-indexed** vertices (paper vertex `k` is
/// node `k - 1`).
pub fn karate_club() -> Graph {
    let edges: Vec<(NodeId, NodeId)> = EDGES_1_INDEXED
        .iter()
        .map(|&(u, v)| (u - 1, v - 1))
        .collect();
    Graph::from_edges(KARATE_NUM_NODES, &edges).expect("static karate edges are valid")
}

/// Ground-truth faction of each (0-indexed) vertex: `0` = instructor's
/// faction (paper vertex 1), `1` = president's faction (paper vertex 34).
pub fn karate_factions() -> Vec<u32> {
    let mut f = vec![1u32; KARATE_NUM_NODES];
    for &v in &FACTION_INSTRUCTOR {
        f[(v - 1) as usize] = 0;
    }
    f
}

/// Converts the paper's 1-indexed karate vertex ids to this crate's
/// 0-indexed ids.
pub fn from_paper_ids(ids: &[NodeId]) -> Vec<NodeId> {
    ids.iter().map(|&v| v - 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_connected;

    #[test]
    fn classic_statistics() {
        let g = karate_club();
        assert_eq!(g.num_nodes(), 34);
        assert_eq!(g.num_edges(), 78);
        assert!(is_connected(&g));
        // The two leaders are the highest-degree hubs.
        assert_eq!(g.degree(33), 17); // president (paper vertex 34)
        assert_eq!(g.degree(0), 16); // instructor (paper vertex 1)
    }

    #[test]
    fn leaders_are_not_adjacent() {
        // Central to Fig 1's discussion: vertices 1 and 34 have no direct
        // edge; vertex 32 (0-indexed 31) bridges them.
        let g = karate_club();
        assert!(!g.has_edge(0, 33));
        assert!(g.has_edge(0, 31));
        assert!(g.has_edge(31, 33));
    }

    #[test]
    fn factions_partition_the_club() {
        let f = karate_factions();
        assert_eq!(f.len(), 34);
        assert_eq!(f.iter().filter(|&&x| x == 0).count(), 16);
        assert_eq!(f.iter().filter(|&&x| x == 1).count(), 18);
        assert_eq!(f[0], 0);
        assert_eq!(f[33], 1);
    }

    #[test]
    fn factions_are_internally_dense() {
        // More intra-faction than inter-faction edges (it is a community
        // structure, after all).
        let g = karate_club();
        let f = karate_factions();
        let (mut intra, mut inter) = (0, 0);
        for (u, v) in g.edges() {
            if f[u as usize] == f[v as usize] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > 5 * inter, "intra {intra}, inter {inter}");
    }

    #[test]
    fn paper_id_conversion() {
        assert_eq!(from_paper_ids(&[12, 25, 26, 30]), vec![11, 24, 25, 29]);
    }
}
