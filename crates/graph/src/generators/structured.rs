//! Deterministic structured graph families.

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::NodeId;

/// Path graph `P_n`: vertices `0..n`, edges `(i, i+1)`.
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for i in 1..n as NodeId {
        b.add_edge_unchecked(i - 1, i);
    }
    b.build()
}

/// Cycle graph `C_n` (requires `n >= 3` to be simple; smaller `n` degrades
/// to a path).
pub fn cycle(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n);
    for i in 1..n as NodeId {
        b.add_edge_unchecked(i - 1, i);
    }
    if n >= 3 {
        b.add_edge_unchecked(n as NodeId - 1, 0);
    }
    b.build()
}

/// Star graph: vertex 0 is the hub, `1..n` are leaves.
pub fn star(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for i in 1..n as NodeId {
        b.add_edge_unchecked(0, i);
    }
    b.build()
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n * n.saturating_sub(1) / 2);
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            b.add_edge_unchecked(u, v);
        }
    }
    b.build()
}

/// The paper's Figure 2 graph, generalized to a line of `h` vertices.
///
/// Line `v_1 .. v_h` (ids `0..h`) plus two root vertices: `r_1` (id `h`)
/// adjacent to the first `h/2 + 1` line vertices and `r_2` (id `h + 1`)
/// adjacent to the last `h/2 + 1` (the two roots share the middle two line
/// vertices and are not adjacent to each other).
///
/// With `h = 10` and `Q` = the line, this reproduces the paper's numbers
/// exactly: the unique optimal Steiner tree is the line itself with
/// `W(Q) = 165`; `W(Q ∪ {r_1}) = W(Q ∪ {r_2}) = 151`; the minimum Wiener
/// connector is the whole graph with `W = 142` (§2, verified by brute
/// force against all 151/142-compatible wirings).
pub fn figure2_graph(h: usize) -> Graph {
    assert!(h >= 4, "figure2_graph needs a line of at least 4 vertices");
    let n = h + 2;
    let cover = h / 2 + 1;
    let mut b = GraphBuilder::with_capacity(n, h - 1 + 2 * cover);
    for i in 1..h as NodeId {
        b.add_edge_unchecked(i - 1, i);
    }
    let (r1, r2) = (h as NodeId, h as NodeId + 1);
    for v in 0..cover as NodeId {
        b.add_edge_unchecked(r1, v);
    }
    for v in (h - cover) as NodeId..h as NodeId {
        b.add_edge_unchecked(r2, v);
    }
    b.build()
}

/// A line of `h` vertices (ids `0..h`) plus a single hub (id `h`) adjacent
/// to every line vertex — the generalization in §2 showing Steiner trees
/// can be arbitrarily bad: the line alone has Wiener index `Ω(h³)` while
/// including the hub achieves `O(h²)`.
pub fn line_with_hub(h: usize) -> Graph {
    let n = h + 1;
    let mut b = GraphBuilder::with_capacity(n, h.saturating_sub(1) + h);
    for i in 1..h as NodeId {
        b.add_edge_unchecked(i - 1, i);
    }
    for v in 0..h as NodeId {
        b.add_edge_unchecked(h as NodeId, v);
    }
    b.build()
}

/// 2-D grid graph with `rows × cols` vertices; vertex `(r, c)` has id
/// `r * cols + c`. With `diagonals`, the down-right diagonal is added,
/// giving a rough road-network texture (used for the vienna-like Steiner
/// benchmark instances).
pub fn grid(rows: usize, cols: usize, diagonals: bool) -> Graph {
    let n = rows * cols;
    let mut b = GraphBuilder::with_capacity(n, 2 * n + if diagonals { n } else { 0 });
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge_unchecked(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge_unchecked(id(r, c), id(r + 1, c));
            }
            if diagonals && r + 1 < rows && c + 1 < cols {
                b.add_edge_unchecked(id(r, c), id(r + 1, c + 1));
            }
        }
    }
    b.build()
}

/// `d`-dimensional hypercube `Q_d`: `2^d` vertices, edges between ids
/// differing in exactly one bit (the structure underlying the `puc`
/// Steiner benchmarks).
pub fn hypercube(d: u32) -> Graph {
    assert!(d <= 24, "hypercube dimension too large");
    let n = 1usize << d;
    let mut b = GraphBuilder::with_capacity(n, n * d as usize / 2);
    for v in 0..n as NodeId {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            if v < u {
                b.add_edge_unchecked(v, u);
            }
        }
    }
    b.build()
}

/// Complete `branching`-ary tree of the given `depth` (depth 0 = single
/// root). Vertices are numbered level by level, root = 0.
pub fn balanced_tree(branching: usize, depth: usize) -> Graph {
    assert!(branching >= 1);
    // n = 1 + b + b² + ... + b^depth
    let mut n = 1usize;
    let mut level = 1usize;
    for _ in 0..depth {
        level *= branching;
        n += level;
    }
    let mut b = GraphBuilder::with_capacity(n, n - 1);
    for child in 1..n {
        let parent = (child - 1) / branching;
        b.add_edge_unchecked(parent as NodeId, child as NodeId);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_connected;

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert!(is_connected(&g));
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6);
        assert_eq!(g.num_edges(), 6);
        assert!((0..6).all(|v| g.degree(v) == 2));
        // Degenerate sizes.
        assert_eq!(cycle(2).num_edges(), 1);
        assert_eq!(cycle(1).num_edges(), 0);
    }

    #[test]
    fn star_and_complete_shapes() {
        assert_eq!(star(7).degree(0), 6);
        assert_eq!(star(7).num_edges(), 6);
        let k5 = complete(5);
        assert_eq!(k5.num_edges(), 10);
        assert!((0..5).all(|v| k5.degree(v) == 4));
    }

    #[test]
    fn figure2_shape() {
        let g = figure2_graph(10);
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 9 + 12);
        assert_eq!(g.degree(10), 6); // r1 covers v1..v6
        assert_eq!(g.degree(11), 6); // r2 covers v5..v10
        assert!(!g.has_edge(10, 11)); // roots are not adjacent
        assert!(g.has_edge(10, 0) && !g.has_edge(10, 6));
        assert!(g.has_edge(11, 9) && !g.has_edge(11, 3));
        // Overlap: middle vertices see both roots.
        assert!(g.has_edge(10, 4) && g.has_edge(11, 4));
        assert!(g.has_edge(10, 5) && g.has_edge(11, 5));
    }

    #[test]
    fn line_with_hub_shape() {
        let g = line_with_hub(8);
        assert_eq!(g.num_nodes(), 9);
        assert_eq!(g.num_edges(), 7 + 8);
        assert_eq!(g.degree(8), 8);
        assert!(is_connected(&g));
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4, false);
        assert_eq!(g.num_nodes(), 12);
        // 3*3 horizontal per row... rows*(cols-1) + cols*(rows-1) = 9 + 8.
        assert_eq!(g.num_edges(), 17);
        assert!(is_connected(&g));
        let gd = grid(3, 4, true);
        assert_eq!(gd.num_edges(), 17 + 6);
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4);
        assert_eq!(g.num_nodes(), 16);
        assert_eq!(g.num_edges(), 32);
        assert!((0..16).all(|v| g.degree(v) == 4));
        assert!(is_connected(&g));
    }

    #[test]
    fn balanced_tree_shape() {
        let g = balanced_tree(2, 3);
        assert_eq!(g.num_nodes(), 15);
        assert_eq!(g.num_edges(), 14);
        assert_eq!(g.degree(0), 2);
        assert!(is_connected(&g));
        assert_eq!(balanced_tree(3, 0).num_nodes(), 1);
    }
}
