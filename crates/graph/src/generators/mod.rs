//! Graph generators used by the experiments.
//!
//! The paper evaluates on SNAP/real-world graphs plus Erdős–Rényi and
//! power-law synthetic graphs (§6.6). Real datasets are not redistributable
//! here, so `mwc-datasets` builds *stand-ins* from these generators with
//! matched size/family (see DESIGN.md §3). Structured families cover the
//! worked examples (Fig 2's line-plus-roots) and the Steiner-benchmark-style
//! instances (grids, hypercubes).

pub mod barabasi_albert;
pub mod erdos_renyi;
pub mod holme_kim;
pub mod karate;
pub mod sbm;
pub mod structured;

pub use barabasi_albert::barabasi_albert;
pub use erdos_renyi::{gnm, gnp};
pub use holme_kim::holme_kim;
pub use karate::{karate_club, karate_factions, KARATE_NUM_NODES};
pub use sbm::{planted_partition, PlantedPartition};
