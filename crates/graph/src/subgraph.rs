//! Induced subgraphs `G[S]` with local/global id mapping.

use crate::csr::Graph;
use crate::error::Result;
use crate::NodeId;

/// The subgraph of a [`Graph`] induced by a vertex set `S`, re-indexed to
/// local ids `0..|S|`.
///
/// The Wiener connector objective is defined over induced subgraphs
/// (`W(S) = W(G[S])`, paper §2), so this is the unit the solvers and the
/// evaluation harness operate on. The original ids are kept sorted, giving
/// `O(log |S|)` global→local lookups and making local id order consistent
/// with global order.
#[derive(Debug, Clone)]
pub struct InducedSubgraph {
    graph: Graph,
    /// Sorted original ids; `original[local] = global`.
    original: Vec<NodeId>,
}

impl InducedSubgraph {
    /// Builds `G[S]` for `S = nodes` (deduplicated; order-insensitive).
    ///
    /// Runs in `O(Σ_{v ∈ S} deg_G(v) · log |S|)`.
    pub fn new(g: &Graph, nodes: &[NodeId]) -> Result<Self> {
        let mut original: Vec<NodeId> = nodes.to_vec();
        original.sort_unstable();
        original.dedup();
        for &v in &original {
            g.check_node(v)?;
        }

        // For each member, keep the neighbors that are also members,
        // translated to local ids. Merging two sorted lists would also work;
        // binary search keeps the code simpler and is fast enough since |S|
        // is typically small.
        let k = original.len();
        let mut offsets = vec![0u32; k + 1];
        let mut neighbors: Vec<NodeId> = Vec::new();
        let mut weights: Vec<u32> = Vec::new();
        for (local, &global) in original.iter().enumerate() {
            for (i, &nb) in g.neighbors(global).iter().enumerate() {
                if let Ok(nb_local) = original.binary_search(&nb) {
                    neighbors.push(nb_local as NodeId);
                    if let Some(ws) = g.neighbor_weights(global) {
                        weights.push(ws[i]);
                    }
                }
            }
            offsets[local + 1] = neighbors.len() as u32;
        }
        // Global adjacency is sorted and `original` is sorted, so each local
        // list is already sorted and deduplicated.
        let graph = if g.is_weighted() {
            Graph::from_csr_parts_weighted(offsets, neighbors, weights)
        } else {
            Graph::from_csr_parts(offsets, neighbors)
        };
        Ok(InducedSubgraph { graph, original })
    }

    /// The induced subgraph as a standalone [`Graph`] over local ids.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of vertices in the subgraph.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.original.len()
    }

    /// Sorted original (global) ids; index = local id.
    #[inline]
    pub fn original_ids(&self) -> &[NodeId] {
        &self.original
    }

    /// Global id of a local vertex.
    #[inline]
    pub fn to_global(&self, local: NodeId) -> NodeId {
        self.original[local as usize]
    }

    /// Local id of a global vertex, if it belongs to the subgraph.
    #[inline]
    pub fn to_local(&self, global: NodeId) -> Option<NodeId> {
        self.original
            .binary_search(&global)
            .ok()
            .map(|i| i as NodeId)
    }

    /// Whether a global vertex belongs to the subgraph.
    #[inline]
    pub fn contains(&self, global: NodeId) -> bool {
        self.original.binary_search(&global).is_ok()
    }

    /// Translates a slice of global ids to local ids.
    ///
    /// Returns `None` if any id is not in the subgraph.
    pub fn to_local_many(&self, globals: &[NodeId]) -> Option<Vec<NodeId>> {
        globals.iter().map(|&g| self.to_local(g)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0-1-2-3 path plus chord (0,3) plus isolated-ish vertex 4 attached to 0.
    fn fixture() -> Graph {
        Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (0, 3), (0, 4)]).unwrap()
    }

    #[test]
    fn induces_expected_edges() {
        let g = fixture();
        let s = g.induced(&[0, 1, 3]).unwrap();
        assert_eq!(s.num_nodes(), 3);
        // Local ids: 0→0, 1→1, 3→2. Edges kept: (0,1) and (0,3).
        let edges: Vec<_> = s.graph().edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2)]);
    }

    #[test]
    fn id_round_trip() {
        let g = fixture();
        let s = g.induced(&[3, 0, 4, 3]).unwrap(); // unsorted + duplicate
        assert_eq!(s.original_ids(), &[0, 3, 4]);
        for local in 0..s.num_nodes() as NodeId {
            assert_eq!(s.to_local(s.to_global(local)), Some(local));
        }
        assert_eq!(s.to_local(1), None);
        assert!(s.contains(4));
        assert!(!s.contains(2));
    }

    #[test]
    fn to_local_many_fails_on_missing() {
        let g = fixture();
        let s = g.induced(&[0, 1]).unwrap();
        assert_eq!(s.to_local_many(&[1, 0]), Some(vec![1, 0]));
        assert_eq!(s.to_local_many(&[0, 2]), None);
    }

    #[test]
    fn whole_graph_induction_is_identity() {
        let g = fixture();
        let all: Vec<NodeId> = g.nodes().collect();
        let s = g.induced(&all).unwrap();
        assert_eq!(s.graph().num_edges(), g.num_edges());
        for v in g.nodes() {
            assert_eq!(s.graph().neighbors(v), g.neighbors(v));
        }
    }

    #[test]
    fn rejects_out_of_range_member() {
        let g = fixture();
        assert!(g.induced(&[0, 9]).is_err());
    }

    #[test]
    fn empty_set_gives_empty_subgraph() {
        let g = fixture();
        let s = g.induced(&[]).unwrap();
        assert_eq!(s.num_nodes(), 0);
        assert_eq!(s.graph().num_edges(), 0);
    }
}
