//! Whole-graph statistics: the columns of the paper's Table 1 (density,
//! average degree, clustering coefficient, effective diameter) plus the
//! per-solution statistics of Table 3.

use rand::Rng;

use crate::csr::Graph;
use crate::traversal::bfs::BfsWorkspace;
use crate::NodeId;

/// Edge density `|E| / C(n, 2)`; 0 for graphs with fewer than 2 vertices.
pub fn density(g: &Graph) -> f64 {
    let n = g.num_nodes() as f64;
    if n < 2.0 {
        return 0.0;
    }
    g.num_edges() as f64 / (n * (n - 1.0) / 2.0)
}

/// Average degree `2|E| / n`.
pub fn average_degree(g: &Graph) -> f64 {
    let n = g.num_nodes() as f64;
    if n == 0.0 {
        return 0.0;
    }
    2.0 * g.num_edges() as f64 / n
}

/// Exact average local clustering coefficient.
///
/// For each vertex: (# edges among its neighbors) / C(deg, 2); vertices of
/// degree < 2 contribute 0, as in the SNAP convention the paper's Table 1
/// follows. `O(Σ_v deg(v)²)` via sorted-adjacency lookups.
pub fn clustering_coefficient(g: &Graph) -> f64 {
    let n = g.num_nodes();
    if n == 0 {
        return 0.0;
    }
    let total: f64 = (0..n as NodeId).map(|v| local_clustering(g, v)).sum();
    total / n as f64
}

/// Sampled average local clustering coefficient over `samples` uniform
/// vertices. Falls back to exact when `samples >= n`.
pub fn clustering_coefficient_sampled<R: Rng>(g: &Graph, samples: usize, rng: &mut R) -> f64 {
    let n = g.num_nodes();
    if n == 0 {
        return 0.0;
    }
    if samples >= n {
        return clustering_coefficient(g);
    }
    let samples = samples.max(1);
    let total: f64 = (0..samples)
        .map(|_| local_clustering(g, rng.gen_range(0..n as NodeId)))
        .sum();
    total / samples as f64
}

/// Local clustering coefficient of a single vertex.
pub fn local_clustering(g: &Graph, v: NodeId) -> f64 {
    let nbrs = g.neighbors(v);
    let d = nbrs.len();
    if d < 2 {
        return 0.0;
    }
    let mut links = 0usize;
    for (i, &a) in nbrs.iter().enumerate() {
        for &b in &nbrs[i + 1..] {
            if g.has_edge(a, b) {
                links += 1;
            }
        }
    }
    links as f64 / (d * (d - 1) / 2) as f64
}

/// Effective diameter: the `q`-th quantile (paper/SNAP use 0.9) of the
/// pairwise-distance distribution, with linear interpolation between
/// integer distances, estimated from BFS over `samples` random sources.
///
/// Returns 0 for graphs with no reachable pairs.
pub fn effective_diameter<R: Rng>(g: &Graph, q: f64, samples: usize, rng: &mut R) -> f64 {
    assert!((0.0..=1.0).contains(&q));
    let n = g.num_nodes();
    if n < 2 {
        return 0.0;
    }
    let mut ws = BfsWorkspace::new();
    // histogram[d] = number of sampled (source, target) pairs at distance d.
    let mut histogram: Vec<u64> = Vec::new();
    let exact = samples >= n;
    let runs = if exact { n } else { samples.max(1) };
    for i in 0..runs {
        let s = if exact {
            i as NodeId
        } else {
            rng.gen_range(0..n as NodeId)
        };
        let dist = ws.run(g, s);
        for &d in dist.iter() {
            if d != crate::INF_DIST && d > 0 {
                if histogram.len() <= d as usize {
                    histogram.resize(d as usize + 1, 0);
                }
                histogram[d as usize] += 1;
            }
        }
    }
    let total: u64 = histogram.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let target = q * total as f64;
    let mut acc = 0u64;
    for (d, &count) in histogram.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let next = acc + count;
        if next as f64 >= target {
            // Interpolate within distance bucket d: fraction of the bucket
            // needed to reach the quantile, counted from d - 1.
            let frac = (target - acc as f64) / count as f64;
            return (d as f64 - 1.0) + frac;
        }
        acc = next;
    }
    (histogram.len() - 1) as f64
}

/// Bundle of the Table 1 statistics for one graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub num_nodes: usize,
    /// Number of undirected edges.
    pub num_edges: usize,
    /// Edge density δ.
    pub density: f64,
    /// Average degree `ad`.
    pub average_degree: f64,
    /// Average local clustering coefficient `cc`.
    pub clustering: f64,
    /// 90% effective diameter `ed`.
    pub effective_diameter: f64,
}

/// Computes all Table 1 statistics, sampling the expensive ones on graphs
/// larger than `exact_threshold` vertices.
pub fn graph_stats<R: Rng>(g: &Graph, exact_threshold: usize, rng: &mut R) -> GraphStats {
    let n = g.num_nodes();
    let samples = exact_threshold.max(1);
    let clustering = if n <= exact_threshold {
        clustering_coefficient(g)
    } else {
        clustering_coefficient_sampled(g, samples, rng)
    };
    let ed_samples = if n <= exact_threshold {
        n
    } else {
        samples.min(256)
    };
    GraphStats {
        num_nodes: n,
        num_edges: g.num_edges(),
        density: density(g),
        average_degree: average_degree(g),
        clustering,
        effective_diameter: effective_diameter(g, 0.9, ed_samples, rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::structured;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(77)
    }

    #[test]
    fn density_and_degree_basics() {
        let g = structured::complete(5);
        assert_eq!(density(&g), 1.0);
        assert_eq!(average_degree(&g), 4.0);
        let p = structured::path(5);
        assert_eq!(average_degree(&p), 1.6);
        assert!((density(&p) - 0.4).abs() < 1e-12);
        assert_eq!(density(&crate::Graph::empty(1)), 0.0);
    }

    #[test]
    fn clustering_of_complete_is_one_of_tree_zero() {
        assert_eq!(clustering_coefficient(&structured::complete(6)), 1.0);
        assert_eq!(
            clustering_coefficient(&structured::balanced_tree(2, 3)),
            0.0
        );
    }

    #[test]
    fn clustering_of_triangle_with_tail() {
        // Triangle 0-1-2, tail 2-3. cc(0)=cc(1)=1, cc(2)=1/3, cc(3)=0.
        let g = crate::Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap();
        let expect = (1.0 + 1.0 + 1.0 / 3.0 + 0.0) / 4.0;
        assert!((clustering_coefficient(&g) - expect).abs() < 1e-12);
    }

    #[test]
    fn sampled_clustering_close_to_exact() {
        let mut r = rng();
        let g = crate::generators::barabasi_albert(500, 4, &mut r);
        let exact = clustering_coefficient(&g);
        let sampled = clustering_coefficient_sampled(&g, 250, &mut r);
        assert!(
            (exact - sampled).abs() < 0.08,
            "exact {exact}, sampled {sampled}"
        );
    }

    #[test]
    fn effective_diameter_of_complete_is_one() {
        let mut r = rng();
        let ed = effective_diameter(&structured::complete(10), 0.9, 10, &mut r);
        assert!((0.0..=1.0).contains(&ed), "ed = {ed}");
        assert!(ed > 0.5);
    }

    #[test]
    fn effective_diameter_grows_with_path_length() {
        let mut r = rng();
        let short = effective_diameter(&structured::path(10), 0.9, 100, &mut r);
        let long = effective_diameter(&structured::path(100), 0.9, 200, &mut r);
        assert!(long > 2.0 * short, "short {short}, long {long}");
    }

    #[test]
    fn stats_bundle_is_consistent() {
        let mut r = rng();
        let g = crate::generators::karate::karate_club();
        let s = graph_stats(&g, 1000, &mut r);
        assert_eq!(s.num_nodes, 34);
        assert_eq!(s.num_edges, 78);
        assert!((s.average_degree - 2.0 * 78.0 / 34.0).abs() < 1e-12);
        // Known ballparks for karate: cc ≈ 0.588, 90% eff. diameter < 5.
        assert!((s.clustering - 0.588).abs() < 0.02, "cc = {}", s.clustering);
        assert!(s.effective_diameter > 1.0 && s.effective_diameter < 5.0);
    }

    #[test]
    fn empty_graph_stats() {
        let mut r = rng();
        let s = graph_stats(&crate::Graph::empty(0), 10, &mut r);
        assert_eq!(s.num_nodes, 0);
        assert_eq!(s.effective_diameter, 0.0);
    }
}
