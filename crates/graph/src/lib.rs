//! Graph substrate for the Minimum Wiener Connector reproduction.
//!
//! The paper ("The Minimum Wiener Connector Problem", SIGMOD 2015) works on
//! simple, connected, undirected, unweighted graphs. This crate provides the
//! full substrate the algorithms are built on:
//!
//! * [`Graph`]: an immutable compressed-sparse-row (CSR) graph with sorted
//!   adjacency lists,
//! * [`GraphBuilder`]: a mutable edge-list builder that deduplicates and
//!   removes self-loops,
//! * [`InducedSubgraph`]: induced subgraphs `G[S]` with local/global id
//!   mapping — the objects the Wiener connector objective is defined over,
//! * the distance kernel in [`traversal::bfs`]: plain, direction-
//!   optimizing, and 64-lane multi-source batched BFS over pooled
//!   workspaces,
//! * cache-aware vertex relabelings ([`Graph::degree_ordered`] and
//!   [`NodePermutation`]) in [`permute`],
//! * BFS / Dijkstra traversals (single- and multi-source) in [`traversal`],
//! * connectivity utilities in [`connectivity`],
//! * the Wiener index and related distance aggregates in [`wiener`],
//! * Brandes betweenness centrality (exact and sampled) in [`centrality`],
//! * the graph statistics reported in the paper's Table 1 in [`metrics`],
//! * graph generators (Erdős–Rényi, Barabási–Albert, planted partitions,
//!   structured families, Zachary's karate club) in [`generators`],
//! * plain-text edge-list I/O in [`io`].
//!
//! # Example
//!
//! ```
//! use mwc_graph::{Graph, wiener};
//!
//! // A 5-cycle.
//! let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
//! assert_eq!(g.num_nodes(), 5);
//! assert_eq!(g.num_edges(), 5);
//! // W(C5) = 5 pairs at distance 1 + 5 pairs at distance 2.
//! assert_eq!(wiener::wiener_index(&g), Some(15));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builder;
pub mod centrality;
pub mod community;
pub mod connectivity;
pub mod csr;
pub mod error;
pub mod generators;
pub mod hash;
pub mod io;
pub mod metrics;
pub mod oracle;
pub mod permute;
pub mod subgraph;
pub mod traversal;
pub mod wiener;

pub use builder::GraphBuilder;
pub use csr::Graph;
pub use error::{GraphError, Result};
pub use hash::{FxHashMap, FxHashSet};
pub use permute::NodePermutation;
pub use subgraph::InducedSubgraph;

/// Node identifier: a dense index in `0..num_nodes`.
///
/// `u32` keeps hot arrays (distances, parents, adjacency) half the size of
/// `usize` on 64-bit targets; graphs with more than `u32::MAX` nodes are out
/// of scope for this reproduction (the largest graph in the paper has ~18M
/// nodes).
pub type NodeId = u32;

/// Sentinel for "no node" (e.g. the BFS parent of a root).
pub const NO_NODE: NodeId = NodeId::MAX;

/// Sentinel distance for unreachable vertices.
pub const INF_DIST: u32 = u32::MAX;

/// Largest edge weight the weighted loaders accept (`2^30 − 1`).
///
/// All distance arithmetic is `u32` and **saturates at [`INF_DIST`]**
/// (`u32::MAX`), where a vertex reads as unreachable — so an edge
/// anywhere near `u32::MAX` would make *connected* vertices report as
/// disconnected after a single hop. Capping loader weights at a quarter
/// of the headroom means at least four maximal-weight hops fit before
/// saturation; path sums that still exceed [`INF_DIST`] saturate there
/// and the far vertices are reported unreachable (the documented
/// semantics of every weighted kernel, identical across Dijkstra and
/// delta-stepping).
pub const MAX_EDGE_WEIGHT: u32 = (1 << 30) - 1;
