//! Vertex relabelings: [`NodePermutation`] and the degree-ordered
//! (hub-first) CSR layout.
//!
//! BFS over a CSR graph is memory-bound: every frontier expansion streams
//! adjacency lists and scatters into the distance array. On scale-free
//! graphs the high-degree hubs are touched by almost every traversal, so
//! relabeling vertices in descending-degree order packs the hot rows (and
//! the hot prefix of the distance array) into a few pages — the classic
//! cache-aware layout trick for graph kernels. [`Graph::degree_ordered`]
//! produces that layout plus the [`NodePermutation`] needed to translate
//! query ids in and connector ids back out, so callers (the serving
//! catalog) can keep their external id space untouched.

use std::cmp::Reverse;

use crate::csr::Graph;
use crate::NodeId;

/// A bijective relabeling of `0..n`, stored in both directions so either
/// translation is an `O(1)` array read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodePermutation {
    /// `to_new[old] = new`.
    to_new: Vec<NodeId>,
    /// `to_old[new] = old`.
    to_old: Vec<NodeId>,
}

impl NodePermutation {
    /// The identity permutation on `n` vertices.
    pub fn identity(n: usize) -> Self {
        let ids: Vec<NodeId> = (0..n as NodeId).collect();
        NodePermutation {
            to_new: ids.clone(),
            to_old: ids,
        }
    }

    /// Builds a permutation from its `new → old` image (each id of
    /// `0..n` appearing exactly once).
    pub(crate) fn from_new_to_old(to_old: Vec<NodeId>) -> Self {
        let mut to_new = vec![0 as NodeId; to_old.len()];
        for (new, &old) in to_old.iter().enumerate() {
            to_new[old as usize] = new as NodeId;
        }
        NodePermutation { to_new, to_old }
    }

    /// Number of vertices the permutation covers.
    pub fn len(&self) -> usize {
        self.to_new.len()
    }

    /// Whether the permutation covers zero vertices.
    pub fn is_empty(&self) -> bool {
        self.to_new.is_empty()
    }

    /// The relabeled id of an original vertex.
    ///
    /// # Panics
    /// Panics if `old` is out of range.
    #[inline]
    pub fn to_new(&self, old: NodeId) -> NodeId {
        self.to_new[old as usize]
    }

    /// The original id of a relabeled vertex.
    ///
    /// # Panics
    /// Panics if `new` is out of range.
    #[inline]
    pub fn to_old(&self, new: NodeId) -> NodeId {
        self.to_old[new as usize]
    }

    /// Translates a slice of original ids into the relabeled space.
    pub fn map_to_new(&self, olds: &[NodeId]) -> Vec<NodeId> {
        olds.iter().map(|&v| self.to_new(v)).collect()
    }

    /// Translates a slice of relabeled ids back to original ids.
    pub fn map_to_old(&self, news: &[NodeId]) -> Vec<NodeId> {
        news.iter().map(|&v| self.to_old(v)).collect()
    }
}

impl Graph {
    /// The same graph relabeled hub-first: vertex `0` is the highest-degree
    /// vertex, ties broken by ascending original id (deterministic).
    ///
    /// Returns the relabeled CSR graph and the [`NodePermutation`] mapping
    /// ids between the two spaces. The layout is what the distance kernel
    /// wants — traversals on scale-free graphs concentrate their memory
    /// traffic on the low-id prefix — while the permutation lets callers
    /// keep speaking original ids at their boundary:
    ///
    /// ```
    /// use mwc_graph::generators::karate::karate_club;
    ///
    /// let g = karate_club();
    /// let (ordered, perm) = g.degree_ordered();
    /// assert_eq!(ordered.num_edges(), g.num_edges());
    /// // Vertex 33 (degree 17) is the karate hub: it becomes vertex 0.
    /// assert_eq!(perm.to_new(33), 0);
    /// assert_eq!(ordered.degree(0), g.max_degree());
    /// ```
    pub fn degree_ordered(&self) -> (Graph, NodePermutation) {
        let n = self.num_nodes();
        let mut order: Vec<NodeId> = (0..n as NodeId).collect();
        order.sort_by_key(|&v| (Reverse(self.degree(v)), v));
        let perm = NodePermutation::from_new_to_old(order);

        // Rebuild the CSR directly in the new id space: offsets from the
        // (permuted) degree sequence, each adjacency list translated and
        // re-sorted to keep the Graph invariants.
        let mut offsets = vec![0u32; n + 1];
        for new_v in 0..n {
            offsets[new_v + 1] = offsets[new_v] + self.degree(perm.to_old(new_v as NodeId)) as u32;
        }
        if self.is_weighted() {
            // Weighted rows carry (neighbor, weight) pairs through the same
            // translate-and-sort; sorting pairs keeps each weight glued to
            // its (deduplicated, so unique) neighbor.
            let mut neighbors = vec![0 as NodeId; offsets[n] as usize];
            let mut weights = vec![0u32; offsets[n] as usize];
            let mut row: Vec<(NodeId, u32)> = Vec::new();
            for new_v in 0..n {
                let old_v = perm.to_old(new_v as NodeId);
                let lo = offsets[new_v] as usize;
                let hi = offsets[new_v + 1] as usize;
                row.clear();
                row.extend(
                    self.neighbors(old_v)
                        .iter()
                        .zip(self.neighbor_weights(old_v).expect("weighted graph"))
                        .map(|(&old_nb, &w)| (perm.to_new(old_nb), w)),
                );
                row.sort_unstable();
                for (slot, &(nb, w)) in row.iter().enumerate() {
                    neighbors[lo + slot] = nb;
                    weights[lo + slot] = w;
                }
                debug_assert_eq!(row.len(), hi - lo);
            }
            return (
                Graph::from_csr_parts_weighted(offsets, neighbors, weights),
                perm,
            );
        }
        let mut neighbors = vec![0 as NodeId; offsets[n] as usize];
        for new_v in 0..n {
            let old_v = perm.to_old(new_v as NodeId);
            let lo = offsets[new_v] as usize;
            let hi = offsets[new_v + 1] as usize;
            let list = &mut neighbors[lo..hi];
            for (slot, &old_nb) in list.iter_mut().zip(self.neighbors(old_v)) {
                *slot = perm.to_new(old_nb);
            }
            list.sort_unstable();
        }
        (Graph::from_csr_parts(offsets, neighbors), perm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::karate::karate_club;
    use crate::wiener::wiener_index;

    #[test]
    fn identity_round_trips() {
        let p = NodePermutation::identity(5);
        assert_eq!(p.len(), 5);
        for v in 0..5u32 {
            assert_eq!(p.to_new(v), v);
            assert_eq!(p.to_old(v), v);
        }
        assert!(NodePermutation::identity(0).is_empty());
    }

    #[test]
    fn degree_ordered_is_an_isomorphism() {
        let g = karate_club();
        let (h, perm) = g.degree_ordered();
        assert_eq!(h.num_nodes(), g.num_nodes());
        assert_eq!(h.num_edges(), g.num_edges());
        // Every edge maps to an edge, both directions.
        for (u, v) in g.edges() {
            assert!(h.has_edge(perm.to_new(u), perm.to_new(v)), "({u},{v})");
        }
        for (u, v) in h.edges() {
            assert!(g.has_edge(perm.to_old(u), perm.to_old(v)), "({u},{v})");
        }
        // Round trips.
        for v in g.nodes() {
            assert_eq!(perm.to_old(perm.to_new(v)), v);
        }
    }

    #[test]
    fn degree_ordered_sorts_hubs_first() {
        let g = karate_club();
        let (h, _) = g.degree_ordered();
        let degs: Vec<usize> = h.nodes().map(|v| h.degree(v)).collect();
        assert!(degs.windows(2).all(|w| w[0] >= w[1]), "{degs:?}");
        assert_eq!(degs[0], g.max_degree());
    }

    #[test]
    fn degree_ordered_ties_break_by_original_id() {
        // A 4-cycle: all degrees equal, so the order must be the identity.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let (_, perm) = g.degree_ordered();
        for v in 0..4u32 {
            assert_eq!(perm.to_new(v), v);
        }
    }

    #[test]
    fn wiener_index_is_layout_invariant() {
        let g = karate_club();
        let (h, _) = g.degree_ordered();
        assert_eq!(wiener_index(&g), wiener_index(&h));
    }

    #[test]
    fn map_helpers_translate_slices() {
        let g = karate_club();
        let (_, perm) = g.degree_ordered();
        let q = [0u32, 33, 11];
        let round = perm.map_to_old(&perm.map_to_new(&q));
        assert_eq!(round, q);
    }

    #[test]
    fn empty_graph_degenerates_cleanly() {
        let g = Graph::empty(0);
        let (h, perm) = g.degree_ordered();
        assert_eq!(h.num_nodes(), 0);
        assert!(perm.is_empty());
    }
}
