//! Landmark-based approximate distance oracle.
//!
//! §6.6 of the paper notes that scaling `ws-q` beyond memory-resident
//! graphs "becomes necessary to employ techniques for parallel and/or
//! approximate shortest-distance computations \[52\]" and leaves them out
//! of scope. This module implements the classic landmark scheme those
//! citations describe: pick `k` landmarks, store one BFS distance vector
//! per landmark, and answer any pair query from the triangle inequality:
//!
//! * upper bound: `min_ℓ d(u, ℓ) + d(ℓ, v)`,
//! * lower bound: `max_ℓ |d(u, ℓ) − d(ℓ, v)|`.
//!
//! Both bounds are exact whenever one endpoint is a landmark or some
//! landmark lies on a shortest `u`–`v` path. `mwc-core`'s
//! `ApproxWienerSteiner` builds on this to run Algorithm 1 with `O(k)`
//! BFS traversals total instead of `O(|Q|)` per solve.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::traversal::bfs::{bfs_distances, multi_source_distances, MsBfsWorkspace};
use crate::traversal::delta::{multi_source_delta_distances, DeltaWorkspace, MsDeltaWorkspace};
use crate::traversal::dijkstra::DijkstraWorkspace;
use crate::{Graph, NodeId, INF_DIST};

/// Single-source distances dispatching on the graph's weight family —
/// delta-stepping on weighted graphs, BFS otherwise.
fn single_source_distances(g: &Graph, source: NodeId) -> Vec<u32> {
    if g.is_weighted() {
        let mut ws = DeltaWorkspace::new();
        ws.run(g, source).to_vec()
    } else {
        bfs_distances(g, source)
    }
}

/// How landmarks are selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LandmarkStrategy {
    /// Uniformly at random.
    Random,
    /// The `k` highest-degree vertices — hubs lie on many shortest paths,
    /// the standard heuristic for small-world graphs.
    HighestDegree,
    /// Farthest-first traversal: each landmark maximizes the distance to
    /// the ones already chosen (good cover of the periphery).
    FarthestFirst,
}

/// A built oracle: `k` landmark BFS vectors over a fixed graph.
///
/// ```
/// use mwc_graph::generators::karate::karate_club;
/// use mwc_graph::oracle::{LandmarkOracle, LandmarkStrategy};
/// use rand::SeedableRng;
///
/// let g = karate_club();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let oracle = LandmarkOracle::build(&g, 4, LandmarkStrategy::HighestDegree, &mut rng);
/// let (lo, hi) = (oracle.lower_bound(0, 33), oracle.upper_bound(0, 33));
/// assert!(lo <= hi); // sandwich the true distance
/// assert!(hi <= 4);  // hubs keep estimates tight on small worlds
/// ```
#[derive(Debug, Clone)]
pub struct LandmarkOracle {
    landmarks: Vec<NodeId>,
    dist: Vec<Vec<u32>>,
}

impl LandmarkOracle {
    /// Builds an oracle with `k` landmarks (clamped to `|V|`).
    ///
    /// The `k` distance vectors come from `⌈k/64⌉` multi-source BFS
    /// sweeps ([`MsBfsWorkspace`]) instead of `k` sequential traversals:
    /// the CSR adjacency — the memory-bound part — is streamed once per
    /// level per *batch* rather than once per landmark. Distances are
    /// bit-identical to [`Self::build_sequential`] (pinned by tests); the
    /// `oracle_build` section of `BENCH_kernel.json` records the speedup.
    /// Weighted graphs swap the BFS sweeps for batched delta-stepping
    /// ([`MsDeltaWorkspace`]) — same lane layout, distances bit-identical
    /// to the per-landmark Dijkstra of [`Self::build_sequential`].
    pub fn build<R: Rng>(g: &Graph, k: usize, strategy: LandmarkStrategy, rng: &mut R) -> Self {
        let landmarks = select_landmarks(g, k, strategy, rng);
        let dist = if g.is_weighted() {
            multi_source_delta_distances(g, &landmarks, &mut MsDeltaWorkspace::new())
        } else {
            multi_source_distances(g, &landmarks, &mut MsBfsWorkspace::new())
        };
        LandmarkOracle { landmarks, dist }
    }

    /// Builds the oracle with one sequential BFS per landmark —
    /// `O(k (|V| + |E|))`, the pre-batching construction path. Kept as
    /// the parity reference and the baseline of the `oracle_build` bench
    /// section; [`Self::build`] is the production path.
    pub fn build_sequential<R: Rng>(
        g: &Graph,
        k: usize,
        strategy: LandmarkStrategy,
        rng: &mut R,
    ) -> Self {
        let landmarks = select_landmarks(g, k, strategy, rng);
        let dist = if g.is_weighted() {
            let mut ws = DijkstraWorkspace::new();
            landmarks.iter().map(|&l| ws.run(g, l).to_vec()).collect()
        } else {
            landmarks.iter().map(|&l| bfs_distances(g, l)).collect()
        };
        LandmarkOracle { landmarks, dist }
    }

    /// The selected landmarks.
    pub fn landmarks(&self) -> &[NodeId] {
        &self.landmarks
    }

    /// Number of landmarks.
    pub fn num_landmarks(&self) -> usize {
        self.landmarks.len()
    }

    /// Upper bound on `d(u, v)` (the standard landmark estimate).
    /// Returns [`INF_DIST`] if every landmark misses one endpoint's
    /// component.
    pub fn upper_bound(&self, u: NodeId, v: NodeId) -> u32 {
        if u == v {
            return 0;
        }
        let mut best = INF_DIST;
        for row in &self.dist {
            let (du, dv) = (row[u as usize], row[v as usize]);
            if du != INF_DIST && dv != INF_DIST {
                // saturating: weighted distance sums can brush u32::MAX.
                best = best.min(du.saturating_add(dv));
            }
        }
        best
    }

    /// Lower bound on `d(u, v)` from the reverse triangle inequality.
    /// Returns 0 when no landmark sees both endpoints.
    pub fn lower_bound(&self, u: NodeId, v: NodeId) -> u32 {
        if u == v {
            return 0;
        }
        let mut best = 0u32;
        for row in &self.dist {
            let (du, dv) = (row[u as usize], row[v as usize]);
            if du != INF_DIST && dv != INF_DIST {
                best = best.max(du.abs_diff(dv));
            }
        }
        best
    }

    /// The oracle's distance estimate — the upper bound, as is standard
    /// (it is a metric, and exact through landmarks).
    pub fn estimate(&self, u: NodeId, v: NodeId) -> u32 {
        self.upper_bound(u, v)
    }

    /// Estimated distances from `source` to every vertex: one `O(k)` scan
    /// per vertex, no BFS. Exact if `source` is a landmark.
    pub fn estimate_all(&self, source: NodeId) -> Vec<u32> {
        if let Some(i) = self.landmarks.iter().position(|&l| l == source) {
            return self.dist[i].clone();
        }
        let n = self.dist.first().map_or(0, |row| row.len());
        let mut out = vec![INF_DIST; n];
        for row in &self.dist {
            let ds = row[source as usize];
            if ds == INF_DIST {
                continue;
            }
            for (v, &dv) in row.iter().enumerate() {
                if dv != INF_DIST {
                    out[v] = out[v].min(ds.saturating_add(dv));
                }
            }
        }
        out[source as usize] = 0;
        out
    }

    /// [`Self::estimate_all`] for a batch of sources in **one pass** over
    /// the landmark matrix: each `O(|V|)` landmark row is loaded once and
    /// folded into every source's output while it is cache-hot, instead
    /// of `|sources|` separate sweeps through the whole `k × |V|` matrix.
    /// Results are identical to per-source [`Self::estimate_all`] calls
    /// (same min over the same terms); the batched `ws-q-approx` root
    /// loop is the intended caller.
    pub fn estimate_all_multi(&self, sources: &[NodeId]) -> Vec<Vec<u32>> {
        let n = self.dist.first().map_or(0, |row| row.len());
        let mut outs: Vec<Vec<u32>> = sources.iter().map(|_| vec![INF_DIST; n]).collect();
        // Landmark sources are exact: their own row, verbatim.
        let exact: Vec<Option<usize>> = sources
            .iter()
            .map(|&s| self.landmarks.iter().position(|&l| l == s))
            .collect();
        for (row, out) in exact.iter().zip(outs.iter_mut()) {
            if let Some(i) = row {
                out.clone_from(&self.dist[*i]);
            }
        }
        for row in &self.dist {
            for ((&s, out), ex) in sources.iter().zip(outs.iter_mut()).zip(&exact) {
                if ex.is_some() {
                    continue;
                }
                let ds = row[s as usize];
                if ds == INF_DIST {
                    continue;
                }
                for (o, &dv) in out.iter_mut().zip(row.iter()) {
                    if dv != INF_DIST {
                        *o = (*o).min(ds.saturating_add(dv));
                    }
                }
            }
        }
        for ((&s, out), ex) in sources.iter().zip(outs.iter_mut()).zip(&exact) {
            if ex.is_none() {
                out[s as usize] = 0;
            }
        }
        outs
    }
}

/// Picks the `k` landmark vertices for `strategy` (clamped to `|V|`,
/// at least one on non-empty graphs). Consumes `rng` identically for
/// [`LandmarkOracle::build`] and [`LandmarkOracle::build_sequential`], so
/// the two constructions select the same landmarks.
fn select_landmarks<R: Rng>(
    g: &Graph,
    k: usize,
    strategy: LandmarkStrategy,
    rng: &mut R,
) -> Vec<NodeId> {
    let n = g.num_nodes();
    let k = k.min(n).max(usize::from(n > 0));
    match strategy {
        LandmarkStrategy::Random => {
            let mut all: Vec<NodeId> = (0..n as NodeId).collect();
            all.shuffle(rng);
            all.truncate(k);
            all
        }
        LandmarkStrategy::HighestDegree => {
            let mut all: Vec<NodeId> = (0..n as NodeId).collect();
            all.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
            all.truncate(k);
            all
        }
        LandmarkStrategy::FarthestFirst => farthest_first(g, k, rng),
    }
}

/// Farthest-first landmark selection: start from a random vertex, then
/// repeatedly add the vertex maximizing the BFS distance to the chosen
/// set (one multi-source-style pass per landmark, implemented as a min
/// over per-landmark vectors).
fn farthest_first<R: Rng>(g: &Graph, k: usize, rng: &mut R) -> Vec<NodeId> {
    let n = g.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let mut landmarks = vec![rng.gen_range(0..n as NodeId)];
    let mut min_dist = single_source_distances(g, landmarks[0]);
    while landmarks.len() < k {
        // Farthest *reachable* vertex (unreachable ones would pin all
        // remaining landmarks into other components immediately; taking
        // them first is actually desirable — they cover that component).
        let next = (0..n as NodeId)
            .filter(|&v| !landmarks.contains(&v))
            .max_by_key(|&v| {
                let d = min_dist[v as usize];
                if d == INF_DIST {
                    // Prioritize uncovered components.
                    u64::from(u32::MAX) + 1
                } else {
                    u64::from(d)
                }
            });
        let Some(next) = next else { break };
        landmarks.push(next);
        let d = single_source_distances(g, next);
        for (m, &dv) in min_dist.iter_mut().zip(&d) {
            *m = (*m).min(dv);
        }
    }
    landmarks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::karate::karate_club;
    use crate::generators::structured;
    use rand::SeedableRng;

    fn all_strategies() -> [LandmarkStrategy; 3] {
        [
            LandmarkStrategy::Random,
            LandmarkStrategy::HighestDegree,
            LandmarkStrategy::FarthestFirst,
        ]
    }

    #[test]
    fn bounds_sandwich_the_true_distance() {
        let g = karate_club();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for strategy in all_strategies() {
            let oracle = LandmarkOracle::build(&g, 5, strategy, &mut rng);
            for u in 0..g.num_nodes() as NodeId {
                let d = bfs_distances(&g, u);
                for v in 0..g.num_nodes() as NodeId {
                    let lo = oracle.lower_bound(u, v);
                    let hi = oracle.upper_bound(u, v);
                    assert!(lo <= d[v as usize], "{strategy:?} lower bound violated");
                    assert!(hi >= d[v as usize], "{strategy:?} upper bound violated");
                    assert!(lo <= hi);
                }
            }
        }
    }

    #[test]
    fn exact_through_landmarks() {
        let g = structured::path(10);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let oracle = LandmarkOracle::build(&g, 3, LandmarkStrategy::Random, &mut rng);
        for &l in oracle.landmarks() {
            for v in 0..10u32 {
                let d = bfs_distances(&g, l)[v as usize];
                assert_eq!(oracle.estimate(l, v), d, "landmark queries are exact");
                assert_eq!(oracle.lower_bound(l, v), d);
            }
        }
    }

    #[test]
    fn estimate_all_matches_pairwise_estimates() {
        let g = karate_club();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let oracle = LandmarkOracle::build(&g, 4, LandmarkStrategy::HighestDegree, &mut rng);
        for source in [0u32, 7, 33] {
            let all = oracle.estimate_all(source);
            for v in 0..g.num_nodes() as NodeId {
                if v == source {
                    assert_eq!(all[v as usize], 0);
                } else {
                    assert_eq!(all[v as usize], oracle.estimate(source, v));
                }
            }
        }
    }

    #[test]
    fn full_landmark_set_is_exact_everywhere() {
        let g = structured::cycle(9);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let oracle = LandmarkOracle::build(&g, 9, LandmarkStrategy::Random, &mut rng);
        assert_eq!(oracle.num_landmarks(), 9);
        for u in 0..9u32 {
            let d = bfs_distances(&g, u);
            for v in 0..9u32 {
                assert_eq!(oracle.estimate(u, v), d[v as usize]);
            }
        }
    }

    #[test]
    fn disconnected_components_report_infinity() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        // Farthest-first prioritizes uncovered components, so with k = 2
        // both components have a landmark.
        let oracle = LandmarkOracle::build(&g, 2, LandmarkStrategy::FarthestFirst, &mut rng);
        assert_eq!(oracle.estimate(0, 2), INF_DIST);
        assert_eq!(oracle.estimate(0, 1), 1);
        assert_eq!(oracle.estimate(2, 3), 1);
    }

    #[test]
    fn farthest_first_spreads_on_a_path() {
        let g = structured::path(20);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let oracle = LandmarkOracle::build(&g, 3, LandmarkStrategy::FarthestFirst, &mut rng);
        // Any three farthest-first landmarks on a path include both
        // endpoints' halves; pairwise distances must be substantial.
        let l = oracle.landmarks();
        let mut min_gap = u32::MAX;
        for i in 0..l.len() {
            for j in (i + 1)..l.len() {
                min_gap = min_gap.min(l[i].abs_diff(l[j]));
            }
        }
        assert!(min_gap >= 4, "landmarks clustered: {l:?}");
    }

    #[test]
    fn highest_degree_picks_hubs() {
        let g = structured::star(10);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let oracle = LandmarkOracle::build(&g, 1, LandmarkStrategy::HighestDegree, &mut rng);
        assert_eq!(oracle.landmarks(), &[0], "the star center is the hub");
        // A single hub landmark answers every pair exactly on a star.
        for u in 1..10u32 {
            for v in 1..10u32 {
                let expect = if u == v { 0 } else { 2 };
                assert_eq!(oracle.estimate(u, v), expect);
            }
        }
    }

    #[test]
    fn batched_build_matches_sequential_build() {
        // The batched (multi-source) construction must be bit-identical
        // to the sequential one: same landmarks, same distance rows —
        // including k > 64, which spans multiple 64-lane sweeps.
        use rand::SeedableRng;
        let g =
            crate::generators::barabasi_albert(300, 3, &mut rand::rngs::StdRng::seed_from_u64(77));
        for strategy in all_strategies() {
            for k in [1usize, 5, 64, 100] {
                let mut rng_a = rand::rngs::StdRng::seed_from_u64(9);
                let mut rng_b = rand::rngs::StdRng::seed_from_u64(9);
                let batched = LandmarkOracle::build(&g, k, strategy, &mut rng_a);
                let sequential = LandmarkOracle::build_sequential(&g, k, strategy, &mut rng_b);
                assert_eq!(
                    batched.landmarks(),
                    sequential.landmarks(),
                    "{strategy:?} k={k}"
                );
                assert_eq!(batched.dist, sequential.dist, "{strategy:?} k={k}");
            }
        }
    }

    #[test]
    fn estimate_all_multi_matches_per_source() {
        let g = karate_club();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let oracle = LandmarkOracle::build(&g, 5, LandmarkStrategy::HighestDegree, &mut rng);
        // Mix of landmark sources, plain sources, and duplicates.
        let landmark = oracle.landmarks()[0];
        let sources = vec![0u32, landmark, 7, 7, 33];
        let multi = oracle.estimate_all_multi(&sources);
        for (i, &s) in sources.iter().enumerate() {
            assert_eq!(multi[i], oracle.estimate_all(s), "source {s}");
        }
        // Disconnected graphs propagate INF_DIST identically.
        let split = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let o = LandmarkOracle::build(&split, 2, LandmarkStrategy::FarthestFirst, &mut rng);
        let multi = o.estimate_all_multi(&[0, 2]);
        assert_eq!(multi[0], o.estimate_all(0));
        assert_eq!(multi[1], o.estimate_all(2));
    }

    #[test]
    fn weighted_build_matches_weighted_sequential_build() {
        use rand::{Rng as _, SeedableRng};
        let mut grng = rand::rngs::StdRng::seed_from_u64(31);
        let mut b = crate::GraphBuilder::new(250);
        for v in 1..250u32 {
            b.add_weighted_edge(grng.gen_range(0..v), v, grng.gen_range(1..=9))
                .unwrap();
        }
        for _ in 0..500 {
            let u = grng.gen_range(0..250u32);
            let v = grng.gen_range(0..250u32);
            b.add_weighted_edge(u, v, grng.gen_range(1..=9)).unwrap();
        }
        let g = b.build();
        for strategy in all_strategies() {
            for k in [1usize, 7, 80] {
                let mut rng_a = rand::rngs::StdRng::seed_from_u64(13);
                let mut rng_b = rand::rngs::StdRng::seed_from_u64(13);
                let batched = LandmarkOracle::build(&g, k, strategy, &mut rng_a);
                let sequential = LandmarkOracle::build_sequential(&g, k, strategy, &mut rng_b);
                assert_eq!(
                    batched.landmarks(),
                    sequential.landmarks(),
                    "{strategy:?} k={k}"
                );
                assert_eq!(batched.dist, sequential.dist, "{strategy:?} k={k}");
            }
        }
        // Bounds sandwich true weighted distances.
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        let oracle = LandmarkOracle::build(&g, 6, LandmarkStrategy::HighestDegree, &mut rng);
        let mut dij = crate::traversal::dijkstra::DijkstraWorkspace::new();
        for u in [0u32, 100, 249] {
            let d = dij.run(&g, u).to_vec();
            for v in 0..250u32 {
                assert!(oracle.lower_bound(u, v) <= d[v as usize]);
                assert!(oracle.upper_bound(u, v) >= d[v as usize]);
            }
        }
    }

    #[test]
    fn k_clamps_to_graph_size() {
        let g = structured::path(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let oracle = LandmarkOracle::build(&g, 100, LandmarkStrategy::Random, &mut rng);
        assert_eq!(oracle.num_landmarks(), 3);
    }
}
