//! Immutable compressed-sparse-row (CSR) graph.

use crate::builder::GraphBuilder;
use crate::error::{GraphError, Result};
use crate::subgraph::InducedSubgraph;
use crate::NodeId;

/// A simple, undirected graph in CSR form, optionally edge-weighted.
///
/// Invariants (established by [`GraphBuilder`]):
/// * no self-loops, no parallel edges,
/// * every adjacency list is sorted ascending (enables `O(log d)`
///   [`Graph::has_edge`] and linear-merge set operations),
/// * each undirected edge `{u, v}` is stored twice (`u → v` and `v → u`),
/// * when weighted, `weights` is CSR-aligned with `neighbors` (the weight
///   of the `i`-th adjacency entry is `weights[i]`), symmetric across the
///   two directions of an edge, and every weight is `>= 1`.
///
/// An absent weight array means the implicit uniform weight 1 — the
/// paper's unweighted setting — and every traversal kernel treats the two
/// identically.
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v + 1]` indexes `neighbors` for vertex `v`.
    offsets: Vec<u32>,
    /// Concatenated sorted adjacency lists; length `2 * num_edges`.
    neighbors: Vec<NodeId>,
    /// CSR-aligned integer edge weights (`None` = uniform weight 1).
    weights: Option<Vec<u32>>,
    /// Number of undirected edges.
    num_edges: usize,
}

impl Graph {
    /// Assembles a graph from pre-validated CSR arrays.
    ///
    /// Only callable from within the crate; external users go through
    /// [`GraphBuilder`] or [`Graph::from_edges`], which establish the
    /// invariants documented on the type.
    pub(crate) fn from_csr_parts(offsets: Vec<u32>, neighbors: Vec<NodeId>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap() as usize, neighbors.len());
        debug_assert_eq!(neighbors.len() % 2, 0);
        let num_edges = neighbors.len() / 2;
        Graph {
            offsets,
            neighbors,
            weights: None,
            num_edges,
        }
    }

    /// Assembles a weighted graph from pre-validated CSR arrays plus a
    /// CSR-aligned weight array (same invariants as
    /// [`Graph::from_csr_parts`], plus symmetric per-edge weights `>= 1`).
    pub(crate) fn from_csr_parts_weighted(
        offsets: Vec<u32>,
        neighbors: Vec<NodeId>,
        weights: Vec<u32>,
    ) -> Self {
        debug_assert_eq!(neighbors.len(), weights.len());
        debug_assert!(weights.iter().all(|&w| w >= 1));
        let mut g = Graph::from_csr_parts(offsets, neighbors);
        g.weights = Some(weights);
        g
    }

    /// Builds a graph with `num_nodes` vertices from an undirected edge list.
    ///
    /// Self-loops are dropped and duplicate edges (in either orientation) are
    /// merged. Returns an error if an endpoint is `>= num_nodes`.
    ///
    /// ```
    /// use mwc_graph::Graph;
    /// let g = Graph::from_edges(3, &[(0, 1), (1, 0), (1, 1), (1, 2)]).unwrap();
    /// assert_eq!(g.num_edges(), 2); // (0,1) deduped, (1,1) dropped
    /// ```
    pub fn from_edges(num_nodes: usize, edges: &[(NodeId, NodeId)]) -> Result<Self> {
        let mut b = GraphBuilder::with_capacity(num_nodes, edges.len());
        for &(u, v) in edges {
            b.add_edge(u, v)?;
        }
        Ok(b.build())
    }

    /// Builds a **weighted** graph from an undirected edge list with
    /// per-edge `u32` weights. Weights are clamped to `>= 1` (zero-weight
    /// edges would break shortest-path semantics), self-loops are dropped,
    /// and duplicate edges merge to the **minimum** weight seen (the only
    /// merge consistent with shortest paths).
    ///
    /// ```
    /// use mwc_graph::Graph;
    /// let g = Graph::from_weighted_edges(3, &[(0, 1, 4), (1, 0, 2), (1, 2, 7)]).unwrap();
    /// assert!(g.is_weighted());
    /// assert_eq!(g.edge_weight(0, 1), 2); // duplicate merged to min
    /// assert_eq!(g.edge_weight(1, 2), 7);
    /// ```
    pub fn from_weighted_edges(num_nodes: usize, edges: &[(NodeId, NodeId, u32)]) -> Result<Self> {
        let mut b = GraphBuilder::with_capacity(num_nodes, edges.len());
        for &(u, v, w) in edges {
            b.add_weighted_edge(u, v, w)?;
        }
        Ok(b.build())
    }

    /// An empty graph with `num_nodes` isolated vertices.
    pub fn empty(num_nodes: usize) -> Self {
        Graph {
            offsets: vec![0; num_nodes + 1],
            neighbors: Vec::new(),
            weights: None,
            num_edges: 0,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Sorted neighbors of `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Whether the undirected edge `{u, v}` exists. `O(log deg(u))`.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Whether the graph carries an explicit edge-weight array. Unweighted
    /// graphs behave as uniformly weight-1 everywhere.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// CSR-aligned weights of `v`'s adjacency list (same order as
    /// [`Graph::neighbors`]); `None` on unweighted graphs.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbor_weights(&self, v: NodeId) -> Option<&[u32]> {
        let weights = self.weights.as_ref()?;
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        Some(&weights[lo..hi])
    }

    /// The full CSR-aligned weight array (`weights[i]` belongs to the
    /// `i`-th adjacency entry); `None` on unweighted graphs. The traversal
    /// kernels stream this alongside the adjacency array.
    #[inline]
    pub fn csr_weights(&self) -> Option<&[u32]> {
        self.weights.as_deref()
    }

    /// Weight of the edge `{u, v}`: 1 on unweighted graphs, the stored
    /// weight otherwise. `O(log deg(u))`.
    ///
    /// # Panics
    /// Debug builds assert the edge exists; release builds return 1 for a
    /// missing edge.
    #[inline]
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> u32 {
        let Some(weights) = self.weights.as_ref() else {
            return 1;
        };
        match self.neighbors(u).binary_search(&v) {
            Ok(i) => weights[self.offsets[u as usize] as usize + i],
            Err(_) => {
                debug_assert!(false, "edge_weight on missing edge ({u},{v})");
                1
            }
        }
    }

    /// Mean edge weight rounded down, at least 1 — the Δ auto-tuning
    /// input of the delta-stepping kernel. Returns 1 on unweighted or
    /// edgeless graphs.
    pub fn mean_edge_weight(&self) -> u32 {
        let Some(weights) = self.weights.as_ref() else {
            return 1;
        };
        if weights.is_empty() {
            return 1;
        }
        let total: u64 = weights.iter().map(|&w| w as u64).sum();
        ((total / weights.len() as u64) as u32).max(1)
    }

    /// Maximum edge weight (1 on unweighted or edgeless graphs) — sizes
    /// the delta-stepping kernel's cyclic bucket array.
    pub fn max_edge_weight(&self) -> u32 {
        self.weights
            .as_ref()
            .and_then(|ws| ws.iter().copied().max())
            .unwrap_or(1)
            .max(1)
    }

    /// Iterates over vertices `0..num_nodes`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.num_nodes() as NodeId
    }

    /// Iterates over undirected edges, each reported once with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Iterates over undirected edges with their weights (weight 1 on
    /// unweighted graphs), each reported once with `u < v`.
    pub fn weighted_edges(&self) -> impl Iterator<Item = (NodeId, NodeId, u32)> + '_ {
        self.nodes().flat_map(move |u| {
            let lo = self.offsets[u as usize] as usize;
            self.neighbors(u)
                .iter()
                .enumerate()
                .filter(move |&(_, &v)| u < v)
                .map(move |(i, &v)| {
                    let w = self.weights.as_ref().map_or(1, |ws| ws[lo + i]);
                    (u, v, w)
                })
        })
    }

    /// Maximum degree, or 0 for an empty graph.
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes() as NodeId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Validates that `v` is a vertex of this graph.
    #[inline]
    pub fn check_node(&self, v: NodeId) -> Result<()> {
        if (v as usize) < self.num_nodes() {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfRange {
                node: v as u64,
                num_nodes: self.num_nodes(),
            })
        }
    }

    /// The subgraph induced by `nodes` (deduplicated, order-insensitive),
    /// with a local/global id mapping. See [`InducedSubgraph`].
    pub fn induced(&self, nodes: &[NodeId]) -> Result<InducedSubgraph> {
        InducedSubgraph::new(self, nodes)
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("num_nodes", &self.num_nodes())
            .field("num_edges", &self.num_edges())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> Graph {
        // 0-1-2 triangle, 2-3 tail.
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let g = triangle_plus_tail();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn has_edge_is_symmetric() {
        let g = triangle_plus_tail();
        for u in 0..4u32 {
            for v in 0..4u32 {
                assert_eq!(g.has_edge(u, v), g.has_edge(v, u), "({u},{v})");
            }
        }
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(1, 1));
    }

    #[test]
    fn edges_iterates_each_once_in_order() {
        let g = triangle_plus_tail();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        assert!(g.edges().next().is_none());
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn zero_node_graph() {
        let g = Graph::empty(0);
        assert_eq!(g.num_nodes(), 0);
        assert!(g.nodes().next().is_none());
    }

    #[test]
    fn from_edges_rejects_out_of_range() {
        let err = Graph::from_edges(2, &[(0, 5)]).unwrap_err();
        assert!(matches!(
            err,
            GraphError::NodeOutOfRange {
                node: 5,
                num_nodes: 2
            }
        ));
    }

    #[test]
    fn check_node_bounds() {
        let g = Graph::empty(3);
        assert!(g.check_node(2).is_ok());
        assert!(g.check_node(3).is_err());
    }

    #[test]
    fn unweighted_graphs_report_uniform_weight_one() {
        let g = triangle_plus_tail();
        assert!(!g.is_weighted());
        assert_eq!(g.neighbor_weights(2), None);
        assert_eq!(g.csr_weights(), None);
        assert_eq!(g.edge_weight(0, 1), 1);
        assert_eq!(g.mean_edge_weight(), 1);
        assert_eq!(g.max_edge_weight(), 1);
        let we: Vec<_> = g.weighted_edges().collect();
        assert_eq!(we, vec![(0, 1, 1), (0, 2, 1), (1, 2, 1), (2, 3, 1)]);
    }

    #[test]
    fn weighted_edges_round_trip_with_symmetry() {
        let g = Graph::from_weighted_edges(4, &[(0, 1, 3), (1, 2, 9), (2, 0, 1), (2, 3, 5)])
            .unwrap();
        assert!(g.is_weighted());
        assert_eq!(g.num_edges(), 4);
        // Symmetric lookups agree, in both directions.
        for (u, v, w) in [(0u32, 1u32, 3u32), (1, 2, 9), (0, 2, 1), (2, 3, 5)] {
            assert_eq!(g.edge_weight(u, v), w, "({u},{v})");
            assert_eq!(g.edge_weight(v, u), w, "({v},{u})");
        }
        // CSR-aligned weights match the sorted adjacency.
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.neighbor_weights(2).unwrap(), &[1, 9, 5]);
        assert_eq!(g.mean_edge_weight(), (3 + 9 + 1 + 5) * 2 / 8);
        assert_eq!(g.max_edge_weight(), 9);
        let we: Vec<_> = g.weighted_edges().collect();
        assert_eq!(we, vec![(0, 1, 3), (0, 2, 1), (1, 2, 9), (2, 3, 5)]);
    }

    #[test]
    fn weighted_duplicates_merge_to_min_and_zero_clamps() {
        let g = Graph::from_weighted_edges(3, &[(0, 1, 7), (1, 0, 4), (0, 1, 9), (1, 2, 0)])
            .unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_weight(0, 1), 4);
        assert_eq!(g.edge_weight(1, 2), 1); // zero clamps up to 1
    }
}
