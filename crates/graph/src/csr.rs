//! Immutable compressed-sparse-row (CSR) graph.

use crate::builder::GraphBuilder;
use crate::error::{GraphError, Result};
use crate::subgraph::InducedSubgraph;
use crate::NodeId;

/// A simple, undirected, unweighted graph in CSR form.
///
/// Invariants (established by [`GraphBuilder`]):
/// * no self-loops, no parallel edges,
/// * every adjacency list is sorted ascending (enables `O(log d)`
///   [`Graph::has_edge`] and linear-merge set operations),
/// * each undirected edge `{u, v}` is stored twice (`u → v` and `v → u`).
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v + 1]` indexes `neighbors` for vertex `v`.
    offsets: Vec<u32>,
    /// Concatenated sorted adjacency lists; length `2 * num_edges`.
    neighbors: Vec<NodeId>,
    /// Number of undirected edges.
    num_edges: usize,
}

impl Graph {
    /// Assembles a graph from pre-validated CSR arrays.
    ///
    /// Only callable from within the crate; external users go through
    /// [`GraphBuilder`] or [`Graph::from_edges`], which establish the
    /// invariants documented on the type.
    pub(crate) fn from_csr_parts(offsets: Vec<u32>, neighbors: Vec<NodeId>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap() as usize, neighbors.len());
        debug_assert_eq!(neighbors.len() % 2, 0);
        let num_edges = neighbors.len() / 2;
        Graph {
            offsets,
            neighbors,
            num_edges,
        }
    }

    /// Builds a graph with `num_nodes` vertices from an undirected edge list.
    ///
    /// Self-loops are dropped and duplicate edges (in either orientation) are
    /// merged. Returns an error if an endpoint is `>= num_nodes`.
    ///
    /// ```
    /// use mwc_graph::Graph;
    /// let g = Graph::from_edges(3, &[(0, 1), (1, 0), (1, 1), (1, 2)]).unwrap();
    /// assert_eq!(g.num_edges(), 2); // (0,1) deduped, (1,1) dropped
    /// ```
    pub fn from_edges(num_nodes: usize, edges: &[(NodeId, NodeId)]) -> Result<Self> {
        let mut b = GraphBuilder::with_capacity(num_nodes, edges.len());
        for &(u, v) in edges {
            b.add_edge(u, v)?;
        }
        Ok(b.build())
    }

    /// An empty graph with `num_nodes` isolated vertices.
    pub fn empty(num_nodes: usize) -> Self {
        Graph {
            offsets: vec![0; num_nodes + 1],
            neighbors: Vec::new(),
            num_edges: 0,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Sorted neighbors of `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Whether the undirected edge `{u, v}` exists. `O(log deg(u))`.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates over vertices `0..num_nodes`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.num_nodes() as NodeId
    }

    /// Iterates over undirected edges, each reported once with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Maximum degree, or 0 for an empty graph.
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes() as NodeId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Validates that `v` is a vertex of this graph.
    #[inline]
    pub fn check_node(&self, v: NodeId) -> Result<()> {
        if (v as usize) < self.num_nodes() {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfRange {
                node: v as u64,
                num_nodes: self.num_nodes(),
            })
        }
    }

    /// The subgraph induced by `nodes` (deduplicated, order-insensitive),
    /// with a local/global id mapping. See [`InducedSubgraph`].
    pub fn induced(&self, nodes: &[NodeId]) -> Result<InducedSubgraph> {
        InducedSubgraph::new(self, nodes)
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("num_nodes", &self.num_nodes())
            .field("num_edges", &self.num_edges())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> Graph {
        // 0-1-2 triangle, 2-3 tail.
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let g = triangle_plus_tail();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn has_edge_is_symmetric() {
        let g = triangle_plus_tail();
        for u in 0..4u32 {
            for v in 0..4u32 {
                assert_eq!(g.has_edge(u, v), g.has_edge(v, u), "({u},{v})");
            }
        }
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(1, 1));
    }

    #[test]
    fn edges_iterates_each_once_in_order() {
        let g = triangle_plus_tail();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        assert!(g.edges().next().is_none());
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn zero_node_graph() {
        let g = Graph::empty(0);
        assert_eq!(g.num_nodes(), 0);
        assert!(g.nodes().next().is_none());
    }

    #[test]
    fn from_edges_rejects_out_of_range() {
        let err = Graph::from_edges(2, &[(0, 5)]).unwrap_err();
        assert!(matches!(
            err,
            GraphError::NodeOutOfRange {
                node: 5,
                num_nodes: 2
            }
        ));
    }

    #[test]
    fn check_node_bounds() {
        let g = Graph::empty(3);
        assert!(g.check_node(2).is_ok());
        assert!(g.check_node(3).is_err());
    }
}
