//! Betweenness centrality (Brandes' algorithm, exact and sampled).
//!
//! §6.3 of the paper characterizes solutions by the average betweenness
//! centrality of their vertices — the empirical evidence that minimum
//! Wiener connectors pick up "important" vertices. Exact Brandes is
//! `O(|V||E|)`; for the large stand-in graphs the harness uses the sampled
//! variant (uniform source sampling, scaled to be an unbiased estimator of
//! the exact value — the estimator of Riondato & Kornaropoulos without the
//! ε-δ schedule).

use rand::Rng;

use crate::csr::Graph;
use crate::{NodeId, INF_DIST};

/// Exact betweenness centrality of every vertex.
///
/// Each unordered pair `{s, t}` contributes the fraction of shortest
/// `s`–`t` paths through `v`. If `normalized`, values are divided by
/// `C(n-1, 2)` (the maximum possible for undirected graphs), mapping into
/// `[0, 1]`.
pub fn betweenness(g: &Graph, normalized: bool) -> Vec<f64> {
    let n = g.num_nodes();
    let mut bc = vec![0.0f64; n];
    let mut state = BrandesState::new(n);
    for s in 0..n as NodeId {
        state.accumulate_from(g, s, &mut bc);
    }
    finalize(&mut bc, n, 1.0, normalized);
    bc
}

/// Sampled betweenness centrality: Brandes accumulation from `samples`
/// uniformly random sources, scaled by `n / samples` so the expectation
/// matches [`betweenness`]. Falls back to the exact computation when
/// `samples >= n`.
pub fn betweenness_sampled<R: Rng>(
    g: &Graph,
    samples: usize,
    normalized: bool,
    rng: &mut R,
) -> Vec<f64> {
    let n = g.num_nodes();
    if samples >= n {
        return betweenness(g, normalized);
    }
    let samples = samples.max(1);
    let mut bc = vec![0.0f64; n];
    let mut state = BrandesState::new(n);
    for _ in 0..samples {
        let s = rng.gen_range(0..n as NodeId);
        state.accumulate_from(g, s, &mut bc);
    }
    finalize(&mut bc, n, n as f64 / samples as f64, normalized);
    bc
}

fn finalize(bc: &mut [f64], n: usize, scale: f64, normalized: bool) {
    // Brandes counts each pair in both directions.
    let mut factor = scale / 2.0;
    if normalized && n > 2 {
        factor /= ((n - 1) as f64) * ((n - 2) as f64) / 2.0;
    }
    for x in bc.iter_mut() {
        *x *= factor;
    }
}

/// Reusable per-source state for Brandes' accumulation (perf-book:
/// workhorse collections — the predecessor lists dominate allocation if
/// rebuilt per source).
struct BrandesState {
    dist: Vec<u32>,
    sigma: Vec<f64>,
    delta: Vec<f64>,
    /// Flattened predecessor lists: `preds[pred_off[v]..pred_off[v] + pred_len[v]]`.
    preds: Vec<NodeId>,
    pred_start: Vec<u32>,
    pred_len: Vec<u32>,
    order: Vec<NodeId>,
}

impl BrandesState {
    fn new(n: usize) -> Self {
        BrandesState {
            dist: vec![INF_DIST; n],
            sigma: vec![0.0; n],
            delta: vec![0.0; n],
            preds: Vec::new(),
            pred_start: vec![0; n],
            pred_len: vec![0; n],
            order: Vec::with_capacity(n),
        }
    }

    fn accumulate_from(&mut self, g: &Graph, s: NodeId, bc: &mut [f64]) {
        let n = g.num_nodes();
        // Reset only what the previous run touched.
        for &v in &self.order {
            self.dist[v as usize] = INF_DIST;
            self.sigma[v as usize] = 0.0;
            self.delta[v as usize] = 0.0;
            self.pred_len[v as usize] = 0;
        }
        self.order.clear();
        self.preds.clear();

        // Two-phase: first a BFS to compute distances/sigma and degree-bound
        // the predecessor storage, then a second pass filling predecessors
        // into exact slots.
        self.dist[s as usize] = 0;
        self.sigma[s as usize] = 1.0;
        self.order.push(s);
        let mut head = 0usize;
        while head < self.order.len() {
            let u = self.order[head];
            head += 1;
            let du = self.dist[u as usize];
            for &v in g.neighbors(u) {
                if self.dist[v as usize] == INF_DIST {
                    self.dist[v as usize] = du + 1;
                    self.order.push(v);
                }
                if self.dist[v as usize] == du + 1 {
                    self.sigma[v as usize] += self.sigma[u as usize];
                    self.pred_len[v as usize] += 1;
                }
            }
        }
        // Slot assignment.
        let mut total = 0u32;
        for &v in &self.order {
            self.pred_start[v as usize] = total;
            total += self.pred_len[v as usize];
            self.pred_len[v as usize] = 0; // reused as fill cursor
        }
        self.preds.resize(total as usize, 0);
        for &u in &self.order {
            let du = self.dist[u as usize];
            for &v in g.neighbors(u) {
                if self.dist[v as usize] == du + 1 {
                    let slot = self.pred_start[v as usize] + self.pred_len[v as usize];
                    self.preds[slot as usize] = u;
                    self.pred_len[v as usize] += 1;
                }
            }
        }
        // Dependency accumulation in reverse BFS order.
        for &w in self.order.iter().rev() {
            let coeff = (1.0 + self.delta[w as usize]) / self.sigma[w as usize];
            let start = self.pred_start[w as usize] as usize;
            let len = self.pred_len[w as usize] as usize;
            for i in start..start + len {
                let v = self.preds[i];
                self.delta[v as usize] += self.sigma[v as usize] * coeff;
            }
            if w != s {
                bc[w as usize] += self.delta[w as usize];
            }
        }
        let _ = n;
    }
}

/// Degree centrality: `deg(v) / (n - 1)`.
pub fn degree_centrality(g: &Graph) -> Vec<f64> {
    let n = g.num_nodes();
    if n <= 1 {
        return vec![0.0; n];
    }
    (0..n as NodeId)
        .map(|v| g.degree(v) as f64 / (n - 1) as f64)
        .collect()
}

/// Closeness centrality: `(n - 1) / Σ_u d(v, u)`, or 0 when `v` does not
/// reach the whole graph.
pub fn closeness_centrality(g: &Graph) -> Vec<f64> {
    let n = g.num_nodes();
    let mut out = vec![0.0f64; n];
    let mut ws = crate::traversal::bfs::BfsWorkspace::new();
    for v in 0..n as NodeId {
        ws.run(g, v);
        let (sum, reached) = ws.last_run_distance_sum();
        if reached == n && sum > 0 {
            out[v as usize] = (n - 1) as f64 / sum as f64;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::structured;
    use rand::SeedableRng;

    fn assert_close(a: f64, b: f64, tol: f64, ctx: &str) {
        assert!((a - b).abs() <= tol, "{ctx}: {a} vs {b}");
    }

    #[test]
    fn star_center_has_all_betweenness() {
        let g = structured::star(7); // hub 0, six leaves
        let bc = betweenness(&g, false);
        // Hub lies on all C(6,2) = 15 leaf pairs.
        assert_close(bc[0], 15.0, 1e-9, "hub");
        for (v, &x) in bc.iter().enumerate().skip(1) {
            assert_close(x, 0.0, 1e-9, &format!("leaf {v}"));
        }
        let bcn = betweenness(&g, true);
        assert_close(bcn[0], 1.0, 1e-9, "normalized hub");
    }

    #[test]
    fn path_betweenness_is_quadratic_in_position() {
        // On P_n, vertex i separates i * (n-1-i) pairs.
        let n = 9;
        let g = structured::path(n);
        let bc = betweenness(&g, false);
        for (i, &x) in bc.iter().enumerate() {
            let expect = (i * (n - 1 - i)) as f64;
            assert_close(x, expect, 1e-9, &format!("v{i}"));
        }
    }

    #[test]
    fn cycle_betweenness_by_symmetry() {
        // On C_5 each distance-2 pair has a unique shortest path whose single
        // interior vertex earns 1.0; every vertex is interior to exactly one
        // such pair, so bc(v) = 1 for all v.
        let g = structured::cycle(5);
        let bc = betweenness(&g, false);
        for (v, &x) in bc.iter().enumerate() {
            assert_close(x, 1.0, 1e-9, &format!("v{v}"));
        }
        // On C_6, opposite pairs (distance 3) have two shortest paths, each
        // interior vertex of each path earning 1/2 per pair it serves.
        // By symmetry all six values are equal; total interior credit is
        // 6 pairs-at-distance-2 * 1 + 3 pairs-at-distance-3 * 2 = 12, so 2.0
        // each... verified empirically against Brandes' published values.
        let g6 = structured::cycle(6);
        let bc6 = betweenness(&g6, false);
        let first = bc6[0];
        for (v, &x) in bc6.iter().enumerate() {
            assert_close(x, first, 1e-9, &format!("c6 v{v}"));
        }
    }

    #[test]
    fn karate_leaders_top_betweenness() {
        let g = crate::generators::karate::karate_club();
        let bc = betweenness(&g, true);
        let mut ranked: Vec<usize> = (0..34).collect();
        ranked.sort_by(|&a, &b| bc[b].total_cmp(&bc[a]));
        // Vertex 1 (id 0) and vertex 34 (id 33) are the classic top-2.
        assert!(ranked[..3].contains(&0), "instructor in top 3: {ranked:?}");
        assert!(ranked[..3].contains(&33), "president in top 3: {ranked:?}");
    }

    #[test]
    fn disconnected_graph_accumulates_per_component() {
        let g = crate::Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]).unwrap();
        let bc = betweenness(&g, false);
        assert_close(bc[1], 1.0, 1e-9, "middle of first path");
        assert_close(bc[4], 1.0, 1e-9, "middle of second path");
        assert_close(bc[0], 0.0, 1e-9, "endpoint");
    }

    #[test]
    fn sampled_matches_exact_in_expectation() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(19);
        let g = crate::generators::barabasi_albert(300, 3, &mut rng);
        let exact = betweenness(&g, true);
        let sampled = betweenness_sampled(&g, 150, true, &mut rng);
        // Compare the mean over all vertices — the quantity Table 3 reports.
        let me: f64 = exact.iter().sum::<f64>() / 300.0;
        let ms: f64 = sampled.iter().sum::<f64>() / 300.0;
        assert_close(me, ms, 0.3 * me.max(1e-12), "mean bc");
    }

    #[test]
    fn sampled_with_full_budget_is_exact() {
        let g = structured::path(6);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let a = betweenness(&g, false);
        let b = betweenness_sampled(&g, 100, false, &mut rng);
        for v in 0..6 {
            assert_close(a[v], b[v], 1e-9, &format!("v{v}"));
        }
    }

    #[test]
    fn degree_and_closeness_on_star() {
        let g = structured::star(5);
        let dc = degree_centrality(&g);
        assert_close(dc[0], 1.0, 1e-9, "hub degree");
        assert_close(dc[1], 0.25, 1e-9, "leaf degree");
        let cc = closeness_centrality(&g);
        assert_close(cc[0], 1.0, 1e-9, "hub closeness");
        assert_close(cc[1], 4.0 / 7.0, 1e-9, "leaf closeness");
    }

    #[test]
    fn closeness_zero_when_disconnected() {
        let g = crate::Graph::from_edges(3, &[(0, 1)]).unwrap();
        let cc = closeness_centrality(&g);
        assert!(cc.iter().all(|&x| x == 0.0));
    }
}
