//! Community detection: modularity, Clauset–Newman–Moore greedy
//! agglomeration, and label propagation.
//!
//! The paper's §7 Twitter case study clusters the #kdd2014 mention graph
//! with "the Clauset-Newman-Moore algorithm … into 10 communities" before
//! querying across them, and §6.4's sc/dc workloads need community labels
//! when no ground truth is planted. This module provides that substrate:
//!
//! * [`modularity`] — Newman's modularity `Q` of a labelling,
//! * [`cnm`] — the CNM greedy: start from singletons, repeatedly merge
//!   the connected community pair with the largest modularity gain,
//! * [`label_propagation`] — a cheap near-linear alternative used as a
//!   cross-check in tests.
//!
//! The CNM merge gain for communities `c`, `d` follows directly from the
//! definition: `ΔQ = w(c,d)/m − deg(c)·deg(d)/(2m²)`, where `w(c,d)`
//! counts edges between the communities and `deg(·)` sums vertex degrees.

use std::collections::BinaryHeap;

use rand::seq::SliceRandom;
use rand::Rng;

use crate::hash::FxHashMap;
use crate::{Graph, NodeId};

/// A hard partition of the vertex set into communities.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// `membership[v]` = community id of `v`, dense in `0..num_communities`.
    pub membership: Vec<u32>,
    /// Number of communities.
    pub num_communities: usize,
    /// Modularity of the partition.
    pub modularity: f64,
}

impl Clustering {
    /// The vertices of community `c`.
    pub fn community(&self, c: u32) -> Vec<NodeId> {
        self.membership
            .iter()
            .enumerate()
            .filter(|&(_, &m)| m == c)
            .map(|(v, _)| v as NodeId)
            .collect()
    }

    /// Community sizes indexed by community id.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_communities];
        for &c in &self.membership {
            sizes[c as usize] += 1;
        }
        sizes
    }
}

/// Newman's modularity of a labelling:
/// `Q = Σ_c [ w(c,c)/m − (deg(c)/2m)² ]` with `w(c,c)` the intra-community
/// edge count. Returns 0 for edgeless graphs (the conventional value).
pub fn modularity(g: &Graph, membership: &[u32]) -> f64 {
    assert_eq!(membership.len(), g.num_nodes(), "labelling arity mismatch");
    let m = g.num_edges() as f64;
    if m == 0.0 {
        return 0.0;
    }
    let num_comms = membership
        .iter()
        .copied()
        .max()
        .map_or(0, |c| c as usize + 1);
    let mut intra = vec![0u64; num_comms];
    let mut deg = vec![0u64; num_comms];
    for v in 0..g.num_nodes() as NodeId {
        deg[membership[v as usize] as usize] += g.degree(v) as u64;
    }
    for (u, v) in g.edges() {
        if membership[u as usize] == membership[v as usize] {
            intra[membership[u as usize] as usize] += 1;
        }
    }
    (0..num_comms)
        .map(|c| intra[c] as f64 / m - (deg[c] as f64 / (2.0 * m)).powi(2))
        .sum()
}

/// Stopping rule of the CNM agglomeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CnmStop {
    /// Merge while some merge strictly increases modularity (the standard
    /// greedy stop).
    PeakModularity,
    /// Keep merging — even through negative gains — until exactly this
    /// many communities remain (or no connected pair is left). The §7 case
    /// study uses 10.
    Communities(usize),
}

/// Clauset–Newman–Moore greedy modularity agglomeration.
///
/// Maintains per-community neighbour maps and a lazily-invalidated global
/// heap of candidate merges, giving the usual `O(m log² n)`-ish behaviour
/// on sparse graphs. Isolated vertices end up in singleton communities.
///
/// ```
/// use mwc_graph::community::{cnm, CnmStop};
/// use mwc_graph::generators::karate::karate_club;
///
/// let clustering = cnm(&karate_club(), CnmStop::PeakModularity);
/// assert!(clustering.modularity > 0.3); // the club's known structure
/// assert!(clustering.num_communities >= 2);
/// ```
pub fn cnm(g: &Graph, stop: CnmStop) -> Clustering {
    let n = g.num_nodes();
    let m = g.num_edges() as f64;
    if n == 0 || m == 0.0 {
        return Clustering {
            membership: (0..n as u32).collect(),
            num_communities: n,
            modularity: 0.0,
        };
    }

    // Community state; `parent` maps a dead community to its absorber.
    let mut neigh: Vec<FxHashMap<u32, u64>> = vec![FxHashMap::default(); n];
    let mut deg: Vec<u64> = (0..n as NodeId).map(|v| g.degree(v) as u64).collect();
    let mut alive = vec![true; n];
    let mut version = vec![0u32; n];
    let mut live_count = n;
    for (u, v) in g.edges() {
        *neigh[u as usize].entry(v).or_insert(0) += 1;
        *neigh[v as usize].entry(u).or_insert(0) += 1;
    }

    let gain = |w_cd: u64, deg_c: u64, deg_d: u64| -> f64 {
        w_cd as f64 / m - (deg_c as f64) * (deg_d as f64) / (2.0 * m * m)
    };

    // Heap entries: (ΔQ, c, d, version_c, version_d); lazily invalidated.
    #[derive(PartialEq)]
    struct Cand(f64, u32, u32, u32, u32);
    impl Eq for Cand {}
    impl PartialOrd for Cand {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Cand {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0
                .total_cmp(&other.0)
                .then_with(|| (self.1, self.2).cmp(&(other.1, other.2)))
        }
    }

    let mut heap: BinaryHeap<Cand> = BinaryHeap::new();
    for c in 0..n as u32 {
        for (&d, &w) in &neigh[c as usize] {
            if c < d {
                heap.push(Cand(gain(w, deg[c as usize], deg[d as usize]), c, d, 0, 0));
            }
        }
    }

    let target = match stop {
        CnmStop::PeakModularity => 1,
        CnmStop::Communities(k) => k.max(1),
    };

    let mut absorbed_into: Vec<u32> = (0..n as u32).collect();
    while live_count > target {
        let Some(Cand(dq, c, d, vc, vd)) = heap.pop() else {
            break; // no connected pair left (disconnected graph)
        };
        let (c, d) = (c as usize, d as usize);
        if !alive[c] || !alive[d] || version[c] != vc || version[d] != vd {
            continue; // stale entry
        }
        if stop == CnmStop::PeakModularity && dq <= 1e-12 {
            break;
        }
        // Merge d into c.
        alive[d] = false;
        absorbed_into[d] = c as u32;
        live_count -= 1;
        version[c] += 1;
        deg[c] += deg[d];
        let d_neigh = std::mem::take(&mut neigh[d]);
        for (e, w) in d_neigh {
            let e = e as usize;
            if e == c {
                continue;
            }
            // Move d's adjacency onto c, keeping e's map consistent.
            let w_ce = {
                let entry = neigh[c].entry(e as u32).or_insert(0);
                *entry += w;
                *entry
            };
            neigh[e].remove(&(d as u32));
            neigh[e].insert(c as u32, w_ce);
            // Note: `version[e]` is NOT bumped — gains between `e` and
            // partners other than `c`/`d` are unchanged by this merge, and
            // bumping would silently drop their heap entries.
            let (a, b) = (c.min(e) as u32, c.max(e) as u32);
            heap.push(Cand(
                gain(w_ce, deg[c], deg[e]),
                a,
                b,
                version[a as usize],
                version[b as usize],
            ));
        }
        neigh[c].remove(&(d as u32));
        // Refresh c's surviving candidate merges (degrees changed).
        for (&e, &w) in &neigh[c] {
            let e = e as usize;
            let (a, b) = (c.min(e) as u32, c.max(e) as u32);
            heap.push(Cand(
                gain(w, deg[c], deg[e]),
                a,
                b,
                version[a as usize],
                version[b as usize],
            ));
        }
    }

    // Path-compress the absorption chains into final labels.
    let mut membership = vec![0u32; n];
    for (v, slot) in membership.iter_mut().enumerate() {
        let mut c = v as u32;
        while absorbed_into[c as usize] != c {
            c = absorbed_into[c as usize];
        }
        *slot = c;
    }
    renumber(&mut membership);
    let num_communities = membership
        .iter()
        .copied()
        .max()
        .map_or(0, |c| c as usize + 1);
    let q = modularity(g, &membership);
    Clustering {
        membership,
        num_communities,
        modularity: q,
    }
}

/// Asynchronous label propagation: every vertex repeatedly adopts the
/// most frequent label among its neighbours (ties broken toward keeping
/// the current label, then lowest label), in random order, until a sweep
/// changes nothing or `max_sweeps` is reached.
pub fn label_propagation<R: Rng>(g: &Graph, max_sweeps: usize, rng: &mut R) -> Clustering {
    let n = g.num_nodes();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut order: Vec<usize> = (0..n).collect();
    let mut counts: FxHashMap<u32, usize> = FxHashMap::default();
    for _ in 0..max_sweeps {
        order.shuffle(rng);
        let mut changed = false;
        for &v in &order {
            counts.clear();
            for &nb in g.neighbors(v as NodeId) {
                *counts.entry(labels[nb as usize]).or_insert(0) += 1;
            }
            if counts.is_empty() {
                continue;
            }
            let current = labels[v];
            let best = counts
                .iter()
                .max_by(|a, b| {
                    a.1.cmp(b.1)
                        // Prefer keeping the current label among ties, then
                        // the smallest label (deterministic given the order).
                        .then_with(|| (*a.0 == current).cmp(&(*b.0 == current)))
                        .then_with(|| b.0.cmp(a.0))
                })
                .map(|(&l, _)| l)
                .expect("non-empty counts");
            if best != current {
                labels[v] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    renumber(&mut labels);
    let num_communities = labels.iter().copied().max().map_or(0, |c| c as usize + 1);
    let q = modularity(g, &labels);
    Clustering {
        membership: labels,
        num_communities,
        modularity: q,
    }
}

/// Renumbers labels to a dense `0..k` range, ordered by first appearance.
fn renumber(labels: &mut [u32]) {
    let mut map: FxHashMap<u32, u32> = FxHashMap::default();
    for l in labels.iter_mut() {
        let next = map.len() as u32;
        *l = *map.entry(*l).or_insert(next);
    }
}

/// Pair-counting Rand index between two labellings: the fraction of vertex
/// pairs on which the labellings agree (same/same or different/different).
/// Used to score recovery of planted partitions.
pub fn rand_index(a: &[u32], b: &[u32]) -> f64 {
    assert_eq!(a.len(), b.len(), "labelling arity mismatch");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let mut agree = 0u64;
    for i in 0..n {
        for j in (i + 1)..n {
            if (a[i] == a[j]) == (b[i] == b[j]) {
                agree += 1;
            }
        }
    }
    agree as f64 / (n * (n - 1) / 2) as f64
}

/// Smallest number of communities over which a query set spreads, for
/// classifying workloads as same-community (sc) or different-community
/// (dc) in §6.4 style experiments.
pub fn communities_spanned(membership: &[u32], q: &[NodeId]) -> usize {
    let mut seen: Vec<u32> = q.iter().map(|&v| membership[v as usize]).collect();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::karate::karate_club;
    use crate::generators::sbm::planted_partition;
    use crate::generators::structured;
    use rand::SeedableRng;

    #[test]
    fn modularity_of_single_community_is_zero() {
        let g = structured::complete(5);
        let q = modularity(&g, &[0, 0, 0, 0, 0]);
        assert!(q.abs() < 1e-12, "got {q}");
    }

    #[test]
    fn modularity_of_singletons_is_negative() {
        let g = structured::cycle(6);
        let labels: Vec<u32> = (0..6).collect();
        assert!(modularity(&g, &labels) < 0.0);
    }

    #[test]
    fn modularity_of_two_cliques_split_is_high() {
        // Two K4s joined by one edge; the planted split scores ≈ 0.5 − ε.
        let mut edges = Vec::new();
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                edges.push((i, j));
                edges.push((i + 4, j + 4));
            }
        }
        edges.push((0, 4));
        let g = Graph::from_edges(8, &edges).unwrap();
        let split = modularity(&g, &[0, 0, 0, 0, 1, 1, 1, 1]);
        let merged = modularity(&g, &[0; 8]);
        assert!(split > 0.3, "split Q = {split}");
        assert!(split > merged);
    }

    #[test]
    fn cnm_recovers_two_cliques() {
        let mut edges = Vec::new();
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                edges.push((i, j));
                edges.push((i + 5, j + 5));
            }
        }
        edges.push((0, 5));
        let g = Graph::from_edges(10, &edges).unwrap();
        let c = cnm(&g, CnmStop::PeakModularity);
        assert_eq!(c.num_communities, 2);
        let planted: Vec<u32> = (0..10).map(|v| if v < 5 { 0 } else { 1 }).collect();
        assert_eq!(rand_index(&c.membership, &planted), 1.0);
        assert!((c.modularity - modularity(&g, &c.membership)).abs() < 1e-12);
    }

    #[test]
    fn cnm_karate_finds_known_structure() {
        // CNM on the karate club famously finds ~3 communities with
        // modularity around 0.38; the exact split depends on tie-breaks,
        // so assert the well-established ranges.
        let g = karate_club();
        let c = cnm(&g, CnmStop::PeakModularity);
        assert!(
            (2..=5).contains(&c.num_communities),
            "unexpected community count {}",
            c.num_communities
        );
        assert!(c.modularity > 0.3, "Q = {}", c.modularity);
    }

    #[test]
    fn cnm_target_community_count_is_honored() {
        let g = karate_club();
        for k in [2usize, 5, 10] {
            let c = cnm(&g, CnmStop::Communities(k));
            assert_eq!(c.num_communities, k, "target {k}");
        }
    }

    #[test]
    fn cnm_recovers_planted_partition() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let pp = planted_partition(&[30, 30, 30], 0.5, 0.02, &mut rng);
        let c = cnm(&pp.graph, CnmStop::PeakModularity);
        let ri = rand_index(&c.membership, &pp.membership);
        assert!(
            ri > 0.9,
            "rand index {ri} too low (k = {})",
            c.num_communities
        );
    }

    #[test]
    fn cnm_handles_disconnected_and_edgeless_graphs() {
        // Edgeless: all singletons, Q = 0.
        let g = Graph::from_edges(4, &[]).unwrap();
        let c = cnm(&g, CnmStop::PeakModularity);
        assert_eq!(c.num_communities, 4);
        assert_eq!(c.modularity, 0.0);
        // Two disjoint triangles: merging stops at the components even
        // with an aggressive target (no connected pair crosses).
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]).unwrap();
        let c = cnm(&g, CnmStop::Communities(1));
        assert_eq!(c.num_communities, 2);
    }

    #[test]
    fn label_propagation_separates_cliques() {
        let mut edges = Vec::new();
        for i in 0..6u32 {
            for j in (i + 1)..6 {
                edges.push((i, j));
                edges.push((i + 6, j + 6));
            }
        }
        edges.push((0, 6));
        let g = Graph::from_edges(12, &edges).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let c = label_propagation(&g, 50, &mut rng);
        let planted: Vec<u32> = (0..12).map(|v| if v < 6 { 0 } else { 1 }).collect();
        assert!(rand_index(&c.membership, &planted) > 0.9);
    }

    #[test]
    fn rand_index_extremes() {
        assert_eq!(rand_index(&[0, 0, 1, 1], &[1, 1, 0, 0]), 1.0); // same partition, renamed
        assert_eq!(rand_index(&[0, 1, 2, 3], &[0, 1, 2, 3]), 1.0);
        let ri = rand_index(&[0, 0, 0, 0], &[0, 1, 2, 3]);
        assert_eq!(ri, 0.0); // all pairs disagree
    }

    #[test]
    fn communities_spanned_counts_distinct() {
        let membership = vec![0, 0, 1, 1, 2];
        assert_eq!(communities_spanned(&membership, &[0, 1]), 1);
        assert_eq!(communities_spanned(&membership, &[0, 2, 4]), 3);
        assert_eq!(communities_spanned(&membership, &[2, 3, 2]), 1);
    }

    #[test]
    fn cnm_membership_is_dense_and_total() {
        let g = karate_club();
        let c = cnm(&g, CnmStop::PeakModularity);
        assert_eq!(c.membership.len(), g.num_nodes());
        let max = *c.membership.iter().max().unwrap() as usize;
        assert_eq!(max + 1, c.num_communities);
        for lbl in 0..c.num_communities as u32 {
            assert!(c.membership.contains(&lbl), "label {lbl} unused");
        }
    }
}
