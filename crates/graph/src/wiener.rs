//! The Wiener index and related distance aggregates.
//!
//! `W(H) = Σ_{{u,v} ⊆ V(H)} d_H(u, v)` (paper Eq. 1, unordered pairs).
//! The paper also uses the root-based proxy `A(H, r) = |V(H)| · Σ_v d_H(v, r)`
//! (Lemma 1 sandwiches `W` between `A/2` and `A`), which lives in
//! `mwc-core::objective`; this module provides the graph-level primitives.

use std::sync::atomic::{AtomicBool, Ordering};

use crate::csr::Graph;
use crate::error::Result;
use crate::traversal::bfs::{BfsWorkspace, MsBfsWorkspace, MS_BFS_LANES};
use crate::traversal::delta::{DeltaWorkspace, MsDeltaWorkspace};
use crate::traversal::dijkstra::DijkstraWorkspace;
use crate::NodeId;

/// Below this many vertices, [`wiener_index`] stays on the sequential
/// per-source loop: thread spawn + multi-source mask bookkeeping cost
/// more than the whole computation on the candidate subgraphs the
/// solvers evaluate (tens of vertices).
const PARALLEL_WIENER_MIN_NODES: usize = 1024;

/// Exact Wiener index via all-pairs BFS; `None` if the graph is
/// disconnected (the Wiener index is conventionally infinite then).
///
/// `O(|V| · (|V| + |E|))` total work. Small graphs (the solvers' candidate
/// subgraphs) run the sequential per-source loop; above
/// `PARALLEL_WIENER_MIN_NODES` vertices the sources are batched into
/// 64-lane multi-source BFS sweeps distributed over scoped worker
/// threads (the same chunking shape as `QueryEngine::solve_batch`), so
/// the CSR is streamed once per level per batch instead of once per
/// source. For million-node inputs prefer [`wiener_index_sampled`];
/// callers already running on a saturated thread pool (batch workers)
/// should call [`wiener_index_sequential`] to avoid nesting pools — the
/// solvers' `parallel` config flags do exactly that.
pub fn wiener_index(g: &Graph) -> Option<u64> {
    let n = g.num_nodes();
    if n <= 1 {
        return Some(0);
    }
    if n < PARALLEL_WIENER_MIN_NODES {
        return wiener_index_sequential(g);
    }

    let batches: Vec<(NodeId, NodeId)> = (0..n)
        .step_by(MS_BFS_LANES)
        .map(|lo| (lo as NodeId, (lo + MS_BFS_LANES).min(n) as NodeId))
        .collect();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(batches.len());
    if threads <= 1 {
        return wiener_index_sequential(g);
    }

    let weighted = g.is_weighted();
    let disconnected = AtomicBool::new(false);
    let chunk = batches.len().div_ceil(threads);
    let partials: Vec<Option<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = batches
            .chunks(chunk)
            .map(|my_batches| {
                let disconnected = &disconnected;
                scope.spawn(move || {
                    // One batched workspace per worker; weighted graphs
                    // run the delta-stepping twin (same lane layout,
                    // distances bit-identical to per-source Dijkstra).
                    let mut bfs = (!weighted).then(MsBfsWorkspace::new);
                    let mut delta = weighted.then(MsDeltaWorkspace::new);
                    let mut total = 0u64;
                    for &(lo, hi) in my_batches {
                        // A disconnected verdict is global: stop early.
                        if disconnected.load(Ordering::Relaxed) {
                            return None;
                        }
                        let sources: Vec<NodeId> = (lo..hi).collect();
                        if let Some(ws) = delta.as_mut() {
                            ws.run(g, &sources);
                        } else if let Some(ws) = bfs.as_mut() {
                            ws.run(g, &sources);
                        }
                        for lane in 0..sources.len() {
                            let (sum, reached) = match delta.as_ref() {
                                Some(ws) => ws.distance_sum(lane),
                                None => bfs.as_ref().expect("bfs workspace").distance_sum(lane),
                            };
                            if reached != n {
                                disconnected.store(true, Ordering::Relaxed);
                                return None;
                            }
                            total += sum;
                        }
                    }
                    Some(total)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("wiener worker panicked"))
            .collect()
    });

    let mut total = 0u64;
    for p in partials {
        total += p?;
    }
    Some(total / 2)
}

/// The sequential per-source all-pairs loop — the historical kernel, kept
/// both as the small-`n` fast path and as the parity reference the
/// property tests pin [`wiener_index`] against. Weighted graphs run
/// per-source [`DijkstraWorkspace`] (the weighted parity anchor).
pub fn wiener_index_sequential(g: &Graph) -> Option<u64> {
    let n = g.num_nodes();
    if n <= 1 {
        return Some(0);
    }
    let mut total = 0u64;
    if g.is_weighted() {
        let mut ws = DijkstraWorkspace::new();
        for v in 0..n as NodeId {
            ws.run(g, v);
            let (sum, reached) = ws.last_run_distance_sum();
            if reached != n {
                return None;
            }
            total += sum;
        }
    } else {
        let mut ws = BfsWorkspace::new();
        for v in 0..n as NodeId {
            ws.run(g, v);
            let (sum, reached) = ws.last_run_distance_sum();
            if reached != n {
                return None;
            }
            total += sum;
        }
    }
    Some(total / 2)
}

/// Exact Wiener index of the subgraph induced by `nodes`.
///
/// `None` if the induced subgraph is disconnected; errors only on
/// out-of-range ids.
pub fn wiener_index_of_subset(g: &Graph, nodes: &[NodeId]) -> Result<Option<u64>> {
    let sub = g.induced(nodes)?;
    Ok(wiener_index(sub.graph()))
}

/// Sum of shortest-path distances from `r` to every vertex (weighted
/// distances on weighted graphs).
///
/// `None` if some vertex is unreachable from `r`.
pub fn distance_sum_from(g: &Graph, r: NodeId) -> Option<u64> {
    let (sum, reached) = if g.is_weighted() {
        let mut ws = DeltaWorkspace::new();
        ws.run(g, r);
        ws.last_run_distance_sum()
    } else {
        let mut ws = BfsWorkspace::new();
        ws.run(g, r);
        ws.last_run_distance_sum()
    };
    (reached == g.num_nodes()).then_some(sum)
}

/// Average pairwise distance `W(G) / C(n, 2)`; `None` if disconnected or
/// `n < 2`.
pub fn average_distance(g: &Graph) -> Option<f64> {
    let n = g.num_nodes();
    if n < 2 {
        return None;
    }
    let w = wiener_index(g)?;
    let pairs = n as f64 * (n as f64 - 1.0) / 2.0;
    Some(w as f64 / pairs)
}

/// Unbiased sampled estimate of the Wiener index.
///
/// Runs BFS from `samples` uniform random sources and scales the average
/// row sum: `W = (n / 2) · E_v[Σ_u d(v, u)]`. Returns `None` if any sampled
/// source fails to reach the whole graph (disconnected). With `samples >=
/// n` this degrades gracefully into the exact computation over all sources.
pub fn wiener_index_sampled<R: rand::Rng>(g: &Graph, samples: usize, rng: &mut R) -> Option<f64> {
    let n = g.num_nodes();
    if n <= 1 {
        return Some(0.0);
    }
    if samples >= n {
        return wiener_index(g).map(|w| w as f64);
    }
    let mut bfs = (!g.is_weighted()).then(BfsWorkspace::new);
    let mut delta = g.is_weighted().then(DeltaWorkspace::new);
    let mut total = 0.0f64;
    for _ in 0..samples.max(1) {
        let v = rng.gen_range(0..n as NodeId);
        let (sum, reached) = if let Some(ws) = delta.as_mut() {
            ws.run(g, v);
            ws.last_run_distance_sum()
        } else {
            let ws = bfs.as_mut().expect("bfs workspace");
            ws.run(g, v);
            ws.last_run_distance_sum()
        };
        if reached != n {
            return None;
        }
        total += sum as f64;
    }
    let avg_row = total / samples.max(1) as f64;
    Some(avg_row * n as f64 / 2.0)
}

/// Eccentricity of `r` (max distance to any vertex, weighted on weighted
/// graphs); `None` if `r` does not reach the whole graph.
pub fn eccentricity(g: &Graph, r: NodeId) -> Option<u32> {
    let mut bfs = BfsWorkspace::new();
    let mut delta = DeltaWorkspace::new();
    let dist = if g.is_weighted() {
        delta.run(g, r)
    } else {
        bfs.run(g, r)
    };
    let mut reached = 0usize;
    let mut ecc = 0u32;
    for &d in dist.iter() {
        if d != crate::INF_DIST {
            reached += 1;
            ecc = ecc.max(d);
        }
    }
    (reached == g.num_nodes()).then_some(ecc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::structured;
    use rand::SeedableRng;

    /// Closed form for a path on n vertices: W(P_n) = (n³ - n) / 6.
    fn path_wiener(n: u64) -> u64 {
        (n * n * n - n) / 6
    }

    #[test]
    fn wiener_of_paths_matches_closed_form() {
        for n in 2..=12u64 {
            let g = structured::path(n as usize);
            assert_eq!(wiener_index(&g), Some(path_wiener(n)), "P_{n}");
        }
    }

    #[test]
    fn wiener_of_complete_graph_is_pair_count() {
        for n in 2..=8u64 {
            let g = structured::complete(n as usize);
            assert_eq!(wiener_index(&g), Some(n * (n - 1) / 2));
        }
    }

    #[test]
    fn wiener_of_star_is_known() {
        // Star on n vertices: (n-1) spokes at distance 1, C(n-1,2) leaf pairs
        // at distance 2.
        for n in 2..=9u64 {
            let g = structured::star(n as usize);
            let leaves = n - 1;
            let expect = leaves + 2 * (leaves * (leaves - 1) / 2);
            assert_eq!(wiener_index(&g), Some(expect));
        }
    }

    #[test]
    fn paper_figure_2_values() {
        // Fig 2: line v1..v10 plus two overlapping half-covering roots.
        // W(Q) = 165 (the bare line), W(Q ∪ {r1}) = 151, W(Q ∪ {r1, r2}) = 142.
        let g = structured::figure2_graph(10);
        // Vertices 0..10 are the line, 10 and 11 the roots.
        let line: Vec<NodeId> = (0..10).collect();
        assert_eq!(wiener_index_of_subset(&g, &line).unwrap(), Some(165));
        let with_r1: Vec<NodeId> = (0..11).collect();
        assert_eq!(wiener_index_of_subset(&g, &with_r1).unwrap(), Some(151));
        let with_both: Vec<NodeId> = (0..12).collect();
        assert_eq!(wiener_index_of_subset(&g, &with_both).unwrap(), Some(142));
    }

    #[test]
    fn disconnected_has_no_wiener_index() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(wiener_index(&g), None);
        assert_eq!(wiener_index_of_subset(&g, &[0, 1, 2]).unwrap(), None);
        assert_eq!(wiener_index_of_subset(&g, &[0, 1]).unwrap(), Some(1));
    }

    #[test]
    fn tiny_graphs() {
        assert_eq!(wiener_index(&Graph::empty(0)), Some(0));
        assert_eq!(wiener_index(&Graph::empty(1)), Some(0));
        assert_eq!(average_distance(&Graph::empty(1)), None);
    }

    #[test]
    fn distance_sum_and_eccentricity() {
        let g = structured::path(5);
        assert_eq!(distance_sum_from(&g, 0), Some(1 + 2 + 3 + 4));
        assert_eq!(distance_sum_from(&g, 2), Some(1 + 1 + 2 + 2));
        assert_eq!(eccentricity(&g, 0), Some(4));
        assert_eq!(eccentricity(&g, 2), Some(2));
        let h = Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert_eq!(distance_sum_from(&h, 0), None);
        assert_eq!(eccentricity(&h, 0), None);
    }

    #[test]
    fn average_distance_of_complete_is_one() {
        let g = structured::complete(6);
        assert_eq!(average_distance(&g), Some(1.0));
    }

    #[test]
    fn sampled_estimate_is_close_on_moderate_graph() {
        let g = structured::grid(20, 20, false);
        let exact = wiener_index(&g).unwrap() as f64;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let est = wiener_index_sampled(&g, 120, &mut rng).unwrap();
        let rel = (est - exact).abs() / exact;
        assert!(
            rel < 0.1,
            "relative error {rel} too large (est {est}, exact {exact})"
        );
    }

    #[test]
    fn sampled_falls_back_to_exact_for_large_sample_counts() {
        let g = structured::path(8);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let est = wiener_index_sampled(&g, 1000, &mut rng).unwrap();
        assert_eq!(est, wiener_index(&g).unwrap() as f64);
    }

    #[test]
    fn parallel_path_matches_sequential_above_threshold() {
        // 40×40 grid: 1600 nodes, above PARALLEL_WIENER_MIN_NODES, so
        // wiener_index takes the multi-source parallel path.
        let g = structured::grid(40, 40, false);
        assert_eq!(wiener_index(&g), wiener_index_sequential(&g));
        // Closed form for a path keeps the parallel path honest too.
        let p = structured::path(1500);
        let n = 1500u64;
        assert_eq!(wiener_index(&p), Some((n * n * n - n) / 6));
    }

    #[test]
    fn weighted_wiener_sums_weighted_distances() {
        // Weighted path 0 -2- 1 -3- 2: pairs (0,1)=2, (1,2)=3, (0,2)=5.
        let g = Graph::from_weighted_edges(3, &[(0, 1, 2), (1, 2, 3)]).unwrap();
        assert_eq!(wiener_index(&g), Some(10));
        assert_eq!(wiener_index_sequential(&g), Some(10));
        assert_eq!(distance_sum_from(&g, 0), Some(7));
        assert_eq!(eccentricity(&g, 0), Some(5));
        assert_eq!(eccentricity(&g, 1), Some(3));
    }

    #[test]
    fn weighted_parallel_path_matches_sequential() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let n = 1500usize;
        let mut b = crate::GraphBuilder::new(n);
        for v in 1..n as NodeId {
            b.add_weighted_edge(rng.gen_range(0..v), v, rng.gen_range(1..=7))
                .unwrap();
        }
        for _ in 0..2 * n {
            let u = rng.gen_range(0..n as NodeId);
            let v = rng.gen_range(0..n as NodeId);
            b.add_weighted_edge(u, v, rng.gen_range(1..=7)).unwrap();
        }
        let g = b.build();
        assert!(g.num_nodes() >= PARALLEL_WIENER_MIN_NODES);
        assert_eq!(wiener_index(&g), wiener_index_sequential(&g));
    }

    #[test]
    fn parallel_path_detects_disconnection() {
        // Two large components: every source fails to reach the far side.
        let mut edges: Vec<(NodeId, NodeId)> = (0..800).map(|i| (i, i + 1)).collect();
        edges.extend((900..1900u32).map(|i| (i, i + 1)));
        let g = Graph::from_edges(1901, &edges).unwrap();
        assert_eq!(wiener_index(&g), None);
        assert_eq!(wiener_index_sequential(&g), None);
    }
}
