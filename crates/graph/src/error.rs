//! Error type shared by the graph substrate.

use std::fmt;

/// Convenience alias for `Result<T, GraphError>`.
pub type Result<T> = std::result::Result<T, GraphError>;

/// Errors produced while building or querying graphs.
#[derive(Debug)]
#[non_exhaustive]
pub enum GraphError {
    /// A node id referenced a vertex outside `0..num_nodes`.
    NodeOutOfRange {
        /// The offending node id.
        node: u64,
        /// Number of nodes in the graph.
        num_nodes: usize,
    },
    /// The operation requires a non-empty graph or node set.
    Empty,
    /// The operation requires the (sub)graph to be connected, or the query
    /// vertices to lie in a single connected component.
    Disconnected,
    /// The graph exceeds a representation limit (e.g. more than `u32::MAX`
    /// adjacency entries in the CSR arrays).
    TooLarge {
        /// Human-readable description of the violated limit.
        what: &'static str,
    },
    /// An I/O error while reading or writing a graph.
    Io(std::io::Error),
    /// A parse error while reading an edge list.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the malformed content.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node id {node} out of range for graph with {num_nodes} nodes"
                )
            }
            GraphError::Empty => write!(f, "operation requires a non-empty graph or node set"),
            GraphError::Disconnected => {
                write!(
                    f,
                    "operation requires connectivity (query vertices must share a component)"
                )
            }
            GraphError::TooLarge { what } => write!(f, "graph too large: {what}"),
            GraphError::Io(e) => write!(f, "I/O error: {e}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::NodeOutOfRange {
            node: 7,
            num_nodes: 3,
        };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('3'));
        assert!(GraphError::Disconnected.to_string().contains("connect"));
        assert!(GraphError::TooLarge { what: "x" }.to_string().contains('x'));
    }

    #[test]
    fn io_error_preserves_source() {
        use std::error::Error;
        let e = GraphError::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
    }
}
