//! Connected components and connectivity predicates.

use crate::csr::Graph;
use crate::error::{GraphError, Result};
use crate::NodeId;

/// Connected-component labelling of a graph.
#[derive(Debug, Clone)]
pub struct Components {
    /// `label[v]` is the component id of `v`, in `0..count`.
    pub label: Vec<u32>,
    /// Number of connected components.
    pub count: usize,
}

impl Components {
    /// Whether `u` and `v` are in the same component.
    #[inline]
    pub fn same(&self, u: NodeId, v: NodeId) -> bool {
        self.label[u as usize] == self.label[v as usize]
    }

    /// Sizes of the components, indexed by label.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &l in &self.label {
            sizes[l as usize] += 1;
        }
        sizes
    }
}

/// Labels connected components via repeated BFS. `O(|V| + |E|)`.
pub fn connected_components(g: &Graph) -> Components {
    let n = g.num_nodes();
    let mut label = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue: Vec<NodeId> = Vec::new();
    for start in 0..n as NodeId {
        if label[start as usize] != u32::MAX {
            continue;
        }
        label[start as usize] = count;
        queue.clear();
        queue.push(start);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for &v in g.neighbors(u) {
                if label[v as usize] == u32::MAX {
                    label[v as usize] = count;
                    queue.push(v);
                }
            }
        }
        count += 1;
    }
    Components {
        label,
        count: count as usize,
    }
}

/// Whether the whole graph is connected. The empty graph counts as
/// connected.
pub fn is_connected(g: &Graph) -> bool {
    g.num_nodes() == 0 || connected_components(g).count == 1
}

/// Whether the subgraph induced by `nodes` is connected (BFS restricted to
/// the set; `nodes` need not be sorted). Empty sets count as connected.
///
/// `O(Σ_{v ∈ S} deg_G(v))` after an `O(|S| log |S|)` sort — no subgraph is
/// materialized, which matters for the greedy baselines that call this in a
/// loop.
pub fn is_connected_subset(g: &Graph, nodes: &[NodeId]) -> Result<bool> {
    if nodes.is_empty() {
        return Ok(true);
    }
    let mut sorted: Vec<NodeId> = nodes.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    for &v in &sorted {
        g.check_node(v)?;
    }
    let mut seen = vec![false; sorted.len()];
    let mut queue = vec![0usize]; // positions into `sorted`
    seen[0] = true;
    let mut head = 0;
    let mut reached = 1usize;
    while head < queue.len() {
        let u = sorted[queue[head]];
        head += 1;
        for &nb in g.neighbors(u) {
            if let Ok(pos) = sorted.binary_search(&nb) {
                if !seen[pos] {
                    seen[pos] = true;
                    reached += 1;
                    queue.push(pos);
                }
            }
        }
    }
    Ok(reached == sorted.len())
}

/// The vertex set of the largest connected component (ties broken by lowest
/// label).
pub fn largest_component(g: &Graph) -> Vec<NodeId> {
    let comps = connected_components(g);
    if comps.count == 0 {
        return Vec::new();
    }
    let sizes = comps.sizes();
    let best = sizes
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(i, _)| i as u32)
        .unwrap();
    (0..g.num_nodes() as NodeId)
        .filter(|&v| comps.label[v as usize] == best)
        .collect()
}

/// Extracts the largest connected component as a standalone graph.
///
/// Returns the new graph and the mapping `local → original id`. Errors with
/// [`GraphError::Empty`] on a zero-node graph.
pub fn largest_component_graph(g: &Graph) -> Result<(Graph, Vec<NodeId>)> {
    if g.num_nodes() == 0 {
        return Err(GraphError::Empty);
    }
    let nodes = largest_component(g);
    let sub = g.induced(&nodes)?;
    let mapping = sub.original_ids().to_vec();
    Ok((sub.graph().clone(), mapping))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles() -> Graph {
        Graph::from_edges(7, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]).unwrap()
    }

    #[test]
    fn counts_components() {
        let g = two_triangles(); // plus isolated vertex 6
        let c = connected_components(&g);
        assert_eq!(c.count, 3);
        assert!(c.same(0, 2));
        assert!(!c.same(0, 3));
        assert_eq!(c.sizes().iter().sum::<usize>(), 7);
    }

    #[test]
    fn connected_predicates() {
        assert!(is_connected(
            &Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap()
        ));
        assert!(!is_connected(&two_triangles()));
        assert!(is_connected(&Graph::empty(0)));
        assert!(is_connected(&Graph::empty(1)));
        assert!(!is_connected(&Graph::empty(2)));
    }

    #[test]
    fn subset_connectivity() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        assert!(is_connected_subset(&g, &[1, 2, 3]).unwrap());
        assert!(!is_connected_subset(&g, &[1, 3]).unwrap()); // 2 missing
        assert!(is_connected_subset(&g, &[]).unwrap());
        assert!(is_connected_subset(&g, &[4]).unwrap());
        // Duplicates tolerated.
        assert!(is_connected_subset(&g, &[2, 2, 3]).unwrap());
        assert!(is_connected_subset(&g, &[0, 99]).is_err());
    }

    #[test]
    fn largest_component_prefers_biggest() {
        let g = Graph::from_edges(6, &[(0, 1), (2, 3), (3, 4), (4, 2), (2, 5)]).unwrap();
        assert_eq!(largest_component(&g), vec![2, 3, 4, 5]);
    }

    #[test]
    fn largest_component_graph_relabels() {
        let g = Graph::from_edges(6, &[(0, 1), (2, 3), (3, 4), (4, 2), (2, 5)]).unwrap();
        let (lc, mapping) = largest_component_graph(&g).unwrap();
        assert_eq!(lc.num_nodes(), 4);
        assert_eq!(lc.num_edges(), 4);
        assert_eq!(mapping, vec![2, 3, 4, 5]);
        assert!(is_connected(&lc));
    }

    #[test]
    fn largest_component_graph_rejects_empty() {
        assert!(largest_component_graph(&Graph::empty(0)).is_err());
    }
}
