//! Dijkstra shortest paths with caller-supplied edge weights.
//!
//! Algorithm 1 reweights the input graph into `G_{r,λ}` (edge weight
//! `λ + max(d_G(r,u), d_G(r,v)) / λ`, Lemma 4) and runs Mehlhorn's Steiner
//! approximation on it. Mehlhorn's algorithm needs a *multi-source* Dijkstra
//! that also records, for every vertex, which source (terminal) is nearest —
//! the Voronoi partition of the graph around the terminals. Weights are
//! provided as a closure so the reweighted graph never has to be
//! materialized.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::csr::Graph;
use crate::{NodeId, NO_NODE};

/// Result of a single-source Dijkstra run.
#[derive(Debug, Clone)]
pub struct DijkstraResult {
    /// `dist[v]` is the weighted distance from the source
    /// (`f64::INFINITY` if unreachable).
    pub dist: Vec<f64>,
    /// Shortest-path-tree parent ([`NO_NODE`] for source/unreachable).
    pub parent: Vec<NodeId>,
}

/// Result of a multi-source Dijkstra run: the Voronoi partition around the
/// sources.
#[derive(Debug, Clone)]
pub struct VoronoiResult {
    /// `dist[v]`: weighted distance to the nearest source.
    pub dist: Vec<f64>,
    /// `parent[v]`: next hop toward the nearest source ([`NO_NODE`] at a
    /// source or unreachable vertex).
    pub parent: Vec<NodeId>,
    /// `source_index[v]`: index into the `sources` slice of the nearest
    /// source (`u32::MAX` if unreachable). Ties are broken by first
    /// settlement order, which is deterministic.
    pub source_index: Vec<u32>,
}

/// Totally ordered f64 key for the binary heap.
///
/// Weights produced by `G_{r,λ}` are finite and positive, so `total_cmp`
/// gives the ordering Dijkstra needs without pulling in an ordered-float
/// dependency.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapKey(f64);

impl Eq for HeapKey {}

impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Reusable integer Dijkstra over the graph's own `u32` weights — the
/// sequential parity/bench reference for the delta-stepping kernel
/// (mirroring how `wiener_index_sequential` anchors the batched BFS path).
///
/// Buffers are recycled across runs: the distance array is reset
/// *sparsely* through a touched list (only vertices the previous run
/// reached are dirty) and the settled set is a generation-stamped array —
/// no `O(|V|)` clear per run, the same trick `BfsWorkspace` uses. Pool
/// instances through
/// [`WorkspacePool::lease_dijkstra`](super::bfs::WorkspacePool::lease_dijkstra).
///
/// ```
/// use mwc_graph::traversal::dijkstra::DijkstraWorkspace;
/// use mwc_graph::Graph;
///
/// let g = Graph::from_weighted_edges(3, &[(0, 1, 10), (0, 2, 1), (2, 1, 2)]).unwrap();
/// let mut ws = DijkstraWorkspace::new();
/// assert_eq!(ws.run(&g, 0), &[0, 3, 1]);
/// assert_eq!(ws.last_run_distance_sum(), (4, 3));
/// ```
#[derive(Debug, Default)]
pub struct DijkstraWorkspace {
    dist: Vec<u32>,
    /// `settled_gen[v] == generation` marks `v` settled in the current
    /// run; bumping the generation invalidates the whole array in `O(1)`.
    settled_gen: Vec<u64>,
    generation: u64,
    heap: BinaryHeap<Reverse<(u32, NodeId)>>,
    /// Vertices whose distance went finite — drives the sparse reset and
    /// the distance-sum scan.
    touched: Vec<NodeId>,
}

impl DijkstraWorkspace {
    /// A workspace; buffers grow lazily to the graph size on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Dijkstra distances from `source` over the graph's integer weights
    /// (weight 1 throughout on unweighted graphs). Returns the filled
    /// distance slice ([`crate::INF_DIST`] where unreachable).
    pub fn run(&mut self, g: &Graph, source: NodeId) -> &[u32] {
        use crate::INF_DIST;
        let n = g.num_nodes();
        debug_assert!((source as usize) < n);
        if self.dist.len() != n {
            self.dist.clear();
            self.dist.resize(n, INF_DIST);
            self.settled_gen.clear();
            self.settled_gen.resize(n, 0);
            self.generation = 0;
        } else {
            for &v in &self.touched {
                self.dist[v as usize] = INF_DIST;
            }
        }
        self.touched.clear();
        self.heap.clear();
        self.generation += 1;
        let gen = self.generation;

        self.dist[source as usize] = 0;
        self.touched.push(source);
        self.heap.push(Reverse((0, source)));
        while let Some(Reverse((du, u))) = self.heap.pop() {
            if self.settled_gen[u as usize] == gen {
                continue;
            }
            self.settled_gen[u as usize] = gen;
            debug_assert_eq!(du, self.dist[u as usize]);
            match g.neighbor_weights(u) {
                Some(ws) => {
                    for (&v, &w) in g.neighbors(u).iter().zip(ws) {
                        let cand = du.saturating_add(w);
                        if cand < self.dist[v as usize] {
                            if self.dist[v as usize] == INF_DIST {
                                self.touched.push(v);
                            }
                            self.dist[v as usize] = cand;
                            self.heap.push(Reverse((cand, v)));
                        }
                    }
                }
                None => {
                    for &v in g.neighbors(u) {
                        let cand = du.saturating_add(1);
                        if cand < self.dist[v as usize] {
                            if self.dist[v as usize] == INF_DIST {
                                self.touched.push(v);
                            }
                            self.dist[v as usize] = cand;
                            self.heap.push(Reverse((cand, v)));
                        }
                    }
                }
            }
        }
        &self.dist
    }

    /// Sum of distances from the last run's source over reached vertices,
    /// and the reached count (including the source) — same contract as
    /// `BfsWorkspace::last_run_distance_sum`.
    pub fn last_run_distance_sum(&self) -> (u64, usize) {
        let mut sum = 0u64;
        for &v in &self.touched {
            sum += self.dist[v as usize] as u64;
        }
        (sum, self.touched.len())
    }
}

/// Single-source Dijkstra with edge weights from `weight(u, v)`.
///
/// `weight` must be symmetric and non-negative; it is evaluated once per
/// directed edge relaxation. `O((|V| + |E|) log |V|)` with lazy deletion.
pub fn dijkstra<W>(g: &Graph, source: NodeId, weight: W) -> DijkstraResult
where
    W: Fn(NodeId, NodeId) -> f64,
{
    let n = g.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent = vec![NO_NODE; n];
    let mut heap: BinaryHeap<Reverse<(HeapKey, NodeId)>> = BinaryHeap::new();
    dist[source as usize] = 0.0;
    heap.push(Reverse((HeapKey(0.0), source)));
    run_heap(g, &weight, &mut dist, &mut parent, None, &mut heap);
    DijkstraResult { dist, parent }
}

/// Multi-source Dijkstra producing the Voronoi partition around `sources`.
///
/// Every source starts at distance 0; `source_index[v]` reports which
/// source's region `v` falls into (Mehlhorn's `s(v)`), and following
/// `parent` from `v` leads to that source along a shortest path.
pub fn multi_source_dijkstra<W>(g: &Graph, sources: &[NodeId], weight: W) -> VoronoiResult
where
    W: Fn(NodeId, NodeId) -> f64,
{
    let n = g.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent = vec![NO_NODE; n];
    let mut source_index = vec![u32::MAX; n];
    let mut heap: BinaryHeap<Reverse<(HeapKey, NodeId)>> = BinaryHeap::new();
    for (i, &s) in sources.iter().enumerate() {
        debug_assert!((s as usize) < n);
        // Duplicate sources: first one wins.
        if dist[s as usize] != 0.0 || source_index[s as usize] == u32::MAX {
            dist[s as usize] = 0.0;
            source_index[s as usize] = i as u32;
            heap.push(Reverse((HeapKey(0.0), s)));
        }
    }
    run_heap(
        g,
        &weight,
        &mut dist,
        &mut parent,
        Some(&mut source_index),
        &mut heap,
    );
    VoronoiResult {
        dist,
        parent,
        source_index,
    }
}

fn run_heap<W>(
    g: &Graph,
    weight: &W,
    dist: &mut [f64],
    parent: &mut [NodeId],
    mut source_index: Option<&mut [u32]>,
    heap: &mut BinaryHeap<Reverse<(HeapKey, NodeId)>>,
) where
    W: Fn(NodeId, NodeId) -> f64,
{
    let mut settled = vec![false; dist.len()];
    while let Some(Reverse((HeapKey(du), u))) = heap.pop() {
        if settled[u as usize] {
            continue;
        }
        settled[u as usize] = true;
        debug_assert!(du <= dist[u as usize] + 1e-12);
        for &v in g.neighbors(u) {
            if settled[v as usize] {
                continue;
            }
            let w = weight(u, v);
            debug_assert!(w >= 0.0, "Dijkstra requires non-negative weights");
            let cand = du + w;
            if cand < dist[v as usize] {
                dist[v as usize] = cand;
                parent[v as usize] = u;
                if let Some(src) = source_index.as_deref_mut() {
                    src[v as usize] = src[u as usize];
                }
                heap.push(Reverse((HeapKey(cand), v)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::bfs::bfs_distances;
    use crate::Graph;

    const UNIT: fn(NodeId, NodeId) -> f64 = |_, _| 1.0;

    #[test]
    fn unit_weights_match_bfs() {
        let g = Graph::from_edges(7, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 5), (5, 4), (4, 6)])
            .unwrap();
        let d = dijkstra(&g, 0, UNIT);
        let b = bfs_distances(&g, 0);
        for (v, &expect) in b.iter().enumerate() {
            assert_eq!(d.dist[v] as u32, expect, "vertex {v}");
        }
    }

    #[test]
    fn weighted_prefers_cheap_detour() {
        // 0-1 heavy direct edge vs 0-2-1 light path.
        let g = Graph::from_edges(3, &[(0, 1), (0, 2), (2, 1)]).unwrap();
        let weight = |u: NodeId, v: NodeId| {
            if (u.min(v), u.max(v)) == (0, 1) {
                10.0
            } else {
                1.0
            }
        };
        let d = dijkstra(&g, 0, weight);
        assert_eq!(d.dist[1], 2.0);
        assert_eq!(d.parent[1], 2);
    }

    #[test]
    fn unreachable_stays_infinite() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let d = dijkstra(&g, 0, UNIT);
        assert!(d.dist[2].is_infinite());
        assert_eq!(d.parent[2], NO_NODE);
    }

    #[test]
    fn voronoi_partition_assigns_nearest_source() {
        // Path 0-1-2-3-4-5 with sources {0, 5}.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        let v = multi_source_dijkstra(&g, &[0, 5], UNIT);
        assert_eq!(v.source_index[0], 0);
        assert_eq!(v.source_index[1], 0);
        assert_eq!(v.source_index[4], 1);
        assert_eq!(v.source_index[5], 1);
        assert_eq!(v.dist[2], 2.0);
        assert_eq!(v.dist[3], 2.0);
        // Parents lead back to the assigned source.
        let mut cur = 4u32;
        while v.parent[cur as usize] != NO_NODE {
            cur = v.parent[cur as usize];
        }
        assert_eq!(cur, 5);
    }

    #[test]
    fn voronoi_handles_duplicate_sources() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let v = multi_source_dijkstra(&g, &[0, 0, 2], UNIT);
        assert_eq!(v.source_index[0], 0);
        assert_eq!(v.source_index[2], 2);
    }

    #[test]
    fn workspace_matches_closure_dijkstra_and_reuses_buffers() {
        use super::DijkstraWorkspace;
        let g = Graph::from_weighted_edges(
            6,
            &[(0, 1, 4), (1, 2, 1), (2, 5, 9), (0, 3, 2), (3, 4, 2), (4, 5, 3)],
        )
        .unwrap();
        let weight = |u: NodeId, v: NodeId| g.edge_weight(u, v) as f64;
        let mut ws = DijkstraWorkspace::new();
        for source in [0u32, 3, 5] {
            let expect = dijkstra(&g, source, weight);
            let got = ws.run(&g, source);
            for v in 0..6usize {
                if expect.dist[v].is_infinite() {
                    assert_eq!(got[v], crate::INF_DIST);
                } else {
                    assert_eq!(got[v] as f64, expect.dist[v], "source {source} vertex {v}");
                }
            }
        }
        // Unweighted fallback: weight 1 everywhere = BFS distances.
        let h = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(ws.run(&h, 0), bfs_distances(&h, 0).as_slice());
        let (sum, reached) = ws.last_run_distance_sum();
        assert_eq!((sum, reached), (6, 4));
    }

    #[test]
    fn voronoi_distances_match_min_over_single_source() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let n = 40;
        let mut edges = Vec::new();
        for i in 1..n as NodeId {
            edges.push((rng.gen_range(0..i), i)); // random connected tree
        }
        for _ in 0..40 {
            edges.push((rng.gen_range(0..n as NodeId), rng.gen_range(0..n as NodeId)));
        }
        let g = Graph::from_edges(n, &edges).unwrap();
        let sources = [3u32, 17, 29];
        let multi = multi_source_dijkstra(&g, &sources, UNIT);
        let singles: Vec<_> = sources.iter().map(|&s| dijkstra(&g, s, UNIT)).collect();
        for v in 0..n {
            let best = singles
                .iter()
                .map(|r| r.dist[v])
                .fold(f64::INFINITY, f64::min);
            assert_eq!(multi.dist[v], best, "vertex {v}");
        }
    }
}
