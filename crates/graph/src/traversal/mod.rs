//! Graph traversals: BFS (unweighted) and Dijkstra (weighted).

pub mod bfs;
pub mod dijkstra;

pub use bfs::{bfs_distances, bfs_parents, BfsResult, BfsWorkspace};
pub use dijkstra::{dijkstra, multi_source_dijkstra, DijkstraResult, VoronoiResult};
