//! Graph traversals: BFS (unweighted) and Dijkstra (weighted).

pub mod bfs;
pub mod dijkstra;

pub use bfs::{
    bfs_distances, bfs_parents, canonical_parent, canonical_parents, multi_source_bfs, BfsResult,
    BfsWorkspace, MsBfsWorkspace, MS_BFS_LANES,
};
pub use dijkstra::{dijkstra, multi_source_dijkstra, DijkstraResult, VoronoiResult};
