//! Graph traversals: BFS (unweighted), delta-stepping (integer-weighted),
//! and Dijkstra (weighted).

pub mod bfs;
pub mod delta;
pub mod dijkstra;

pub use bfs::{
    bfs_distances, bfs_parents, canonical_parent, canonical_parents, multi_source_bfs, BfsResult,
    BfsWorkspace, MsBfsWorkspace, MS_BFS_LANES,
};
pub use delta::{multi_source_delta_distances, DeltaWorkspace, MsDeltaWorkspace};
pub use dijkstra::{
    dijkstra, multi_source_dijkstra, DijkstraResult, DijkstraWorkspace, VoronoiResult,
};
