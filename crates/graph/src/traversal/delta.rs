//! Delta-stepping SSSP — the weighted distance kernel.
//!
//! The weighted extension of the paper (and the road-network / PPI
//! workloads it opens up) needs single-source shortest paths under
//! positive integer edge weights. Dijkstra is exact but serial: one heap,
//! one vertex settled at a time, adjacency rows streamed once *per
//! source*. Delta-stepping (Meyer & Sanders, 2003) trades the heap for an
//! array of **buckets** keyed by `⌊dist/Δ⌋`:
//!
//! * **light** edges (`w ≤ Δ`) are relaxed iteratively while a bucket
//!   drains — they can re-queue a vertex into the same bucket;
//! * **heavy** edges (`w > Δ`) always land strictly later, so they are
//!   relaxed once per settled vertex after the bucket empties.
//!
//! When bucket `b` empties, every distance below `(b+1)·Δ` is final, so
//! the algorithm is label-correcting yet *exact* — and since all
//! arithmetic is `u32`, distances are **bit-identical** to Dijkstra's by
//! construction (pinned by property tests). `Δ` is auto-tuned to the mean
//! edge weight ([`Graph::mean_edge_weight`]): `Δ = 1` degenerates to
//! Dial's bucket queue, `Δ ≥ max_w` to Bellman-Ford rounds.
//!
//! Two workspaces mirror the BFS kernel pair:
//!
//! * [`DeltaWorkspace`] — single-source, the weighted
//!   [`BfsWorkspace`](super::bfs::BfsWorkspace);
//! * [`MsDeltaWorkspace`] — up to [`MS_BFS_LANES`] sources sharing each
//!   CSR row read, the weighted twin of
//!   [`MsBfsWorkspace`](super::bfs::MsBfsWorkspace): the same vertex-major
//!   `dist[v·lanes + lane]` matrix, the same accessor surface, pooled
//!   through the same [`WorkspacePool`](super::bfs::WorkspacePool).
//!
//! `Δ` is rounded down to a power of two so the per-relaxation bucket
//! index is a shift, then clamped *up* under extreme weight skew so the
//! bucket span `max_w/Δ` stays bounded (a graph mixing weight-1 edges
//! with one near-`u32::MAX` edge would otherwise demand billions of
//! buckets — and, batched, an `n × buckets` pending matrix). Clamping
//! only trades bucket granularity for re-relaxations; distances are
//! exact for every `Δ`. Buckets store plain vertex ids, deduplicated by a
//! per-`(vertex, bucket slot)` pending lane mask: however many lanes
//! improve a vertex into one bucket, it is queued once, and the pop
//! examines exactly the lanes that queued it (each re-checked against
//! `⌊dist/Δ⌋ == b`, so entries made stale by a later improvement into an
//! earlier bucket are harmless no-ops).

use super::bfs::MS_BFS_LANES;
use crate::csr::Graph;
use crate::{NodeId, INF_DIST, NO_NODE};

/// Hard ceiling on the bucket span `max_w/Δ`: [`tune_delta`] clamps `Δ`
/// up until the span fits, so the cyclic bucket array never exceeds
/// `MAX_BUCKET_SPAN + 3` slots no matter how skewed the weights are.
const MAX_BUCKET_SPAN: usize = 1 << 10;

/// Word budget for [`MsDeltaWorkspace`]'s `pending` lane-mask matrix
/// (`n × bucket count` `u64`s, ≤ 32 MiB): on large graphs the span is
/// clamped below [`MAX_BUCKET_SPAN`] so the matrix stays within it.
const MS_PENDING_BUDGET_WORDS: usize = 1 << 22;

/// Shared bucket-queue plumbing: cyclic bucket array sized to the largest
/// forward jump a relaxation can make (`max_w/Δ + 1` buckets ahead, with
/// `Δ = 2^shift`), plus two slots of slack.
fn bucket_count(g: &Graph, shift: u32) -> usize {
    (g.max_edge_weight() >> shift) as usize + 3
}

/// Rounds `Δ` down to a power of two and returns `(Δ, log2 Δ)`, so the
/// per-relaxation bucket index `⌊dist/Δ⌋` is a shift instead of a
/// hardware division (the relax loop runs once per edge per lane — a
/// 20-cycle `div` there dominates everything else). Any `Δ ≥ 1` computes
/// the same distances, so rounding only changes bucket granularity;
/// rounding *down* keeps the auto-tuned `Δ = mean` on the cheap side of
/// the re-relaxation cliff (too-wide buckets relax edges Bellman-Ford
/// style many times over).
fn pow2_delta(delta: u32) -> (u32, u32) {
    let shift = 31 - delta.max(1).leading_zeros();
    (1u32 << shift, shift)
}

/// [`pow2_delta`] plus the skew clamp: raises `Δ` until the bucket span
/// `max_w/Δ` drops below `max_span`, so bucket-array (and, batched,
/// pending-matrix) memory is bounded by the caller's budget instead of
/// by the weight distribution. A larger `Δ` costs extra light-edge
/// re-relaxations but never changes the computed distances.
fn tune_delta(g: &Graph, delta: u32, max_span: usize) -> (u32, u32) {
    debug_assert!(max_span >= 2);
    let (mut delta, mut shift) = pow2_delta(delta);
    let max_w = g.max_edge_weight();
    while (max_w >> shift) as usize >= max_span {
        shift += 1;
        delta = 1u32 << shift;
    }
    (delta, shift)
}

/// Single-source delta-stepping over reusable buffers.
///
/// Distances are bit-identical to Dijkstra (`u32` arithmetic is exact and
/// both compute true shortest paths). Unweighted graphs run with uniform
/// weight 1, where `Δ = 1` makes every edge light and the kernel collapses
/// to a level-synchronous BFS.
///
/// ```
/// use mwc_graph::traversal::delta::DeltaWorkspace;
/// use mwc_graph::Graph;
///
/// let g = Graph::from_weighted_edges(3, &[(0, 1, 10), (0, 2, 1), (2, 1, 2)]).unwrap();
/// let mut ws = DeltaWorkspace::new();
/// assert_eq!(ws.run(&g, 0), &[0, 3, 1]);
/// assert_eq!(ws.last_run_distance_sum(), (4, 3));
/// ```
#[derive(Debug, Default)]
pub struct DeltaWorkspace {
    dist: Vec<u32>,
    /// Absolute bucket the vertex was last queued into (`u64::MAX` =
    /// idle). Cleared on pop so a same-bucket improvement re-queues.
    queued_at: Vec<u64>,
    /// Absolute bucket the vertex was last settled in — dedups the
    /// per-bucket `removed` list feeding the heavy phase.
    removed_at: Vec<u64>,
    /// Cyclic bucket array; slot `b % len` holds absolute bucket `b`.
    buckets: Vec<Vec<NodeId>>,
    /// Vertices settled by the current bucket (heavy-phase worklist).
    removed: Vec<NodeId>,
    /// Vertices whose distance went finite — drives the sparse reset and
    /// the distance-sum scan.
    touched: Vec<NodeId>,
    /// Cumulative buckets drained over the workspace lifetime (pooled
    /// leases report deltas, like `MsBfsWorkspace::levels_expanded`).
    buckets_total: u64,
    runs: u64,
}

impl DeltaWorkspace {
    /// A workspace; buffers grow lazily to the graph size on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Delta-stepping distances from `source` with `Δ` auto-tuned to the
    /// mean edge weight. Returns the filled distance slice
    /// ([`INF_DIST`] where unreachable).
    pub fn run(&mut self, g: &Graph, source: NodeId) -> &[u32] {
        self.run_with_delta(g, source, g.mean_edge_weight())
    }

    /// [`Self::run`] with an explicit `Δ` (clamped to ≥ 1, rounded down
    /// to a power of two, and raised under extreme weight skew so the
    /// bucket array stays bounded — see [`tune_delta`]) — the knob the
    /// parity proptests sweep (`Δ ∈ {1, mean, large}`).
    pub fn run_with_delta(&mut self, g: &Graph, source: NodeId, delta: u32) -> &[u32] {
        let n = g.num_nodes();
        debug_assert!((source as usize) < n);
        let (delta, shift) = tune_delta(g, delta, MAX_BUCKET_SPAN);
        self.prepare(n);
        let nb = bucket_count(g, shift);
        if self.buckets.len() < nb {
            self.buckets.resize_with(nb, Vec::new);
        }
        let nb = self.buckets.len() as u64;

        self.dist[source as usize] = 0;
        self.touched.push(source);
        self.queued_at[source as usize] = 0;
        self.buckets[0].push(source);
        let mut pending = 1usize;
        let mut b = 0u64;

        while pending > 0 {
            let idx = (b % nb) as usize;
            if self.buckets[idx].is_empty() {
                b += 1;
                continue;
            }
            self.removed.clear();

            // Light phase: drain the bucket, re-processing same-bucket
            // improvements until it is empty.
            while let Some(v) = self.buckets[idx].pop() {
                pending -= 1;
                if self.queued_at[v as usize] == b {
                    self.queued_at[v as usize] = u64::MAX;
                }
                let dv = self.dist[v as usize];
                if (dv >> shift) as u64 != b {
                    continue; // stale: improved into an earlier bucket
                }
                if self.removed_at[v as usize] != b {
                    self.removed_at[v as usize] = b;
                    self.removed.push(v);
                }
                match g.neighbor_weights(v) {
                    Some(ws) => {
                        for (&u, &w) in g.neighbors(v).iter().zip(ws) {
                            if w <= delta {
                                pending +=
                                    self.relax(u, dv.saturating_add(w), shift, nb) as usize;
                            }
                        }
                    }
                    None => {
                        for &u in g.neighbors(v) {
                            pending += self.relax(u, dv.saturating_add(1), shift, nb) as usize;
                        }
                    }
                }
            }

            // Heavy phase: every settled vertex's heavy edges, once, at
            // its now-final distance.
            for i in 0..self.removed.len() {
                let v = self.removed[i];
                let dv = self.dist[v as usize];
                if let Some(ws) = g.neighbor_weights(v) {
                    for (&u, &w) in g.neighbors(v).iter().zip(ws) {
                        if w > delta {
                            pending += self.relax(u, dv.saturating_add(w), shift, nb) as usize;
                        }
                    }
                }
            }
            self.buckets_total += 1;
            b += 1;
        }
        self.runs += 1;
        &self.dist
    }

    /// Relaxes `v` to candidate distance `cand`; returns 1 if a new queue
    /// entry was created (the caller's `pending` delta).
    #[inline]
    fn relax(&mut self, v: NodeId, cand: u32, shift: u32, nb: u64) -> bool {
        let slot = v as usize;
        if cand < self.dist[slot] {
            if self.dist[slot] == INF_DIST {
                self.touched.push(v);
            }
            self.dist[slot] = cand;
            let tb = (cand >> shift) as u64;
            if self.queued_at[slot] != tb {
                self.queued_at[slot] = tb;
                self.buckets[(tb % nb) as usize].push(v);
                return true;
            }
        }
        false
    }

    /// Sparse reset: only vertices the previous run touched are dirty.
    fn prepare(&mut self, n: usize) {
        if self.dist.len() != n {
            self.dist.clear();
            self.dist.resize(n, INF_DIST);
            self.queued_at.clear();
            self.queued_at.resize(n, u64::MAX);
            self.removed_at.clear();
            self.removed_at.resize(n, u64::MAX);
        } else {
            for &v in &self.touched {
                self.dist[v as usize] = INF_DIST;
                self.queued_at[v as usize] = u64::MAX;
                self.removed_at[v as usize] = u64::MAX;
            }
        }
        self.touched.clear();
    }

    /// Sum of distances from the last run's source over reached vertices,
    /// and the reached count (including the source) — same contract as
    /// `BfsWorkspace::last_run_distance_sum`.
    pub fn last_run_distance_sum(&self) -> (u64, usize) {
        let mut sum = 0u64;
        for &v in &self.touched {
            sum += self.dist[v as usize] as u64;
        }
        (sum, self.touched.len())
    }

    /// Cumulative buckets drained over this workspace's lifetime.
    pub fn buckets_expanded(&self) -> u64 {
        self.buckets_total
    }

    /// Cumulative runs over this workspace's lifetime.
    pub fn runs(&self) -> u64 {
        self.runs
    }
}

/// Multi-source batched delta-stepping: distances from up to
/// [`MS_BFS_LANES`] sources in one shared bucket sweep.
///
/// Each popped vertex recomputes its **active** lane mask (lanes whose
/// distance falls in the current bucket) and relaxes its light edges for
/// all of them against one read of the CSR row — the weighted analogue of
/// MS-BFS lane packing. Heavy edges are deferred per bucket with an
/// OR-accumulated lane mask. Per-lane distances are bit-identical to
/// [`DeltaWorkspace`] / Dijkstra (pinned by property tests).
///
/// ```
/// use mwc_graph::traversal::delta::MsDeltaWorkspace;
/// use mwc_graph::Graph;
///
/// let g = Graph::from_weighted_edges(4, &[(0, 1, 2), (1, 2, 2), (2, 3, 5)]).unwrap();
/// let mut ws = MsDeltaWorkspace::new();
/// ws.run(&g, &[0, 3]);
/// assert_eq!(ws.lane_distances(0), vec![0, 2, 4, 9]);
/// assert_eq!(ws.dist_at(1, 0), 9);
/// assert_eq!(ws.distance_sum(0), (2 + 4 + 9, 4));
/// ```
#[derive(Debug)]
pub struct MsDeltaWorkspace {
    /// Vertex-major distances: `dist[v * lanes + lane]` (same layout as
    /// `MsBfsWorkspace`, same cache rationale).
    dist: Vec<u32>,
    /// `pending[v * nb + slot]`: lane mask of the vertex's queue entry in
    /// cyclic bucket `slot`, 0 = no entry. Exactly one queue entry exists
    /// per nonzero mask (pushed on the 0 → nonzero transition, mask
    /// cleared on pop), so 64 lanes improving a vertex into the same
    /// bucket cost one pop, and the pop knows which lanes queued it
    /// without scanning the whole distance row.
    pending: Vec<u64>,
    /// Bucket stamp dedup for the heavy-phase worklist.
    removed_at: Vec<u64>,
    /// OR of the lane masks the vertex was active with in the current
    /// bucket — the lanes whose heavy edges still need relaxing.
    removed_mask: Vec<u64>,
    /// Run stamp for `touched` membership (`O(1)` instead of scanning
    /// lanes for an earlier finite distance).
    touched_at: Vec<u64>,
    buckets: Vec<Vec<NodeId>>,
    removed: Vec<NodeId>,
    touched: Vec<NodeId>,
    /// Per-lane distance sums over reached vertices.
    sums: [u64; MS_BFS_LANES],
    /// Per-lane count of reached vertices (including the source).
    reached: [usize; MS_BFS_LANES],
    lanes: usize,
    n: usize,
    /// Cyclic bucket count `pending` was laid out for.
    nb: usize,
    generation: u64,
    /// Cumulative sweeps / buckets drained (pooled leases report deltas,
    /// mirroring `MsBfsWorkspace::sweeps_run` / `levels_expanded`).
    sweeps_run: u64,
    buckets_total: u64,
}

impl Default for MsDeltaWorkspace {
    fn default() -> Self {
        MsDeltaWorkspace {
            dist: Vec::new(),
            pending: Vec::new(),
            removed_at: Vec::new(),
            removed_mask: Vec::new(),
            touched_at: Vec::new(),
            buckets: Vec::new(),
            removed: Vec::new(),
            touched: Vec::new(),
            sums: [0; MS_BFS_LANES],
            reached: [0; MS_BFS_LANES],
            lanes: 0,
            n: 0,
            nb: 0,
            generation: 0,
            sweeps_run: 0,
            buckets_total: 0,
        }
    }
}

impl MsDeltaWorkspace {
    /// A workspace; buffers grow lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs delta-stepping from every source at once (one lane per
    /// source), `Δ` auto-tuned to the mean edge weight.
    ///
    /// # Panics
    /// Panics if `sources` is empty, longer than [`MS_BFS_LANES`], or
    /// contains an out-of-range vertex.
    pub fn run(&mut self, g: &Graph, sources: &[NodeId]) {
        self.run_with_delta(g, sources, g.mean_edge_weight());
    }

    /// [`Self::run`] with an explicit `Δ` (clamped to ≥ 1, rounded down
    /// to a power of two so bucket indexing is a shift, and raised under
    /// extreme weight skew so the `n × buckets` pending matrix stays
    /// within a fixed budget — see [`tune_delta`]).
    pub fn run_with_delta(&mut self, g: &Graph, sources: &[NodeId], delta: u32) {
        assert!(
            !sources.is_empty() && sources.len() <= MS_BFS_LANES,
            "multi-source delta-stepping takes 1..={MS_BFS_LANES} sources, got {}",
            sources.len()
        );
        let n = g.num_nodes();
        let lanes = sources.len();
        let max_span = (MS_PENDING_BUDGET_WORDS / n.max(1)).clamp(4, MAX_BUCKET_SPAN);
        let (delta, shift) = tune_delta(g, delta, max_span);
        self.prepare(n, lanes);
        let nbc = bucket_count(g, shift);
        if self.buckets.len() < nbc {
            self.buckets.resize_with(nbc, Vec::new);
        }
        let nb = self.buckets.len();
        if self.nb != nb || self.pending.len() != n * nb {
            // Every pop clears its mask, so a matching layout carries all
            // zeros between runs for free.
            self.nb = nb;
            self.pending.clear();
            self.pending.resize(n * nb, 0);
        }
        let gen = self.generation;

        let mut entries = 0usize;
        for (lane, &s) in sources.iter().enumerate() {
            assert!((s as usize) < n, "source {s} out of range");
            self.dist[s as usize * lanes + lane] = 0;
            if self.touched_at[s as usize] != gen {
                self.touched_at[s as usize] = gen;
                self.touched.push(s);
            }
            let pslot = s as usize * nb; // bucket 0
            if self.pending[pslot] == 0 {
                self.buckets[0].push(s);
                entries += 1;
            }
            self.pending[pslot] |= 1u64 << lane;
        }

        let mut b = 0u64;
        // Compact (lane, dist) list of the popped vertex's active lanes —
        // the relax loop iterates it per neighbor instead of re-deriving
        // lanes from a bitmask and re-loading source distances per edge.
        let mut act = [(0u32, 0u32); MS_BFS_LANES];
        while entries > 0 {
            let idx = (b % nb as u64) as usize;
            if self.buckets[idx].is_empty() {
                b += 1;
                continue;
            }
            self.removed.clear();

            while let Some(v) = self.buckets[idx].pop() {
                entries -= 1;
                let pslot = v as usize * nb + idx;
                let mask = self.pending[pslot];
                self.pending[pslot] = 0;
                let row = v as usize * lanes;
                // Keep the lanes still in this bucket; the rest improved
                // into an earlier bucket and were processed there.
                let mut alen = 0usize;
                let mut active = 0u64;
                let mut m = mask;
                while m != 0 {
                    let lane = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let d = self.dist[row + lane];
                    if (d >> shift) as u64 == b {
                        act[alen] = (lane as u32, d);
                        alen += 1;
                        active |= 1u64 << lane;
                    }
                }
                if alen == 0 {
                    continue;
                }
                if self.removed_at[v as usize] != b {
                    self.removed_at[v as usize] = b;
                    self.removed_mask[v as usize] = 0;
                    self.removed.push(v);
                }
                self.removed_mask[v as usize] |= active;

                // Light relaxations for every active lane against one
                // read of the CSR row.
                match g.neighbor_weights(v) {
                    Some(ws) => {
                        for (&u, &w) in g.neighbors(v).iter().zip(ws) {
                            if w <= delta {
                                entries += self.relax_lanes(u, &act[..alen], w, shift, nb, lanes, gen);
                            }
                        }
                    }
                    None => {
                        for &u in g.neighbors(v) {
                            entries += self.relax_lanes(u, &act[..alen], 1, shift, nb, lanes, gen);
                        }
                    }
                }
            }

            // Heavy phase: each settled vertex once, for the union of the
            // lanes it settled with (their distances are now final).
            for i in 0..self.removed.len() {
                let v = self.removed[i];
                let row = v as usize * lanes;
                let mut alen = 0usize;
                let mut m = self.removed_mask[v as usize];
                while m != 0 {
                    let lane = m.trailing_zeros() as usize;
                    m &= m - 1;
                    act[alen] = (lane as u32, self.dist[row + lane]);
                    alen += 1;
                }
                if let Some(ws) = g.neighbor_weights(v) {
                    for (&u, &w) in g.neighbors(v).iter().zip(ws) {
                        if w > delta {
                            entries += self.relax_lanes(u, &act[..alen], w, shift, nb, lanes, gen);
                        }
                    }
                }
            }
            self.buckets_total += 1;
            b += 1;
        }

        // One pass over the touched set fills the per-lane aggregates.
        self.sums = [0; MS_BFS_LANES];
        self.reached = [0; MS_BFS_LANES];
        for &v in &self.touched {
            let row = v as usize * lanes;
            for (lane, &d) in self.dist[row..row + lanes].iter().enumerate() {
                if d != INF_DIST {
                    self.sums[lane] += d as u64;
                    self.reached[lane] += 1;
                }
            }
        }
        self.sweeps_run += 1;
    }

    /// Relaxes `v` for every `(lane, source distance)` pair in `act` with
    /// edge weight `w`. Returns the number of new queue entries.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn relax_lanes(
        &mut self,
        v: NodeId,
        act: &[(u32, u32)],
        w: u32,
        shift: u32,
        nb: usize,
        lanes: usize,
        gen: u64,
    ) -> usize {
        let dst_row = v as usize * lanes;
        let mut new_entries = 0usize;
        for &(lane, dv) in act {
            let cand = dv.saturating_add(w);
            if cand < self.dist[dst_row + lane as usize] {
                if self.touched_at[v as usize] != gen {
                    self.touched_at[v as usize] = gen;
                    self.touched.push(v);
                }
                self.dist[dst_row + lane as usize] = cand;
                let slot = ((cand >> shift) as u64 % nb as u64) as usize;
                let pslot = v as usize * nb + slot;
                if self.pending[pslot] == 0 {
                    self.buckets[slot].push(v);
                    new_entries += 1;
                }
                self.pending[pslot] |= 1u64 << lane;
            }
        }
        new_entries
    }

    /// Sparse reset when the shape matches the previous run; full reset
    /// on a shape change (the vertex-major stride depends on `lanes`).
    fn prepare(&mut self, n: usize, lanes: usize) {
        if self.n != n || self.lanes != lanes {
            self.n = n;
            self.lanes = lanes;
            self.dist.clear();
            self.dist.resize(n * lanes, INF_DIST);
            self.removed_at.clear();
            self.removed_at.resize(n, u64::MAX);
            self.removed_mask.clear();
            self.removed_mask.resize(n, 0);
            self.touched_at.clear();
            self.touched_at.resize(n, 0);
            self.generation = 0;
        } else {
            for &v in &self.touched {
                let row = v as usize * lanes;
                for d in &mut self.dist[row..row + lanes] {
                    *d = INF_DIST;
                }
                self.removed_at[v as usize] = u64::MAX;
                self.removed_mask[v as usize] = 0;
            }
        }
        self.touched.clear();
        // Generation 0 doubles as "never touched" after a full reset.
        self.generation += 1;
    }

    /// Number of lanes of the last run.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Cumulative sweeps executed over this workspace's lifetime
    /// (monotonic across pooled leases; consumers report deltas).
    pub fn sweeps_run(&self) -> u64 {
        self.sweeps_run
    }

    /// Cumulative buckets drained across all sweeps (the weighted
    /// analogue of `levels_expanded`).
    pub fn buckets_expanded(&self) -> u64 {
        self.buckets_total
    }

    /// Distance from the `lane`-th source to `v` ([`INF_DIST`] where
    /// unreachable). `O(1)` — the storage is vertex-major.
    #[inline]
    pub fn dist_at(&self, lane: usize, v: NodeId) -> u32 {
        debug_assert!(lane < self.lanes, "lane {lane} out of range");
        self.dist[v as usize * self.lanes + lane]
    }

    /// Distances from the `lane`-th source, gathered into a fresh vector.
    pub fn lane_distances(&self, lane: usize) -> Vec<u32> {
        assert!(lane < self.lanes, "lane {lane} out of range");
        (0..self.n)
            .map(|v| self.dist[v * self.lanes + lane])
            .collect()
    }

    /// Distances of **every** lane in one sequential pass over the
    /// vertex-major matrix (same transpose as
    /// `MsBfsWorkspace::all_lane_distances`).
    pub fn all_lane_distances(&self) -> Vec<Vec<u32>> {
        let mut outs: Vec<Vec<u32>> = (0..self.lanes)
            .map(|_| Vec::with_capacity(self.n))
            .collect();
        for row in self.dist.chunks_exact(self.lanes.max(1)) {
            for (out, &d) in outs.iter_mut().zip(row) {
                out.push(d);
            }
        }
        outs
    }

    /// Canonical shortest-path-tree parent of `v` in the `lane`-th
    /// source's tree, via the weight-aware
    /// [`canonical_parent`](super::bfs::canonical_parent) rule (lowest-id
    /// neighbor `u` with `dist[u] + w(u,v) == dist[v]`). `O(deg v)`;
    /// [`NO_NODE`] for the source and unreachable vertices.
    pub fn lane_parent(&self, g: &Graph, lane: usize, v: NodeId) -> NodeId {
        debug_assert!(lane < self.lanes, "lane {lane} out of range");
        let dv = self.dist[v as usize * self.lanes + lane];
        if dv == 0 || dv == INF_DIST {
            return NO_NODE;
        }
        match g.neighbor_weights(v) {
            Some(ws) => {
                for (&u, &w) in g.neighbors(v).iter().zip(ws) {
                    if self.dist[u as usize * self.lanes + lane].saturating_add(w) == dv {
                        return u;
                    }
                }
            }
            None => {
                for &u in g.neighbors(v) {
                    if self.dist[u as usize * self.lanes + lane] == dv - 1 {
                        return u;
                    }
                }
            }
        }
        NO_NODE
    }

    /// The full canonical parent array of the `lane`-th source's tree.
    pub fn lane_parents(&self, g: &Graph, lane: usize) -> Vec<NodeId> {
        assert!(lane < self.lanes, "lane {lane} out of range");
        (0..self.n as NodeId)
            .map(|v| self.lane_parent(g, lane, v))
            .collect()
    }

    /// Sum of distances from the `lane`-th source over reached vertices,
    /// and the reached count (including the source).
    pub fn distance_sum(&self, lane: usize) -> (u64, usize) {
        assert!(lane < self.lanes, "lane {lane} out of range");
        (self.sums[lane], self.reached[lane])
    }
}

/// Distances from **any** number of sources, batched through
/// `⌈|sources|/64⌉` multi-source delta-stepping sweeps — the weighted
/// twin of [`multi_source_distances`](super::bfs::multi_source_distances),
/// bit-identical to per-source Dijkstra.
pub fn multi_source_delta_distances(
    g: &Graph,
    sources: &[NodeId],
    ws: &mut MsDeltaWorkspace,
) -> Vec<Vec<u32>> {
    let mut out = Vec::with_capacity(sources.len());
    for chunk in sources.chunks(MS_BFS_LANES) {
        ws.run(g, chunk);
        out.extend(ws.all_lane_distances());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::bfs::bfs_distances;
    use crate::traversal::dijkstra::DijkstraWorkspace;

    fn weighted_test_graph(n: usize, extra: usize, max_w: u32, seed: u64) -> Graph {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = crate::GraphBuilder::new(n);
        for v in 1..n as NodeId {
            b.add_weighted_edge(rng.gen_range(0..v), v, rng.gen_range(1..=max_w))
                .unwrap();
        }
        for _ in 0..extra {
            let u = rng.gen_range(0..n as NodeId);
            let v = rng.gen_range(0..n as NodeId);
            b.add_weighted_edge(u, v, rng.gen_range(1..=max_w)).unwrap();
        }
        b.build()
    }

    #[test]
    fn single_source_matches_dijkstra_across_deltas() {
        let g = weighted_test_graph(200, 300, 9, 11);
        let mut dij = DijkstraWorkspace::new();
        let mut ws = DeltaWorkspace::new();
        for source in [0u32, 7, 199] {
            let expect: Vec<u32> = dij.run(&g, source).to_vec();
            for delta in [1u32, g.mean_edge_weight(), 1000] {
                let got = ws.run_with_delta(&g, source, delta);
                assert_eq!(got, expect.as_slice(), "source {source} delta {delta}");
            }
            ws.run(&g, source);
            assert_eq!(ws.last_run_distance_sum(), dij.last_run_distance_sum());
        }
    }

    #[test]
    fn unweighted_graph_matches_bfs() {
        let g = Graph::from_edges(7, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 5), (5, 4), (4, 6)])
            .unwrap();
        let mut ws = DeltaWorkspace::new();
        assert_eq!(ws.run(&g, 0), bfs_distances(&g, 0).as_slice());
    }

    #[test]
    fn disconnected_stays_inf_and_workspace_reuses() {
        let g = Graph::from_weighted_edges(5, &[(0, 1, 3), (1, 2, 4), (3, 4, 2)]).unwrap();
        let mut ws = DeltaWorkspace::new();
        let d: Vec<u32> = ws.run(&g, 0).to_vec();
        assert_eq!(d, vec![0, 3, 7, INF_DIST, INF_DIST]);
        assert_eq!(ws.last_run_distance_sum(), (10, 3));
        let d2: Vec<u32> = ws.run(&g, 3).to_vec();
        assert_eq!(d2, vec![INF_DIST, INF_DIST, INF_DIST, 0, 2]);
        // And back: the sparse reset must leave no residue.
        assert_eq!(ws.run(&g, 0), d.as_slice());
    }

    #[test]
    fn same_bucket_improvement_is_reprocessed() {
        // With Δ = 10 everything lands in bucket 0; vertex 1 is first
        // reached at 9 via the direct edge, then improved to 2 via vertex
        // 2 — its outgoing edge to 3 must be re-relaxed at the improved
        // distance.
        let g = Graph::from_weighted_edges(4, &[(0, 1, 9), (0, 2, 1), (2, 1, 1), (1, 3, 1)])
            .unwrap();
        let mut ws = DeltaWorkspace::new();
        assert_eq!(ws.run_with_delta(&g, 0, 10), &[0, 2, 1, 3]);
    }

    #[test]
    fn weight_skew_keeps_bucket_arrays_bounded() {
        // Weight-1 path plus two ~3e9 edges: an unclamped Δ = 1 would
        // demand ~3e9 buckets (and, batched, an n × 3e9 pending matrix).
        // The span clamp raises Δ instead; distances stay exact, and a
        // path sum past u32::MAX saturates to "unreachable" in both
        // kernels identically.
        let mut b = crate::GraphBuilder::new(9);
        for v in 1..7u32 {
            b.add_weighted_edge(v - 1, v, 1).unwrap();
        }
        b.add_weighted_edge(6, 7, 3_000_000_000).unwrap();
        b.add_weighted_edge(7, 8, 3_000_000_000).unwrap();
        let g = b.build();
        let mut dij = DijkstraWorkspace::new();
        let expect: Vec<u32> = dij.run(&g, 0).to_vec();
        assert_eq!(expect[7], 3_000_000_006);
        assert_eq!(expect[8], INF_DIST);
        let mut ws = DeltaWorkspace::new();
        for delta in [1u32, g.mean_edge_weight(), u32::MAX] {
            let got = ws.run_with_delta(&g, 0, delta);
            assert_eq!(got, expect.as_slice(), "delta {delta}");
            assert!(ws.buckets.len() <= MAX_BUCKET_SPAN + 3);
        }
        let mut ms = MsDeltaWorkspace::new();
        ms.run_with_delta(&g, &[0, 8], 1);
        assert_eq!(ms.lane_distances(0), expect);
        assert_eq!(ms.dist_at(1, 8), 0);
        assert_eq!(ms.dist_at(1, 7), 3_000_000_000);
        assert!(ms.pending.len() <= 9 * (MAX_BUCKET_SPAN + 3));
    }

    #[test]
    fn multi_source_matches_single_source() {
        let g = weighted_test_graph(300, 600, 8, 5);
        let sources: Vec<NodeId> = (0..64).map(|i| (i * 5) % 300).collect();
        let mut ms = MsDeltaWorkspace::new();
        ms.run(&g, &sources);
        assert_eq!(ms.lanes(), 64);
        let mut single = DijkstraWorkspace::new();
        for (lane, &s) in sources.iter().enumerate() {
            let expect: Vec<u32> = single.run(&g, s).to_vec();
            assert_eq!(ms.lane_distances(lane), expect, "lane {lane} source {s}");
            assert_eq!(ms.dist_at(lane, 0), expect[0]);
            assert_eq!(ms.distance_sum(lane), single.last_run_distance_sum());
        }
    }

    #[test]
    fn multi_source_handles_duplicates_and_disconnection() {
        let g = Graph::from_weighted_edges(6, &[(0, 1, 2), (1, 2, 3), (3, 4, 7)]).unwrap();
        let mut ws = MsDeltaWorkspace::new();
        ws.run(&g, &[0, 0, 3, 5]);
        assert_eq!(ws.lane_distances(0), ws.lane_distances(1));
        assert_eq!(ws.dist_at(2, 4), 7);
        assert_eq!(ws.dist_at(3, 5), 0);
        assert_eq!(ws.dist_at(3, 0), INF_DIST);
        assert_eq!(ws.distance_sum(3), (0, 1));
    }

    #[test]
    fn multi_source_workspace_reuse_across_shapes() {
        let g = weighted_test_graph(80, 100, 6, 3);
        let mut ws = MsDeltaWorkspace::new();
        ws.run(&g, &[0, 9, 41]);
        let first = ws.lane_distances(0);
        ws.run(&g, &[5]); // lane-count change forces the full reset
        assert_eq!(ws.lanes(), 1);
        ws.run(&g, &[0, 9, 41]);
        assert_eq!(ws.lane_distances(0), first);
        // Same shape back-to-back exercises the sparse reset.
        ws.run(&g, &[2, 9, 41]);
        let mut dij = DijkstraWorkspace::new();
        assert_eq!(ws.lane_distances(0), dij.run(&g, 2));
    }

    #[test]
    fn all_lane_distances_match_per_lane_gathers() {
        let g = weighted_test_graph(120, 150, 5, 8);
        let mut ws = MsDeltaWorkspace::new();
        ws.run(&g, &[0, 17, 119]);
        let all = ws.all_lane_distances();
        assert_eq!(all.len(), 3);
        for (lane, gathered) in all.iter().enumerate() {
            assert_eq!(gathered, &ws.lane_distances(lane), "lane {lane}");
        }
    }

    #[test]
    fn lane_parents_form_weighted_shortest_path_trees() {
        use crate::traversal::bfs::path_from_parents;
        let g = weighted_test_graph(150, 250, 7, 21);
        let sources = [0u32, 63, 149];
        let mut ws = MsDeltaWorkspace::new();
        ws.run(&g, &sources);
        for (lane, &s) in sources.iter().enumerate() {
            let dist = ws.lane_distances(lane);
            let parents = ws.lane_parents(&g, lane);
            assert_eq!(parents[s as usize], NO_NODE);
            for v in 0..150u32 {
                if v == s || dist[v as usize] == INF_DIST {
                    continue;
                }
                let p = parents[v as usize];
                assert!(g.has_edge(p, v));
                assert_eq!(
                    dist[p as usize] + g.edge_weight(p, v),
                    dist[v as usize],
                    "lane {lane} vertex {v}"
                );
                let path = path_from_parents(&parents, s, v).unwrap();
                assert_eq!(path[0], s);
            }
        }
    }

    #[test]
    fn batched_helper_chunks_beyond_lane_width() {
        let g = weighted_test_graph(90, 120, 4, 2);
        let sources: Vec<NodeId> = (0..70u32).map(|i| i % 90).collect();
        let mut ws = MsDeltaWorkspace::new();
        let all = multi_source_delta_distances(&g, &sources, &mut ws);
        assert_eq!(all.len(), 70);
        let mut dij = DijkstraWorkspace::new();
        for (i, &s) in sources.iter().enumerate() {
            assert_eq!(all[i], dij.run(&g, s), "source {s}");
        }
        assert_eq!(ws.sweeps_run(), 2);
    }
}
