//! Breadth-first search on unweighted graphs.
//!
//! The paper's graphs are unweighted, so single-source shortest paths are
//! BFS. Algorithm 1 (`WienerSteiner`) runs one BFS per query vertex up
//! front (`O(|Q|(|V| + |E|))`), and the evaluation harness runs all-pairs
//! BFS over candidate subgraphs, so this is the hottest code path in the
//! project. A reusable [`BfsWorkspace`] avoids reallocating the distance,
//! parent, and queue arrays on every call (perf-book: reuse workhorse
//! collections).

use crate::csr::Graph;
use crate::{NodeId, INF_DIST, NO_NODE};

/// Distances (and optionally parents) from a BFS source.
#[derive(Debug, Clone)]
pub struct BfsResult {
    /// `dist[v]` is the hop distance from the source, or [`INF_DIST`] if
    /// unreachable.
    pub dist: Vec<u32>,
    /// `parent[v]` is the BFS-tree parent, [`NO_NODE`] for the source and
    /// unreachable vertices. Empty if parents were not requested.
    pub parent: Vec<NodeId>,
}

/// Reusable buffers for BFS runs over graphs of the same size.
#[derive(Debug, Default)]
pub struct BfsWorkspace {
    dist: Vec<u32>,
    parent: Vec<NodeId>,
    queue: Vec<NodeId>,
}

impl BfsWorkspace {
    /// A workspace; buffers grow lazily to the graph size on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, n: usize, want_parents: bool) {
        self.dist.clear();
        self.dist.resize(n, INF_DIST);
        self.parent.clear();
        if want_parents {
            self.parent.resize(n, NO_NODE);
        }
        self.queue.clear();
    }

    /// BFS distances from `source`, written into the workspace.
    ///
    /// Returns the filled distance slice. `O(|V| + |E|)`.
    pub fn run(&mut self, g: &Graph, source: NodeId) -> &[u32] {
        self.run_inner(g, source, false);
        &self.dist
    }

    /// BFS distances and parents from `source`.
    pub fn run_with_parents(&mut self, g: &Graph, source: NodeId) -> (&[u32], &[NodeId]) {
        self.run_inner(g, source, true);
        (&self.dist, &self.parent)
    }

    /// BFS from `source` that stops once every vertex in `targets` has been
    /// reached (useful for the cocktail-party ball construction, §6.1).
    ///
    /// Returns the visited vertices in dequeue order, truncated at the end of
    /// the level in which the last target was found. Unreached targets simply
    /// never decrement the counter, so the BFS exhausts the component.
    pub fn run_until_covered(
        &mut self,
        g: &Graph,
        source: NodeId,
        targets: &[NodeId],
    ) -> Vec<NodeId> {
        self.reset(g.num_nodes(), false);
        let mut needed: Vec<bool> = vec![false; g.num_nodes()];
        let mut remaining = 0usize;
        for &t in targets {
            if !needed[t as usize] {
                needed[t as usize] = true;
                remaining += 1;
            }
        }

        self.dist[source as usize] = 0;
        self.queue.push(source);
        if needed[source as usize] {
            remaining -= 1;
        }
        // Once the last target is discovered at level L, vertices at level
        // >= L are kept but no longer expanded, completing level L and
        // stopping there.
        let mut stop_level = if remaining == 0 { 0 } else { u32::MAX };
        let mut head = 0usize;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            let du = self.dist[u as usize];
            if du >= stop_level {
                continue;
            }
            for &v in g.neighbors(u) {
                if self.dist[v as usize] == INF_DIST {
                    self.dist[v as usize] = du + 1;
                    self.queue.push(v);
                    if needed[v as usize] {
                        remaining -= 1;
                        if remaining == 0 {
                            stop_level = du + 1;
                        }
                    }
                }
            }
        }
        self.queue.clone()
    }

    fn run_inner(&mut self, g: &Graph, source: NodeId, want_parents: bool) {
        let n = g.num_nodes();
        debug_assert!((source as usize) < n);
        self.reset(n, want_parents);
        self.dist[source as usize] = 0;
        self.queue.push(source);
        let mut head = 0usize;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            let du = self.dist[u as usize];
            for &v in g.neighbors(u) {
                if self.dist[v as usize] == INF_DIST {
                    self.dist[v as usize] = du + 1;
                    if want_parents {
                        self.parent[v as usize] = u;
                    }
                    self.queue.push(v);
                }
            }
        }
    }

    /// Sum of distances from the last run's source to all reachable
    /// vertices, and the count of reachable vertices (including the source).
    pub fn last_run_distance_sum(&self) -> (u64, usize) {
        let mut sum = 0u64;
        for &v in &self.queue {
            sum += self.dist[v as usize] as u64;
        }
        (sum, self.queue.len())
    }
}

/// A thread-safe pool of [`BfsWorkspace`]s, so per-graph engines can
/// amortize the distance/parent/queue allocations across many queries and
/// worker threads instead of reallocating per solve.
///
/// [`WorkspacePool::lease`] pops a free workspace (or creates one on
/// demand); dropping the returned [`PooledWorkspace`] pushes it back. The
/// pool never shrinks — its high-water mark is the peak number of
/// concurrent leases, each holding `O(|V|)` words.
#[derive(Debug, Default)]
pub struct WorkspacePool {
    free: std::sync::Mutex<Vec<BfsWorkspace>>,
}

impl WorkspacePool {
    /// An empty pool; workspaces are created lazily by [`Self::lease`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Borrows a workspace; creates one if none is free.
    pub fn lease(&self) -> PooledWorkspace<'_> {
        let ws = self
            .free
            .lock()
            .expect("workspace pool poisoned")
            .pop()
            .unwrap_or_default();
        PooledWorkspace {
            pool: self,
            ws: Some(ws),
        }
    }

    /// Number of currently idle (pooled) workspaces.
    pub fn idle(&self) -> usize {
        self.free.lock().expect("workspace pool poisoned").len()
    }
}

/// RAII lease from a [`WorkspacePool`]; derefs to [`BfsWorkspace`] and
/// returns the buffers to the pool on drop.
#[derive(Debug)]
pub struct PooledWorkspace<'p> {
    pool: &'p WorkspacePool,
    ws: Option<BfsWorkspace>,
}

impl std::ops::Deref for PooledWorkspace<'_> {
    type Target = BfsWorkspace;
    fn deref(&self) -> &BfsWorkspace {
        self.ws.as_ref().expect("workspace present until drop")
    }
}

impl std::ops::DerefMut for PooledWorkspace<'_> {
    fn deref_mut(&mut self) -> &mut BfsWorkspace {
        self.ws.as_mut().expect("workspace present until drop")
    }
}

impl Drop for PooledWorkspace<'_> {
    fn drop(&mut self) {
        if let Some(ws) = self.ws.take() {
            if let Ok(mut free) = self.pool.free.lock() {
                free.push(ws);
            }
        }
    }
}

/// One-shot BFS distances from `source`. Allocates; prefer
/// [`BfsWorkspace`] in loops.
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<u32> {
    let mut ws = BfsWorkspace::new();
    ws.run(g, source);
    ws.dist
}

/// One-shot BFS distances and parents from `source`.
pub fn bfs_parents(g: &Graph, source: NodeId) -> BfsResult {
    let mut ws = BfsWorkspace::new();
    ws.run_inner(g, source, true);
    BfsResult {
        dist: ws.dist,
        parent: ws.parent,
    }
}

/// Reconstructs the path `source → target` from a parent array produced by
/// [`bfs_parents`] (or any shortest-path tree). Returns `None` if `target`
/// is unreachable.
pub fn path_from_parents(parent: &[NodeId], source: NodeId, target: NodeId) -> Option<Vec<NodeId>> {
    let mut path = vec![target];
    let mut cur = target;
    while cur != source {
        let p = parent[cur as usize];
        if p == NO_NODE {
            return None;
        }
        path.push(p);
        cur = p;
    }
    path.reverse();
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn path_graph(n: usize) -> Graph {
        let edges: Vec<(NodeId, NodeId)> = (0..n as NodeId - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn distances_on_a_path() {
        let g = path_graph(6);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4, 5]);
        let d = bfs_distances(&g, 3);
        assert_eq!(d, vec![3, 2, 1, 0, 1, 2]);
    }

    #[test]
    fn unreachable_is_inf() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], INF_DIST);
        assert_eq!(d[3], INF_DIST);
    }

    #[test]
    fn parents_reconstruct_shortest_paths() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 5), (0, 3), (3, 4), (4, 5)]).unwrap();
        let r = bfs_parents(&g, 0);
        let p = path_from_parents(&r.parent, 0, 5).unwrap();
        assert_eq!(p.len() as u32 - 1, r.dist[5]);
        assert_eq!(p[0], 0);
        assert_eq!(*p.last().unwrap(), 5);
        // Each consecutive pair is an edge.
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn path_to_unreachable_is_none() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let r = bfs_parents(&g, 0);
        assert!(path_from_parents(&r.parent, 0, 2).is_none());
    }

    #[test]
    fn workspace_is_reusable() {
        let g = path_graph(5);
        let mut ws = BfsWorkspace::new();
        let d0: Vec<u32> = ws.run(&g, 0).to_vec();
        let d4: Vec<u32> = ws.run(&g, 4).to_vec();
        assert_eq!(d0, vec![0, 1, 2, 3, 4]);
        assert_eq!(d4, vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn distance_sum_counts_component_only() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let mut ws = BfsWorkspace::new();
        ws.run(&g, 0);
        let (sum, reached) = ws.last_run_distance_sum();
        assert_eq!(sum, 1 + 2);
        assert_eq!(reached, 3);
    }

    #[test]
    fn run_until_covered_stops_at_last_target_level() {
        let g = path_graph(10);
        let mut ws = BfsWorkspace::new();
        let visited = ws.run_until_covered(&g, 0, &[3]);
        // Level-synchronous cutoff: everything within distance 3.
        let mut v = visited.clone();
        v.sort_unstable();
        assert_eq!(v, vec![0, 1, 2, 3]);
    }

    #[test]
    fn run_until_covered_with_source_in_targets() {
        let g = path_graph(4);
        let mut ws = BfsWorkspace::new();
        let visited = ws.run_until_covered(&g, 1, &[1]);
        assert_eq!(visited, vec![1]);
    }

    #[test]
    fn run_until_covered_unreachable_target_visits_component() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let mut ws = BfsWorkspace::new();
        let visited = ws.run_until_covered(&g, 0, &[4]);
        let mut v = visited;
        v.sort_unstable();
        assert_eq!(v, vec![0, 1, 2]);
    }
}
