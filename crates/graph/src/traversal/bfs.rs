//! Breadth-first search on unweighted graphs — the distance kernel.
//!
//! The paper's graphs are unweighted, so single-source shortest paths are
//! BFS. Algorithm 1 (`WienerSteiner`) runs one BFS per query vertex up
//! front (`O(|Q|(|V| + |E|))`), and the evaluation harness runs all-pairs
//! BFS over candidate subgraphs, so this is the hottest code path in the
//! project. Three cooperating pieces serve it:
//!
//! * [`BfsWorkspace`] — reusable buffers for plain top-down BFS
//!   (perf-book: reuse workhorse collections), plus
//!   [`BfsWorkspace::run_auto`], a *direction-optimizing* BFS (Beamer et
//!   al., SC'12) that switches between top-down edge expansion and
//!   bottom-up parent hunting on frontier density — distances are
//!   bit-identical to plain BFS, only the scan order changes;
//! * [`MsBfsWorkspace`] — multi-source batched BFS (Then et al., VLDB'14):
//!   distances from up to [`MS_BFS_LANES`] sources in **one** CSR sweep,
//!   tracking per-vertex lane membership in packed `u64` bitmasks so the
//!   adjacency arrays are read once per level instead of once per source;
//! * [`WorkspacePool`] — a thread-safe pool amortizing all of the above
//!   across queries and worker threads.

use crate::csr::Graph;
use crate::{NodeId, INF_DIST, NO_NODE};

/// Lane width of the multi-source BFS: one bit per source in a packed
/// `u64` mask.
pub const MS_BFS_LANES: usize = 64;

/// Below this many vertices, [`BfsWorkspace::run_auto`] skips the
/// direction-optimizing machinery: bitset bookkeeping costs more than it
/// saves on graphs that fit in a few cache lines.
const DIRECTION_OPT_MIN_NODES: usize = 256;

/// Beamer α: go bottom-up when the frontier would scan more than
/// `1/ALPHA` of the unexplored directed edges.
const DO_ALPHA: u64 = 14;

/// Beamer β: return to top-down once the frontier shrinks below `n/BETA`.
const DO_BETA: usize = 24;

/// Distances (and optionally parents) from a BFS source.
#[derive(Debug, Clone)]
pub struct BfsResult {
    /// `dist[v]` is the hop distance from the source, or [`INF_DIST`] if
    /// unreachable.
    pub dist: Vec<u32>,
    /// `parent[v]` is the BFS-tree parent, [`NO_NODE`] for the source and
    /// unreachable vertices. Empty if parents were not requested.
    pub parent: Vec<NodeId>,
}

/// Reusable buffers for BFS runs over graphs of the same size.
#[derive(Debug, Default)]
pub struct BfsWorkspace {
    dist: Vec<u32>,
    parent: Vec<NodeId>,
    queue: Vec<NodeId>,
    /// Target membership for [`Self::run_until_covered`] — kept here so
    /// the cocktail-party hot path does not allocate per call.
    needed: Vec<bool>,
    /// Visited bitset for the direction-optimizing runs.
    visited_bits: Vec<u64>,
    /// Current-frontier bitset for the bottom-up steps.
    front_bits: Vec<u64>,
}

impl BfsWorkspace {
    /// A workspace; buffers grow lazily to the graph size on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, n: usize, want_parents: bool) {
        self.dist.clear();
        self.dist.resize(n, INF_DIST);
        self.parent.clear();
        if want_parents {
            self.parent.resize(n, NO_NODE);
        }
        self.queue.clear();
    }

    /// BFS distances from `source`, written into the workspace.
    ///
    /// Returns the filled distance slice. `O(|V| + |E|)`.
    pub fn run(&mut self, g: &Graph, source: NodeId) -> &[u32] {
        self.run_inner(g, source, false);
        &self.dist
    }

    /// BFS distances and parents from `source`.
    pub fn run_with_parents(&mut self, g: &Graph, source: NodeId) -> (&[u32], &[NodeId]) {
        self.run_inner(g, source, true);
        (&self.dist, &self.parent)
    }

    /// BFS from `source` that stops once every vertex in `targets` has been
    /// reached (useful for the cocktail-party ball construction, §6.1).
    ///
    /// Returns the visited vertices in dequeue order, truncated at the end of
    /// the level in which the last target was found. Unreached targets simply
    /// never decrement the counter, so the BFS exhausts the component.
    pub fn run_until_covered(
        &mut self,
        g: &Graph,
        source: NodeId,
        targets: &[NodeId],
    ) -> Vec<NodeId> {
        self.reset(g.num_nodes(), false);
        // Workspace-owned membership buffer: clear + resize reuses the
        // allocation across calls instead of a fresh `vec!` per ball.
        self.needed.clear();
        self.needed.resize(g.num_nodes(), false);
        let mut remaining = 0usize;
        for &t in targets {
            if !self.needed[t as usize] {
                self.needed[t as usize] = true;
                remaining += 1;
            }
        }

        self.dist[source as usize] = 0;
        self.queue.push(source);
        if self.needed[source as usize] {
            remaining -= 1;
        }
        // Once the last target is discovered at level L, vertices at level
        // >= L are kept but no longer expanded, completing level L and
        // stopping there.
        let mut stop_level = if remaining == 0 { 0 } else { u32::MAX };
        let mut head = 0usize;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            let du = self.dist[u as usize];
            if du >= stop_level {
                continue;
            }
            for &v in g.neighbors(u) {
                if self.dist[v as usize] == INF_DIST {
                    self.dist[v as usize] = du + 1;
                    self.queue.push(v);
                    if self.needed[v as usize] {
                        remaining -= 1;
                        if remaining == 0 {
                            stop_level = du + 1;
                        }
                    }
                }
            }
        }
        self.queue.clone()
    }

    /// BFS distances from `source` using the direction-optimizing kernel:
    /// level-synchronous, switching between top-down edge expansion and
    /// bottom-up parent hunting on frontier density (Beamer's α/β
    /// heuristic). Small graphs fall through to the plain top-down loop.
    ///
    /// Distances are **bit-identical** to [`Self::run`] — shortest-path
    /// lengths do not depend on the scan direction — so callers that only
    /// need distances (objective evaluation, feasibility checks, Wiener
    /// sums) can switch freely; the parity is pinned by property tests.
    pub fn run_auto(&mut self, g: &Graph, source: NodeId) -> &[u32] {
        if g.num_nodes() < DIRECTION_OPT_MIN_NODES || g.num_edges() == 0 {
            self.run_inner(g, source, false);
        } else {
            self.run_direction_optimizing(g, source);
        }
        &self.dist
    }

    fn run_direction_optimizing(&mut self, g: &Graph, source: NodeId) {
        let n = g.num_nodes();
        debug_assert!((source as usize) < n);
        self.reset(n, false);
        let words = n.div_ceil(64);
        self.visited_bits.clear();
        self.visited_bits.resize(words, 0);
        self.front_bits.clear();
        self.front_bits.resize(words, 0);

        self.dist[source as usize] = 0;
        self.queue.push(source);
        self.visited_bits[source as usize / 64] |= 1u64 << (source % 64);

        let total_directed = 2 * g.num_edges() as u64;
        let mut explored_edges = 0u64;
        let mut bottom_up = false;
        let mut lo = 0usize; // current level = queue[lo..]
        let mut level = 0u32;

        while lo < self.queue.len() {
            let hi = self.queue.len();
            let frontier_edges: u64 = self.queue[lo..hi].iter().map(|&u| g.degree(u) as u64).sum();
            // Hysteresis: enter bottom-up when the frontier is edge-dense,
            // leave it once the frontier count collapses.
            bottom_up = if bottom_up {
                hi - lo > n / DO_BETA
            } else {
                frontier_edges > total_directed.saturating_sub(explored_edges) / DO_ALPHA
            };
            explored_edges += frontier_edges;
            level += 1;

            if bottom_up {
                for w in self.front_bits.iter_mut() {
                    *w = 0;
                }
                for &u in &self.queue[lo..hi] {
                    self.front_bits[u as usize / 64] |= 1u64 << (u % 64);
                }
                for w in 0..words {
                    let mut unvisited = !self.visited_bits[w];
                    let rem = n - w * 64;
                    if rem < 64 {
                        unvisited &= (1u64 << rem) - 1;
                    }
                    while unvisited != 0 {
                        let bit = unvisited.trailing_zeros() as usize;
                        unvisited &= unvisited - 1;
                        let v = (w * 64 + bit) as NodeId;
                        // Hunt for any parent in the frontier; stop at the
                        // first hit — only the distance matters.
                        for &u in g.neighbors(v) {
                            if self.front_bits[u as usize / 64] >> (u % 64) & 1 == 1 {
                                self.dist[v as usize] = level;
                                self.visited_bits[w] |= 1u64 << bit;
                                self.queue.push(v);
                                break;
                            }
                        }
                    }
                }
            } else {
                for i in lo..hi {
                    let u = self.queue[i];
                    for &v in g.neighbors(u) {
                        if self.dist[v as usize] == INF_DIST {
                            self.dist[v as usize] = level;
                            self.visited_bits[v as usize / 64] |= 1u64 << (v % 64);
                            self.queue.push(v);
                        }
                    }
                }
            }
            lo = hi;
        }
    }

    fn run_inner(&mut self, g: &Graph, source: NodeId, want_parents: bool) {
        let n = g.num_nodes();
        debug_assert!((source as usize) < n);
        self.reset(n, want_parents);
        self.dist[source as usize] = 0;
        self.queue.push(source);
        let mut head = 0usize;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            let du = self.dist[u as usize];
            for &v in g.neighbors(u) {
                if self.dist[v as usize] == INF_DIST {
                    self.dist[v as usize] = du + 1;
                    if want_parents {
                        self.parent[v as usize] = u;
                    }
                    self.queue.push(v);
                }
            }
        }
    }

    /// Sum of distances from the last run's source to all reachable
    /// vertices, and the count of reachable vertices (including the source).
    pub fn last_run_distance_sum(&self) -> (u64, usize) {
        let mut sum = 0u64;
        for &v in &self.queue {
            sum += self.dist[v as usize] as u64;
        }
        (sum, self.queue.len())
    }
}

/// Multi-source batched BFS (MS-BFS): distances from up to
/// [`MS_BFS_LANES`] sources in one shared CSR sweep.
///
/// Each vertex carries a `u64` mask of the source *lanes* that have
/// reached it; a level expands every lane at once, so the adjacency
/// arrays — the memory-bound part of BFS — are streamed once per level
/// instead of once per source. On small-diameter graphs (the paper's
/// social networks) this is the difference between 64 passes over the
/// CSR and ~6.
///
/// Distances per lane are bit-identical to a per-source
/// [`BfsWorkspace::run`] (pinned by property tests). Reuse one workspace
/// across batches to amortize the `O(|V|)` mask buffers.
///
/// ```
/// use mwc_graph::traversal::bfs::{bfs_distances, MsBfsWorkspace};
/// use mwc_graph::Graph;
///
/// let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
/// let mut ws = MsBfsWorkspace::new();
/// ws.run(&g, &[0, 4]);
/// assert_eq!(ws.lane_distances(0), bfs_distances(&g, 0));
/// assert_eq!(ws.lane_distances(1), bfs_distances(&g, 4));
/// assert_eq!(ws.dist_at(1, 0), 4);
/// assert_eq!(ws.distance_sum(1), (1 + 2 + 3 + 4, 5));
/// ```
#[derive(Debug)]
pub struct MsBfsWorkspace {
    /// Lanes that have ever reached the vertex.
    seen: Vec<u64>,
    /// Lanes that reached the vertex in the current level.
    visit: Vec<u64>,
    /// Lanes accumulating for the next level.
    visit_next: Vec<u64>,
    /// Vertices with a non-zero `visit` mask.
    frontier: Vec<NodeId>,
    /// Vertices with a non-zero `visit_next` mask.
    next_frontier: Vec<NodeId>,
    /// Vertex-major distances: `dist[v * lanes + lane]`. Vertex-major
    /// keeps the up-to-64 writes of one settled vertex on adjacent cache
    /// lines instead of scattering them across 64 lane arrays.
    dist: Vec<u32>,
    /// Per-lane distance sums over reached vertices.
    sums: [u64; MS_BFS_LANES],
    /// Per-lane count of reached vertices (including the source).
    reached: [usize; MS_BFS_LANES],
    lanes: usize,
    n: usize,
    /// Cumulative sweeps executed over this workspace's lifetime
    /// (pooled workspaces carry these across leases; readers report
    /// deltas — the request-tracing layer's kernel counters).
    sweeps_run: u64,
    /// Cumulative BFS levels expanded across all sweeps.
    levels_total: u64,
}

impl Default for MsBfsWorkspace {
    fn default() -> Self {
        MsBfsWorkspace {
            seen: Vec::new(),
            visit: Vec::new(),
            visit_next: Vec::new(),
            frontier: Vec::new(),
            next_frontier: Vec::new(),
            dist: Vec::new(),
            sums: [0; MS_BFS_LANES],
            reached: [0; MS_BFS_LANES],
            lanes: 0,
            n: 0,
            sweeps_run: 0,
            levels_total: 0,
        }
    }
}

impl MsBfsWorkspace {
    /// A workspace; buffers grow lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs BFS from every source at once (one lane per source).
    ///
    /// `O(diameter · |V| + levels · |E|)` total, not per source. Duplicate
    /// sources get independent lanes with identical distances.
    ///
    /// # Panics
    /// Panics if `sources` is empty, longer than [`MS_BFS_LANES`], or
    /// contains an out-of-range vertex.
    pub fn run(&mut self, g: &Graph, sources: &[NodeId]) {
        assert!(
            !sources.is_empty() && sources.len() <= MS_BFS_LANES,
            "multi-source BFS takes 1..={MS_BFS_LANES} sources, got {}",
            sources.len()
        );
        let n = g.num_nodes();
        self.lanes = sources.len();
        self.n = n;
        self.seen.clear();
        self.seen.resize(n, 0);
        self.visit.clear();
        self.visit.resize(n, 0);
        self.visit_next.clear();
        self.visit_next.resize(n, 0);
        self.dist.clear();
        self.dist.resize(self.lanes * n, INF_DIST);
        self.sums = [0; MS_BFS_LANES];
        self.reached = [0; MS_BFS_LANES];
        self.frontier.clear();
        self.next_frontier.clear();

        let lanes = self.lanes;
        for (lane, &s) in sources.iter().enumerate() {
            assert!((s as usize) < n, "source {s} out of range");
            let bit = 1u64 << lane;
            self.dist[s as usize * lanes + lane] = 0;
            self.reached[lane] += 1;
            if self.visit[s as usize] == 0 {
                self.frontier.push(s);
            }
            self.seen[s as usize] |= bit;
            self.visit[s as usize] |= bit;
        }

        let mut level = 0u32;
        while !self.frontier.is_empty() {
            level += 1;
            self.next_frontier.clear();
            for &u in &self.frontier {
                let mask = self.visit[u as usize];
                for &v in g.neighbors(u) {
                    // Lanes that reach `v` through `u` and have not seen
                    // it yet. `seen` is stable during the scan, so the
                    // accumulated mask needs no re-filtering below.
                    let fresh = mask & !self.seen[v as usize];
                    if fresh != 0 {
                        if self.visit_next[v as usize] == 0 {
                            self.next_frontier.push(v);
                        }
                        self.visit_next[v as usize] |= fresh;
                    }
                }
            }
            for &u in &self.frontier {
                self.visit[u as usize] = 0;
            }
            for &v in &self.next_frontier {
                let fresh = self.visit_next[v as usize];
                self.visit_next[v as usize] = 0;
                self.seen[v as usize] |= fresh;
                self.visit[v as usize] = fresh;
                let row = v as usize * lanes;
                let mut m = fresh;
                while m != 0 {
                    let lane = m.trailing_zeros() as usize;
                    m &= m - 1;
                    self.dist[row + lane] = level;
                    self.sums[lane] += level as u64;
                    self.reached[lane] += 1;
                }
            }
            std::mem::swap(&mut self.frontier, &mut self.next_frontier);
        }
        self.sweeps_run += 1;
        self.levels_total += level as u64;
    }

    /// Number of lanes of the last run.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Cumulative sweeps executed over this workspace's lifetime.
    /// Monotonic across pooled leases; consumers (the tracing layer's
    /// `root_sweep` counters) report deltas around their own use.
    pub fn sweeps_run(&self) -> u64 {
        self.sweeps_run
    }

    /// Cumulative BFS levels expanded across all sweeps of this
    /// workspace's lifetime (same delta discipline as
    /// [`Self::sweeps_run`]).
    pub fn levels_expanded(&self) -> u64 {
        self.levels_total
    }

    /// Distance from the `lane`-th source to `v` ([`INF_DIST`] where
    /// unreachable). `O(1)` — the storage is vertex-major.
    #[inline]
    pub fn dist_at(&self, lane: usize, v: NodeId) -> u32 {
        debug_assert!(lane < self.lanes, "lane {lane} out of range");
        self.dist[v as usize * self.lanes + lane]
    }

    /// Distances from the `lane`-th source of the last run, gathered into
    /// a fresh vector ([`INF_DIST`] where unreachable). The internal
    /// layout is vertex-major, so this copies; use [`Self::dist_at`] or
    /// [`Self::distance_sum`] on hot paths.
    pub fn lane_distances(&self, lane: usize) -> Vec<u32> {
        assert!(lane < self.lanes, "lane {lane} out of range");
        (0..self.n)
            .map(|v| self.dist[v * self.lanes + lane])
            .collect()
    }

    /// Distances of **every** lane, gathered in one sequential pass over
    /// the vertex-major matrix (each vertex's `lanes` values are adjacent,
    /// so the transpose streams the matrix once instead of striding
    /// through it per lane as repeated [`Self::lane_distances`] calls
    /// would). Returns `lanes` vectors in source order.
    pub fn all_lane_distances(&self) -> Vec<Vec<u32>> {
        let mut outs: Vec<Vec<u32>> = (0..self.lanes)
            .map(|_| Vec::with_capacity(self.n))
            .collect();
        for row in self.dist.chunks_exact(self.lanes.max(1)) {
            for (out, &d) in outs.iter_mut().zip(row) {
                out.push(d);
            }
        }
        outs
    }

    /// Canonical BFS-tree parent of `v` in the `lane`-th source's tree,
    /// reconstructed on demand from the vertex-major distance matrix via
    /// the [`canonical_parent`] rule (lowest-id neighbor one level
    /// closer). `O(deg v)`; [`NO_NODE`] for the source and unreachable
    /// vertices.
    pub fn lane_parent(&self, g: &Graph, lane: usize, v: NodeId) -> NodeId {
        debug_assert!(lane < self.lanes, "lane {lane} out of range");
        let dv = self.dist[v as usize * self.lanes + lane];
        if dv == 0 || dv == INF_DIST {
            return NO_NODE;
        }
        for &u in g.neighbors(v) {
            if self.dist[u as usize * self.lanes + lane] == dv - 1 {
                return u;
            }
        }
        NO_NODE
    }

    /// The full canonical parent array of the `lane`-th source's tree —
    /// one [`Self::lane_parent`] per vertex, `O(|V| + |E|)` total.
    /// Identical to [`canonical_parents`] over [`Self::lane_distances`]
    /// (the distances are bit-identical to per-source BFS, so the
    /// deterministic rule lands on the same parents).
    pub fn lane_parents(&self, g: &Graph, lane: usize) -> Vec<NodeId> {
        assert!(lane < self.lanes, "lane {lane} out of range");
        (0..self.n as NodeId)
            .map(|v| self.lane_parent(g, lane, v))
            .collect()
    }

    /// Sum of distances from the `lane`-th source over reached vertices,
    /// and the reached count (including the source) — the all-pairs
    /// building block [`crate::wiener::wiener_index`] consumes.
    pub fn distance_sum(&self, lane: usize) -> (u64, usize) {
        assert!(lane < self.lanes, "lane {lane} out of range");
        (self.sums[lane], self.reached[lane])
    }
}

/// The canonical shortest-path-tree parent of `v` given the distance
/// array from some source: the **lowest-id** neighbor `u` on a tight edge
/// — `dist[u] + w(u,v) == dist[v]`, which on unweighted graphs is the
/// neighbor at distance `dist[v] − 1` ([`NO_NODE`] for the source and
/// unreachable vertices).
///
/// Any tight in-neighbor is a valid shortest-path-tree parent; picking
/// the minimum relabeled id makes the choice a pure function of the
/// distance array. That is what lets the batched solvers reconstruct
/// parent trees from [`MsBfsWorkspace`]'s (or `MsDeltaWorkspace`'s)
/// vertex-major matrix and still produce **bit-identical** connectors to
/// the per-root path: per-source and multi-source distances agree, so
/// this rule lands on the same parents no matter which kernel produced
/// the distances. Weighted graphs dispatch on their stored weights, so
/// `AdjustDistances` and the solvers work unchanged on either family.
#[inline]
pub fn canonical_parent(g: &Graph, dist: &[u32], v: NodeId) -> NodeId {
    let dv = dist[v as usize];
    if dv == 0 || dv == INF_DIST {
        return NO_NODE;
    }
    // CSR adjacency is sorted, so the first hit is the lowest id.
    match g.neighbor_weights(v) {
        Some(ws) => {
            for (&u, &w) in g.neighbors(v).iter().zip(ws) {
                // saturating: INF_DIST + w stays INF_DIST ≠ finite dv.
                if dist[u as usize].saturating_add(w) == dv {
                    return u;
                }
            }
        }
        None => {
            for &u in g.neighbors(v) {
                if dist[u as usize] == dv - 1 {
                    return u;
                }
            }
        }
    }
    NO_NODE
}

/// The full canonical parent array for a BFS distance array — one
/// [`canonical_parent`] per vertex, `O(|V| + |E|)`.
pub fn canonical_parents(g: &Graph, dist: &[u32]) -> Vec<NodeId> {
    (0..g.num_nodes() as NodeId)
        .map(|v| canonical_parent(g, dist, v))
        .collect()
}

/// Distances from **any** number of sources, batched through
/// `⌈|sources|/64⌉` multi-source sweeps and gathered into one per-source
/// array each (via the one-pass [`MsBfsWorkspace::all_lane_distances`]
/// transpose). Bit-identical to per-source [`BfsWorkspace::run`] — the
/// shared building block of the batched `ws-q` root sweep and the
/// batched [`LandmarkOracle`](crate::oracle::LandmarkOracle) build.
pub fn multi_source_distances(
    g: &Graph,
    sources: &[NodeId],
    ws: &mut MsBfsWorkspace,
) -> Vec<Vec<u32>> {
    let mut out = Vec::with_capacity(sources.len());
    for chunk in sources.chunks(MS_BFS_LANES) {
        ws.run(g, chunk);
        out.extend(ws.all_lane_distances());
    }
    out
}

/// One-shot multi-source BFS: distances per source, in source order.
/// Allocates; prefer [`MsBfsWorkspace`] + [`multi_source_distances`] in
/// loops.
pub fn multi_source_bfs(g: &Graph, sources: &[NodeId]) -> Vec<Vec<u32>> {
    multi_source_distances(g, sources, &mut MsBfsWorkspace::new())
}

/// A thread-safe pool of [`BfsWorkspace`]s, so per-graph engines can
/// amortize the distance/parent/queue allocations across many queries and
/// worker threads instead of reallocating per solve.
///
/// [`WorkspacePool::lease`] pops a free workspace (or creates one on
/// demand); dropping the returned [`PooledWorkspace`] pushes it back. The
/// pool never shrinks — its high-water mark is the peak number of
/// concurrent leases, each holding `O(|V|)` words.
#[derive(Debug, Default)]
pub struct WorkspacePool {
    free: std::sync::Mutex<Vec<BfsWorkspace>>,
    /// Idle multi-source workspaces — pooled separately because their
    /// `O(lanes · |V|)` distance matrix dwarfs a single-source workspace.
    free_multi: std::sync::Mutex<Vec<MsBfsWorkspace>>,
    /// Idle integer-Dijkstra workspaces (the sequential weighted
    /// reference); pooled so per-call heap + distance allocations are
    /// amortized like every other kernel's.
    free_dijkstra: std::sync::Mutex<Vec<super::dijkstra::DijkstraWorkspace>>,
    /// Idle single-source delta-stepping workspaces.
    free_delta: std::sync::Mutex<Vec<super::delta::DeltaWorkspace>>,
    /// Idle multi-source delta-stepping workspaces (lane-width distance
    /// matrices, like `free_multi`).
    free_multi_delta: std::sync::Mutex<Vec<super::delta::MsDeltaWorkspace>>,
}

impl WorkspacePool {
    /// An empty pool; workspaces are created lazily by [`Self::lease`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Borrows a workspace; creates one if none is free.
    pub fn lease(&self) -> PooledWorkspace<'_> {
        let ws = self
            .free
            .lock()
            .expect("workspace pool poisoned")
            .pop()
            .unwrap_or_default();
        PooledWorkspace {
            pool: self,
            ws: Some(ws),
        }
    }

    /// Borrows a multi-source workspace; creates one if none is free.
    /// The batched `ws-q` root sweep leases one per solve instead of
    /// reallocating the lane-mask and distance-matrix buffers per query.
    pub fn lease_multi(&self) -> PooledMsWorkspace<'_> {
        let ws = self
            .free_multi
            .lock()
            .expect("workspace pool poisoned")
            .pop()
            .unwrap_or_default();
        PooledMsWorkspace {
            pool: self,
            ws: Some(ws),
        }
    }

    /// Borrows an integer-Dijkstra workspace; creates one if none is
    /// free. The weighted dispatch paths lease this where the unweighted
    /// ones lease a [`BfsWorkspace`].
    pub fn lease_dijkstra(&self) -> PooledDijkstraWorkspace<'_> {
        let ws = self
            .free_dijkstra
            .lock()
            .expect("workspace pool poisoned")
            .pop()
            .unwrap_or_default();
        PooledDijkstraWorkspace {
            pool: self,
            ws: Some(ws),
        }
    }

    /// Borrows a single-source delta-stepping workspace; creates one if
    /// none is free.
    pub fn lease_delta(&self) -> PooledDeltaWorkspace<'_> {
        let ws = self
            .free_delta
            .lock()
            .expect("workspace pool poisoned")
            .pop()
            .unwrap_or_default();
        PooledDeltaWorkspace {
            pool: self,
            ws: Some(ws),
        }
    }

    /// Borrows a multi-source delta-stepping workspace; creates one if
    /// none is free — the weighted twin of [`Self::lease_multi`].
    pub fn lease_multi_delta(&self) -> PooledMsDeltaWorkspace<'_> {
        let ws = self
            .free_multi_delta
            .lock()
            .expect("workspace pool poisoned")
            .pop()
            .unwrap_or_default();
        PooledMsDeltaWorkspace {
            pool: self,
            ws: Some(ws),
        }
    }

    /// Number of currently idle (pooled) single-source workspaces.
    pub fn idle(&self) -> usize {
        self.free.lock().expect("workspace pool poisoned").len()
    }

    /// Number of currently idle (pooled) multi-source workspaces.
    pub fn idle_multi(&self) -> usize {
        self.free_multi
            .lock()
            .expect("workspace pool poisoned")
            .len()
    }

    /// Number of currently idle (pooled) Dijkstra workspaces.
    pub fn idle_dijkstra(&self) -> usize {
        self.free_dijkstra
            .lock()
            .expect("workspace pool poisoned")
            .len()
    }

    /// Number of currently idle (pooled) delta-stepping workspaces.
    pub fn idle_delta(&self) -> usize {
        self.free_delta
            .lock()
            .expect("workspace pool poisoned")
            .len()
    }

    /// Number of currently idle (pooled) multi-source delta-stepping
    /// workspaces.
    pub fn idle_multi_delta(&self) -> usize {
        self.free_multi_delta
            .lock()
            .expect("workspace pool poisoned")
            .len()
    }
}

/// RAII lease from a [`WorkspacePool`]; derefs to [`BfsWorkspace`] and
/// returns the buffers to the pool on drop.
#[derive(Debug)]
pub struct PooledWorkspace<'p> {
    pool: &'p WorkspacePool,
    ws: Option<BfsWorkspace>,
}

impl std::ops::Deref for PooledWorkspace<'_> {
    type Target = BfsWorkspace;
    fn deref(&self) -> &BfsWorkspace {
        self.ws.as_ref().expect("workspace present until drop")
    }
}

impl std::ops::DerefMut for PooledWorkspace<'_> {
    fn deref_mut(&mut self) -> &mut BfsWorkspace {
        self.ws.as_mut().expect("workspace present until drop")
    }
}

impl Drop for PooledWorkspace<'_> {
    fn drop(&mut self) {
        if let Some(ws) = self.ws.take() {
            if let Ok(mut free) = self.pool.free.lock() {
                free.push(ws);
            }
        }
    }
}

/// RAII lease from a [`WorkspacePool`]; derefs to [`MsBfsWorkspace`] and
/// returns the buffers to the pool on drop.
#[derive(Debug)]
pub struct PooledMsWorkspace<'p> {
    pool: &'p WorkspacePool,
    ws: Option<MsBfsWorkspace>,
}

impl std::ops::Deref for PooledMsWorkspace<'_> {
    type Target = MsBfsWorkspace;
    fn deref(&self) -> &MsBfsWorkspace {
        self.ws.as_ref().expect("workspace present until drop")
    }
}

impl std::ops::DerefMut for PooledMsWorkspace<'_> {
    fn deref_mut(&mut self) -> &mut MsBfsWorkspace {
        self.ws.as_mut().expect("workspace present until drop")
    }
}

impl Drop for PooledMsWorkspace<'_> {
    fn drop(&mut self) {
        if let Some(ws) = self.ws.take() {
            if let Ok(mut free) = self.pool.free_multi.lock() {
                free.push(ws);
            }
        }
    }
}

/// RAII lease from a [`WorkspacePool`]; derefs to
/// [`DijkstraWorkspace`](super::dijkstra::DijkstraWorkspace) and returns
/// the buffers to the pool on drop.
#[derive(Debug)]
pub struct PooledDijkstraWorkspace<'p> {
    pool: &'p WorkspacePool,
    ws: Option<super::dijkstra::DijkstraWorkspace>,
}

impl std::ops::Deref for PooledDijkstraWorkspace<'_> {
    type Target = super::dijkstra::DijkstraWorkspace;
    fn deref(&self) -> &Self::Target {
        self.ws.as_ref().expect("workspace present until drop")
    }
}

impl std::ops::DerefMut for PooledDijkstraWorkspace<'_> {
    fn deref_mut(&mut self) -> &mut Self::Target {
        self.ws.as_mut().expect("workspace present until drop")
    }
}

impl Drop for PooledDijkstraWorkspace<'_> {
    fn drop(&mut self) {
        if let Some(ws) = self.ws.take() {
            if let Ok(mut free) = self.pool.free_dijkstra.lock() {
                free.push(ws);
            }
        }
    }
}

/// RAII lease from a [`WorkspacePool`]; derefs to
/// [`DeltaWorkspace`](super::delta::DeltaWorkspace) and returns the
/// buffers to the pool on drop.
#[derive(Debug)]
pub struct PooledDeltaWorkspace<'p> {
    pool: &'p WorkspacePool,
    ws: Option<super::delta::DeltaWorkspace>,
}

impl std::ops::Deref for PooledDeltaWorkspace<'_> {
    type Target = super::delta::DeltaWorkspace;
    fn deref(&self) -> &Self::Target {
        self.ws.as_ref().expect("workspace present until drop")
    }
}

impl std::ops::DerefMut for PooledDeltaWorkspace<'_> {
    fn deref_mut(&mut self) -> &mut Self::Target {
        self.ws.as_mut().expect("workspace present until drop")
    }
}

impl Drop for PooledDeltaWorkspace<'_> {
    fn drop(&mut self) {
        if let Some(ws) = self.ws.take() {
            if let Ok(mut free) = self.pool.free_delta.lock() {
                free.push(ws);
            }
        }
    }
}

/// RAII lease from a [`WorkspacePool`]; derefs to
/// [`MsDeltaWorkspace`](super::delta::MsDeltaWorkspace) and returns the
/// buffers to the pool on drop.
#[derive(Debug)]
pub struct PooledMsDeltaWorkspace<'p> {
    pool: &'p WorkspacePool,
    ws: Option<super::delta::MsDeltaWorkspace>,
}

impl std::ops::Deref for PooledMsDeltaWorkspace<'_> {
    type Target = super::delta::MsDeltaWorkspace;
    fn deref(&self) -> &Self::Target {
        self.ws.as_ref().expect("workspace present until drop")
    }
}

impl std::ops::DerefMut for PooledMsDeltaWorkspace<'_> {
    fn deref_mut(&mut self) -> &mut Self::Target {
        self.ws.as_mut().expect("workspace present until drop")
    }
}

impl Drop for PooledMsDeltaWorkspace<'_> {
    fn drop(&mut self) {
        if let Some(ws) = self.ws.take() {
            if let Ok(mut free) = self.pool.free_multi_delta.lock() {
                free.push(ws);
            }
        }
    }
}

/// One-shot BFS distances from `source`. Allocates; prefer
/// [`BfsWorkspace`] in loops.
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<u32> {
    let mut ws = BfsWorkspace::new();
    ws.run(g, source);
    ws.dist
}

/// One-shot BFS distances and parents from `source`.
pub fn bfs_parents(g: &Graph, source: NodeId) -> BfsResult {
    let mut ws = BfsWorkspace::new();
    ws.run_inner(g, source, true);
    BfsResult {
        dist: ws.dist,
        parent: ws.parent,
    }
}

/// Reconstructs the path `source → target` from a parent array produced by
/// [`bfs_parents`] (or any shortest-path tree). Returns `None` if `target`
/// is unreachable.
pub fn path_from_parents(parent: &[NodeId], source: NodeId, target: NodeId) -> Option<Vec<NodeId>> {
    let mut path = vec![target];
    let mut cur = target;
    while cur != source {
        let p = parent[cur as usize];
        if p == NO_NODE {
            return None;
        }
        path.push(p);
        cur = p;
    }
    path.reverse();
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn path_graph(n: usize) -> Graph {
        let edges: Vec<(NodeId, NodeId)> = (0..n as NodeId - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn distances_on_a_path() {
        let g = path_graph(6);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4, 5]);
        let d = bfs_distances(&g, 3);
        assert_eq!(d, vec![3, 2, 1, 0, 1, 2]);
    }

    #[test]
    fn unreachable_is_inf() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], INF_DIST);
        assert_eq!(d[3], INF_DIST);
    }

    #[test]
    fn parents_reconstruct_shortest_paths() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 5), (0, 3), (3, 4), (4, 5)]).unwrap();
        let r = bfs_parents(&g, 0);
        let p = path_from_parents(&r.parent, 0, 5).unwrap();
        assert_eq!(p.len() as u32 - 1, r.dist[5]);
        assert_eq!(p[0], 0);
        assert_eq!(*p.last().unwrap(), 5);
        // Each consecutive pair is an edge.
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn path_to_unreachable_is_none() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let r = bfs_parents(&g, 0);
        assert!(path_from_parents(&r.parent, 0, 2).is_none());
    }

    #[test]
    fn workspace_is_reusable() {
        let g = path_graph(5);
        let mut ws = BfsWorkspace::new();
        let d0: Vec<u32> = ws.run(&g, 0).to_vec();
        let d4: Vec<u32> = ws.run(&g, 4).to_vec();
        assert_eq!(d0, vec![0, 1, 2, 3, 4]);
        assert_eq!(d4, vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn distance_sum_counts_component_only() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let mut ws = BfsWorkspace::new();
        ws.run(&g, 0);
        let (sum, reached) = ws.last_run_distance_sum();
        assert_eq!(sum, 1 + 2);
        assert_eq!(reached, 3);
    }

    #[test]
    fn run_until_covered_stops_at_last_target_level() {
        let g = path_graph(10);
        let mut ws = BfsWorkspace::new();
        let visited = ws.run_until_covered(&g, 0, &[3]);
        // Level-synchronous cutoff: everything within distance 3.
        let mut v = visited.clone();
        v.sort_unstable();
        assert_eq!(v, vec![0, 1, 2, 3]);
    }

    #[test]
    fn run_until_covered_with_source_in_targets() {
        let g = path_graph(4);
        let mut ws = BfsWorkspace::new();
        let visited = ws.run_until_covered(&g, 1, &[1]);
        assert_eq!(visited, vec![1]);
    }

    #[test]
    fn run_until_covered_unreachable_target_visits_component() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let mut ws = BfsWorkspace::new();
        let visited = ws.run_until_covered(&g, 0, &[4]);
        let mut v = visited;
        v.sort_unstable();
        assert_eq!(v, vec![0, 1, 2]);
    }

    #[test]
    fn run_until_covered_workspace_buffer_is_reusable() {
        // The `needed` buffer lives in the workspace now; back-to-back
        // calls with different targets must not leak state.
        let g = path_graph(10);
        let mut ws = BfsWorkspace::new();
        let a = ws.run_until_covered(&g, 0, &[3]);
        let b = ws.run_until_covered(&g, 0, &[7]);
        let c = ws.run_until_covered(&g, 0, &[3]);
        assert_eq!(a, c);
        assert_eq!(b.len(), 8);
        assert_eq!(a.len(), 4);
    }

    /// A deterministic scale-free-ish test graph big enough to exercise
    /// the bottom-up switch (n >= DIRECTION_OPT_MIN_NODES).
    fn dense_test_graph(n: usize) -> Graph {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let mut b = crate::GraphBuilder::new(n);
        for v in 1..n as NodeId {
            b.add_edge(rng.gen_range(0..v), v).unwrap();
        }
        for _ in 0..4 * n {
            let u = rng.gen_range(0..n as NodeId);
            let v = rng.gen_range(0..n as NodeId);
            b.add_edge(u, v).unwrap();
        }
        b.build()
    }

    #[test]
    fn direction_optimizing_matches_plain_bfs() {
        let g = dense_test_graph(600);
        let mut plain = BfsWorkspace::new();
        let mut auto = BfsWorkspace::new();
        for source in [0u32, 1, 17, 599] {
            let d_plain: Vec<u32> = plain.run(&g, source).to_vec();
            let d_auto: Vec<u32> = auto.run_auto(&g, source).to_vec();
            assert_eq!(d_plain, d_auto, "source {source}");
            // The distance-sum contract holds for both kernels.
            plain.run(&g, source);
            let s_plain = plain.last_run_distance_sum();
            auto.run_auto(&g, source);
            assert_eq!(s_plain, auto.last_run_distance_sum());
        }
    }

    #[test]
    fn direction_optimizing_handles_disconnected_graphs() {
        // Two components, both above the small-graph cutoff in total.
        let mut edges: Vec<(NodeId, NodeId)> = (0..200).map(|i| (i, i + 1)).collect();
        edges.extend((300..500u32).map(|i| (i, i + 1)));
        let g = Graph::from_edges(501, &edges).unwrap();
        let mut ws = BfsWorkspace::new();
        let d: Vec<u32> = ws.run_auto(&g, 0).to_vec();
        assert_eq!(d[200], 200);
        assert_eq!(d[300], INF_DIST);
        assert_eq!(d, bfs_distances(&g, 0));
    }

    #[test]
    fn multi_source_matches_per_source() {
        let g = dense_test_graph(300);
        let sources: Vec<NodeId> = (0..64).map(|i| (i * 4) % 300).collect();
        let mut ws = MsBfsWorkspace::new();
        ws.run(&g, &sources);
        assert_eq!(ws.lanes(), 64);
        let mut single = BfsWorkspace::new();
        for (lane, &s) in sources.iter().enumerate() {
            let expect: Vec<u32> = single.run(&g, s).to_vec();
            assert_eq!(ws.lane_distances(lane), expect, "lane {lane} source {s}");
            assert_eq!(ws.dist_at(lane, 0), expect[0]);
            assert_eq!(ws.distance_sum(lane), single.last_run_distance_sum());
        }
    }

    #[test]
    fn multi_source_handles_duplicates_and_disconnection() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let got = multi_source_bfs(&g, &[0, 0, 3, 5]);
        assert_eq!(got[0], got[1]);
        assert_eq!(got[0], bfs_distances(&g, 0));
        assert_eq!(got[2], bfs_distances(&g, 3));
        assert_eq!(got[3][5], 0);
        assert_eq!(got[3][0], INF_DIST);
    }

    #[test]
    fn multi_source_workspace_is_reusable() {
        let g = path_graph(8);
        let mut ws = MsBfsWorkspace::new();
        ws.run(&g, &[0, 7]);
        let first = ws.lane_distances(0);
        ws.run(&g, &[3]);
        assert_eq!(ws.lanes(), 1);
        assert_eq!(ws.lane_distances(0), bfs_distances(&g, 3));
        ws.run(&g, &[0, 7]);
        assert_eq!(ws.lane_distances(0), first);
    }

    #[test]
    #[should_panic(expected = "sources")]
    fn multi_source_rejects_empty_source_list() {
        let g = path_graph(3);
        MsBfsWorkspace::new().run(&g, &[]);
    }

    #[test]
    fn all_lane_distances_match_per_lane_gathers() {
        let g = dense_test_graph(300);
        let sources: Vec<NodeId> = vec![0, 9, 120, 299];
        let mut ws = MsBfsWorkspace::new();
        ws.run(&g, &sources);
        let all = ws.all_lane_distances();
        assert_eq!(all.len(), sources.len());
        for (lane, gathered) in all.iter().enumerate() {
            assert_eq!(gathered, &ws.lane_distances(lane), "lane {lane}");
        }
    }

    #[test]
    fn canonical_parents_form_a_shortest_path_tree() {
        let g = dense_test_graph(400);
        let mut ws = BfsWorkspace::new();
        for source in [0u32, 5, 399] {
            let dist: Vec<u32> = ws.run(&g, source).to_vec();
            let parents = canonical_parents(&g, &dist);
            assert_eq!(parents[source as usize], NO_NODE);
            for v in 0..400u32 {
                let p = parents[v as usize];
                if v == source {
                    continue;
                }
                if dist[v as usize] == INF_DIST {
                    assert_eq!(p, NO_NODE);
                    continue;
                }
                // The parent is one level closer and the lowest-id such
                // neighbor (the determinism the batched solvers rely on).
                assert!(g.has_edge(p, v));
                assert_eq!(dist[p as usize] + 1, dist[v as usize]);
                for &u in g.neighbors(v) {
                    if dist[u as usize] + 1 == dist[v as usize] {
                        assert!(p <= u, "parent {p} is not the lowest-id choice {u}");
                        break;
                    }
                }
                // Walking the chain reaches the source in dist[v] steps.
                let path = path_from_parents(&parents, source, v).unwrap();
                assert_eq!(path.len() as u32 - 1, dist[v as usize]);
            }
        }
    }

    #[test]
    fn lane_parents_match_per_source_canonical_parents() {
        let g = dense_test_graph(350);
        let sources: Vec<NodeId> = vec![0, 17, 100, 349];
        let mut ms = MsBfsWorkspace::new();
        ms.run(&g, &sources);
        let mut single = BfsWorkspace::new();
        for (lane, &s) in sources.iter().enumerate() {
            let dist: Vec<u32> = single.run(&g, s).to_vec();
            let expect = canonical_parents(&g, &dist);
            assert_eq!(ms.lane_parents(&g, lane), expect, "lane {lane}");
            assert_eq!(ms.lane_parent(&g, lane, s), NO_NODE);
        }
    }

    #[test]
    fn multi_workspace_pool_recycles() {
        let pool = WorkspacePool::new();
        let g = path_graph(6);
        {
            let mut ms = pool.lease_multi();
            ms.run(&g, &[0, 5]);
            assert_eq!(ms.lane_distances(0), bfs_distances(&g, 0));
            assert_eq!(pool.idle_multi(), 0);
        }
        assert_eq!(pool.idle_multi(), 1);
        {
            let _a = pool.lease_multi();
            assert_eq!(pool.idle_multi(), 0);
        }
        assert_eq!(pool.idle_multi(), 1);
    }
}
