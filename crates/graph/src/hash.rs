//! A fast, non-cryptographic hasher for dense integer keys.
//!
//! The standard library's SipHash is DoS-resistant but slow for the hot
//! node-id maps used by the Steiner/adjust machinery (see the perf-book
//! chapter on hashing). This is the Fx multiply-rotate hash used by rustc,
//! reimplemented here because third-party hashing crates are outside this
//! project's dependency policy. Inputs are internal node ids, so HashDoS is
//! not a concern.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hash function: `state = (state.rotate_left(5) ^ word) * SEED`.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_one<T: std::hash::Hash>(v: T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_one(42u32), hash_one(42u32));
        assert_eq!(hash_one((1u32, 2u32)), hash_one((1u32, 2u32)));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Not a statistical test, just a sanity check that consecutive ids
        // do not collide trivially.
        let hashes: Vec<u64> = (0u32..1000).map(hash_one).collect();
        let unique: FxHashSet<u64> = hashes.iter().copied().collect();
        assert_eq!(unique.len(), hashes.len());
    }

    #[test]
    fn byte_slices_hash_like_chunked_words() {
        // 9 bytes exercises the remainder path.
        let a = hash_one([1u8, 2, 3, 4, 5, 6, 7, 8, 9].as_slice());
        let b = hash_one([1u8, 2, 3, 4, 5, 6, 7, 8, 10].as_slice());
        assert_ne!(a, b);
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
    }
}
