//! `ws-q` — the paper's constant-factor approximation algorithm
//! (Algorithm 1, `WienerSteiner`).
//!
//! For each candidate root `r` (a query vertex, justified by Lemma 5) and
//! each λ in a geometric grid covering `[1/√2, √|V|]` (Lemma 3):
//!
//! 1. reweight the graph to `G_{r,λ}` with
//!    `w(u, v) = λ + max(d_G(r, u), d_G(r, v)) / λ` (Lemma 4);
//! 2. run Mehlhorn's Steiner 2-approximation on terminals `Q` — this
//!    4-approximates the linearized objective `B(·, r, λ)` (Corollary 3);
//! 3. post-process with `AdjustDistances` (Lemma 2) so distances *inside*
//!    the solution stay within `1 + √2` of distances in `G`;
//! 4. keep the candidate minimizing `A(H, r)` (or the exact Wiener index
//!    when all candidates are small — Remark 1).
//!
//! Theorem 4: the result is an `O(1)`-approximate minimum Wiener connector,
//! in time `O(|Q| (|E| log|V| + |V| log²|V|))`. The paper's §6.6 notes the
//! root loop parallelizes embarrassingly; [`WsqConfig::parallel`] does
//! exactly that with scoped threads.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use mwc_graph::traversal::bfs::{
    canonical_parent, multi_source_distances, MsBfsWorkspace, PooledMsDeltaWorkspace,
    PooledMsWorkspace, WorkspacePool, MS_BFS_LANES,
};
use mwc_graph::traversal::delta::multi_source_delta_distances;
use mwc_graph::{wiener, Graph, NodeId, INF_DIST};

use crate::adjust::adjust_distances_with;
use crate::connector::Connector;
use crate::error::{CoreError, Result};
use crate::steiner::{klein_ravi, steiner_tree, SteinerAlgorithm};
use crate::trace::TraceContext;

/// Which vertices Algorithm 1 tries as the root `r`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootPolicy {
    /// Only query vertices (the paper's choice — Lemma 5 shows this loses
    /// at most a factor 3).
    QueryOnly,
    /// Every vertex of the graph (the exhaustive variant of §4 Step 5;
    /// `O(|V|)` times slower — only sensible on small graphs, used by the
    /// Lemma 5 ablation bench).
    AllVertices,
}

/// Tuning knobs for [`WienerSteiner`]. The defaults reproduce the paper's
/// parameter-free setting.
#[derive(Debug, Clone)]
pub struct WsqConfig {
    /// λ-grid resolution: consecutive candidates differ by `1 + beta`
    /// (Algorithm 1 line 3 suggests `β = 1`). Smaller β → finer grid →
    /// better constants, more Steiner calls.
    pub beta: f64,
    /// Parallelize the root loop across scoped threads.
    pub parallel: bool,
    /// Candidates up to this many vertices are compared by exact Wiener
    /// index; if any candidate exceeds it, all candidates are compared by
    /// `A(H, r)` instead (Remark 1's worst-case fallback).
    pub wiener_exact_threshold: usize,
    /// Root sweep policy.
    pub roots: RootPolicy,
    /// Apply the `AdjustDistances` post-processing (disable only for the
    /// ablation study; required for the approximation guarantee).
    pub adjust: bool,
    /// Record every candidate inspected (for the ablation/diagnostic
    /// benches).
    pub keep_trace: bool,
    /// Which Steiner subroutine solves the per-`(root, λ)` instances. All
    /// choices carry the same approximation factor; the paper (and the
    /// default) uses Mehlhorn's algorithm (§6.1).
    pub steiner: SteinerAlgorithm,
    /// Bypass Lemma 4's node-to-edge cost shift and solve Problem 4
    /// directly with the Klein–Ravi node-weighted greedy (`O(log |Q|)`
    /// factor). Exists for the ablation study: it measures what the
    /// paper's constant-factor trick is worth (DESIGN.md §7). When set,
    /// `steiner` is ignored.
    pub node_weighted_steiner: bool,
    /// Cooperative wall-clock deadline. Once passed, the solver stops
    /// producing further `(root, λ)` candidates and selects among those
    /// already evaluated — it always returns a feasible connector (each
    /// worker finishes its first candidate before honoring the deadline),
    /// but the approximation guarantee only covers completed sweeps.
    /// Typically set through
    /// [`QueryOptions::deadline`](crate::engine::QueryOptions::deadline)
    /// rather than directly.
    pub deadline: Option<Instant>,
    /// Route the solver's distance-only BFS runs (feasibility check,
    /// per-root distances when [`WsqConfig::batch`] is off, `A(H, r)`
    /// candidate evaluation) through the direction-optimizing kernel
    /// ([`BfsWorkspace::run_auto`]
    /// (mwc_graph::traversal::bfs::BfsWorkspace::run_auto)). Distances —
    /// and therefore connectors — are bit-identical either way (pinned by
    /// `kernel_toggle_yields_identical_connectors`); the flag exists so
    /// the kernel bench and parity tests can hold everything else fixed.
    /// BFS-tree parents are no longer scan-order artifacts: they are
    /// derived from the distances by the deterministic
    /// [`canonical_parent`] rule, so every kernel feeds `AdjustDistances`
    /// the same trees.
    pub kernel: bool,
    /// Batch Algorithm 1's per-root sweep through the multi-source BFS
    /// kernel: the `|Q|` root distance computations (line 1) and the
    /// feasibility pass run as `⌈|Q|/64⌉` shared CSR sweeps
    /// ([`MsBfsWorkspace`]) instead of one BFS per root, and the per-root
    /// parent trees feeding `AdjustDistances` are reconstructed on demand
    /// from the distance matrix ([`canonical_parent`]). Connectors are
    /// **bit-identical** with batching on or off (pinned by
    /// `batch_toggle_yields_identical_connectors` and the engine-level
    /// parity tests); the flag exists for the `wsq_batched` bench section
    /// and A/B parity testing.
    pub batch: bool,
    /// Per-request trace context: when enabled the solver records
    /// `feasibility`, `root_sweep` (with lane/sweep/candidate counters
    /// and accumulated `AdjustDistances` time), and `evaluate` stage
    /// spans. Disabled (the default) it costs one branch per stage.
    /// Typically set through
    /// [`QueryOptions::trace`](crate::engine::QueryOptions::trace).
    pub trace: TraceContext,
}

impl Default for WsqConfig {
    fn default() -> Self {
        WsqConfig {
            beta: 1.0,
            parallel: true,
            wiener_exact_threshold: 4096,
            roots: RootPolicy::QueryOnly,
            adjust: true,
            keep_trace: false,
            steiner: SteinerAlgorithm::default(),
            node_weighted_steiner: false,
            deadline: None,
            kernel: true,
            batch: true,
            trace: TraceContext::default(),
        }
    }
}

/// One `(root, λ)` candidate inspected by the solver.
#[derive(Debug, Clone)]
pub struct CandidateRecord {
    /// Root vertex `r` of this candidate.
    pub root: NodeId,
    /// λ used for the reweighting.
    pub lambda: f64,
    /// Number of vertices of the candidate connector.
    pub size: usize,
    /// `A(H, r)` (Lemma 1 proxy objective).
    pub a_value: u64,
    /// Exact `W(G[H])`, if the candidate was small enough to evaluate.
    pub wiener: Option<u64>,
}

/// Solution returned by [`WienerSteiner::solve`].
#[derive(Debug, Clone)]
pub struct WsqSolution {
    /// The connector (vertex set inducing a connected subgraph ⊇ Q).
    pub connector: Connector,
    /// Exact Wiener index of the connector.
    pub wiener_index: u64,
    /// Root `r` of the winning candidate.
    pub best_root: NodeId,
    /// λ of the winning candidate.
    pub best_lambda: f64,
    /// Number of `(root, λ)` candidates inspected.
    pub num_candidates: usize,
    /// Full candidate trace (only when [`WsqConfig::keep_trace`]).
    pub trace: Vec<CandidateRecord>,
}

/// The `ws-q` solver. Borrows the graph; one instance can serve many
/// queries.
#[derive(Debug, Clone)]
pub struct WienerSteiner<'g> {
    graph: &'g Graph,
    config: WsqConfig,
}

impl<'g> WienerSteiner<'g> {
    /// Solver with the paper's default (parameter-free) configuration.
    pub fn new(graph: &'g Graph) -> Self {
        WienerSteiner {
            graph,
            config: WsqConfig::default(),
        }
    }

    /// Solver with an explicit configuration.
    pub fn with_config(graph: &'g Graph, config: WsqConfig) -> Self {
        assert!(config.beta > 0.0, "beta must be positive");
        WienerSteiner { graph, config }
    }

    /// The active configuration.
    pub fn config(&self) -> &WsqConfig {
        &self.config
    }

    /// Computes an approximately minimum Wiener connector for `q`.
    ///
    /// Errors on an empty query, out-of-range vertices, or query vertices
    /// spanning multiple components.
    pub fn solve(&self, q: &[NodeId]) -> Result<WsqSolution> {
        self.solve_pooled(q, &WorkspacePool::new())
    }

    /// Like [`WienerSteiner::solve`], but leasing all BFS buffers from
    /// `pool` instead of allocating per call — the entry point
    /// [`QueryEngine`](crate::engine::QueryEngine) uses to amortize
    /// workspace allocations across queries.
    pub fn solve_pooled(&self, q: &[NodeId], pool: &WorkspacePool) -> Result<WsqSolution> {
        self.solve_pooled_shared(q, pool, None)
    }

    /// Like [`WienerSteiner::solve_pooled`], but consuming per-root
    /// distance arrays from `shared` when they are available — the
    /// cross-request coalescing path, where one multi-source sweep served
    /// the roots of *several* concurrent queries
    /// ([`QueryEngine::solve_group`](crate::engine::QueryEngine::solve_group)).
    ///
    /// `shared` maps root vertices to distance arrays produced by the same
    /// [`multi_source_distances`] kernel the solver would run itself; MS-BFS
    /// lanes are independent, so the arrays are bit-identical regardless of
    /// which other roots shared the sweep, and connectors are bit-identical
    /// with or without `shared` (pinned by
    /// `shared_root_distances_yield_identical_connectors`). Roots missing
    /// from the map — or any batch the map does not fully cover — fall back
    /// to the solver's own sweep.
    pub fn solve_pooled_shared(
        &self,
        q: &[NodeId],
        pool: &WorkspacePool,
        shared: Option<&SharedRootDists>,
    ) -> Result<WsqSolution> {
        let g = self.graph;
        let q = normalize_query(g, q)?;
        if q.len() == 1 {
            return Ok(WsqSolution {
                connector: Connector::new_unchecked(g, q.clone()),
                wiener_index: 0,
                best_root: q[0],
                best_lambda: 1.0,
                num_candidates: 1,
                trace: Vec::new(),
            });
        }

        let lambdas = lambda_grid(g.num_nodes(), self.config.beta);
        let roots: Vec<NodeId> = match self.config.roots {
            RootPolicy::QueryOnly => q.clone(),
            RootPolicy::AllVertices => g.nodes().collect(),
        };

        let use_batch = self.config.batch && roots.len() > 1;
        // Feasibility: all query vertices in one component, checked from
        // q[0]. Under the batched QueryOnly sweep the check is folded
        // into the first multi-source batch below (lane 0 *is* q[0], so
        // it costs nothing); every other configuration pays one BFS here.
        let feasibility_folded = use_batch && matches!(self.config.roots, RootPolicy::QueryOnly);
        if !feasibility_folded {
            let span = self.config.trace.span("feasibility");
            let infeasible = if g.is_weighted() {
                let mut ws = pool.lease_delta();
                let dist = ws.run(g, q[0]);
                q.iter().any(|&v| dist[v as usize] == INF_DIST)
            } else {
                let mut ws = pool.lease();
                let dist = if self.config.kernel {
                    ws.run_auto(g, q[0])
                } else {
                    ws.run(g, q[0])
                };
                q.iter().any(|&v| dist[v as usize] == INF_DIST)
            };
            drop(span);
            if infeasible {
                return Err(CoreError::QueryNotConnectable);
            }
        }

        let mut candidates: Vec<CandidateRecord> = Vec::new();
        let mut best: Option<(CandidateRecord, Vec<NodeId>)> = None;

        // Stage accounting for the `root_sweep` span: multi-source sweeps
        // run locally (prefetch-covered batches run none), lanes packed
        // into them, kernel BFS levels expanded, and `AdjustDistances`
        // time accumulated across sweep workers (reported as a counter —
        // the adjusts run interleaved on several threads, so a child span
        // would overlap its siblings).
        let traced = self.config.trace.enabled();
        let sweep_start = traced.then(Instant::now);
        let mut local_sweeps = 0u64;
        let mut local_lanes = 0u64;
        let mut kernel_levels_base = 0u64;
        let adjust_acc = AtomicU64::new(0);
        let adjust_us = traced.then_some(&adjust_acc);

        // The candidate stream: identical root order (and therefore
        // identical records) whether the per-root distances come from
        // ⌈|roots|/64⌉ shared multi-source sweeps or one BFS per root.
        let mut all: Vec<EvaluatedCandidate> = Vec::new();
        let mut ms: Option<MsDistWorkspace<'_>> = None;
        if use_batch {
            // The multi-source workspace is leased lazily: when `shared`
            // covers every batch (the fully coalesced case) no sweep runs
            // here at all.
            for (bi, batch) in roots.chunks(MS_BFS_LANES).enumerate() {
                // Cooperative deadline between batches; the first batch
                // always runs so a feasible connector is still produced.
                if !all.is_empty() && past_deadline(&self.config) {
                    break;
                }
                // Use the prefetched arrays only when they cover the whole
                // batch — a partially covered batch recomputes everything,
                // keeping the sweep accounting simple (in practice the
                // coalescer prefetches all roots or none).
                let dists: Vec<Arc<Vec<u32>>> = match shared {
                    Some(map) if batch.iter().all(|r| map.contains_key(r)) => batch
                        .iter()
                        .map(|r| Arc::clone(map.get(r).expect("checked above")))
                        .collect(),
                    _ => {
                        if ms.is_none() {
                            let leased = MsDistWorkspace::lease(pool, g);
                            // Pooled workspaces carry counters across
                            // leases; report this solve's delta only.
                            kernel_levels_base = leased.expanded();
                            ms = Some(leased);
                        }
                        let ms = ms.as_mut().expect("leased above");
                        local_sweeps += 1;
                        local_lanes += batch.len() as u64;
                        batched_root_distances_dispatch(g, batch, ms)
                            .into_iter()
                            .map(Arc::new)
                            .collect()
                    }
                };
                if bi == 0 && feasibility_folded {
                    // The check rides lane 0 of the sweep that just ran,
                    // so the marginal cost — and the span — is ~zero.
                    let span = self.config.trace.span("feasibility");
                    let infeasible = q.iter().any(|&v| dists[0][v as usize] == INF_DIST);
                    drop(span);
                    if infeasible {
                        return Err(CoreError::QueryNotConnectable);
                    }
                }
                all.extend(self.sweep_roots(
                    g,
                    &q,
                    batch,
                    Some(&dists),
                    &lambdas,
                    pool,
                    adjust_us,
                )?);
            }
        } else {
            all = self.sweep_roots(g, &q, &roots, None, &lambdas, pool, adjust_us)?;
        }
        if let Some(t0) = sweep_start {
            let kernel_levels = ms.as_ref().map_or(0, |w| w.expanded() - kernel_levels_base);
            self.config.trace.record_with(
                "root_sweep",
                t0,
                Instant::now(),
                vec![
                    ("roots", roots.len() as u64),
                    ("sweeps", local_sweeps),
                    ("lanes", local_lanes),
                    ("kernel_levels", kernel_levels),
                    ("candidates", all.len() as u64),
                    ("adjust_us", adjust_acc.load(Ordering::Relaxed)),
                ],
            );
        }
        drop(ms);

        // Remark 1, engineered: Lemma 1 gives A(H,r)/2 ≤ W(H) ≤ A(H,r), so
        // a candidate with A > 2 · min_A cannot have a smaller Wiener index
        // than the argmin-A candidate — only the others need the (much more
        // expensive) exact evaluation. Candidates above the size threshold
        // fall back to the A-proxy, as in the paper's worst-case analysis.
        let mut eval_span = self.config.trace.span("evaluate");
        let mut exact_evals = 0u64;
        let min_a = all.iter().map(|(rec, _)| rec.a_value).min().unwrap_or(0);
        for (rec, nodes) in &mut all {
            // Past the deadline, fall back to the A-proxy for the remaining
            // candidates (the mixed Some/None comparison below stays valid).
            if past_deadline(&self.config) {
                break;
            }
            if rec.a_value <= 2 * min_a && nodes.len() <= self.config.wiener_exact_threshold {
                let sub = g.induced(nodes)?;
                // When the solver itself was asked to stay sequential
                // (batch workers already use every core), keep the Wiener
                // evaluation sequential too — the parallel kernel would
                // nest one thread pool per worker.
                rec.wiener = if self.config.parallel {
                    wiener::wiener_index(sub.graph())
                } else {
                    wiener::wiener_index_sequential(sub.graph())
                };
                exact_evals += 1;
            }
        }
        let total_candidates = all.len();
        for (rec, nodes) in all {
            let better = match &best {
                None => true,
                Some((cur, _)) => {
                    // Exact values win over proxies; among proxies use A.
                    match (rec.wiener, cur.wiener) {
                        (Some(a), Some(b)) => a < b,
                        (Some(a), None) => a < cur.a_value,
                        (None, Some(b)) => rec.a_value / 2 < b && rec.a_value < cur.a_value,
                        (None, None) => rec.a_value < cur.a_value,
                    }
                }
            };
            if better {
                best = Some((rec.clone(), nodes));
            }
            if self.config.keep_trace {
                candidates.push(rec);
            }
        }
        let num_candidates = total_candidates;

        let (best_rec, best_nodes) =
            best.expect("at least one (root, λ) candidate is always produced");
        let connector = Connector::new_unchecked(g, best_nodes);
        let wiener_index = match best_rec.wiener {
            Some(w) => w,
            // Same sequential contract as the candidate evaluations
            // above: a non-parallel solve must not spawn a pool here.
            None => connector.wiener_index_with(g, !self.config.parallel)?,
        };
        eval_span.counter("exact_evals", exact_evals);
        drop(eval_span);
        Ok(WsqSolution {
            connector,
            wiener_index,
            best_root: best_rec.root,
            best_lambda: best_rec.lambda,
            num_candidates,
            trace: candidates,
        })
    }

    /// Fans the λ sweep for `roots` out across scoped worker threads
    /// (§6.6's embarrassing root parallelism). `dists`, when present,
    /// carries precomputed per-root distance arrays aligned with `roots`
    /// (the batched path); chunk boundaries split both in lockstep, and
    /// the merge keeps root order, so threading never changes the
    /// candidate stream.
    #[allow(clippy::too_many_arguments)]
    fn sweep_roots(
        &self,
        g: &Graph,
        q: &[NodeId],
        roots: &[NodeId],
        dists: Option<&[Arc<Vec<u32>>]>,
        lambdas: &[f64],
        pool: &WorkspacePool,
        adjust_us: Option<&AtomicU64>,
    ) -> Result<Vec<EvaluatedCandidate>> {
        let threads = if self.config.parallel {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .min(roots.len())
        } else {
            1
        };
        if threads <= 1 {
            return run_roots(g, &self.config, q, roots, dists, lambdas, pool, adjust_us);
        }
        let chunk = roots.len().div_ceil(threads);
        let results: Vec<Result<Vec<EvaluatedCandidate>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = roots
                .chunks(chunk)
                .enumerate()
                .map(|(i, chunk_roots)| {
                    let dists_chunk = dists.map(|d| &d[i * chunk..i * chunk + chunk_roots.len()]);
                    let (q, lambdas, cfg) = (q, lambdas, &self.config);
                    scope.spawn(move || {
                        run_roots(
                            g,
                            cfg,
                            q,
                            chunk_roots,
                            dists_chunk,
                            lambdas,
                            pool,
                            adjust_us,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        let mut out = Vec::new();
        for r in results {
            out.extend(r?);
        }
        Ok(out)
    }
}

/// Distances from every root, batched through the multi-source BFS
/// kernel: `⌈|roots|/64⌉` shared CSR sweeps, each serving up to
/// [`MS_BFS_LANES`] roots at once, gathered into one per-root array each.
/// Bit-identical to per-root [`BfsWorkspace::run`]
/// (mwc_graph::traversal::bfs::BfsWorkspace::run) distances — this is
/// Algorithm 1 line 1 as the batched `ws-q` path executes it, exposed so
/// the `wsq_batched` bench section measures exactly the solver's code.
pub fn batched_root_distances(
    g: &Graph,
    roots: &[NodeId],
    ws: &mut MsBfsWorkspace,
) -> Vec<Vec<u32>> {
    multi_source_distances(g, roots, ws)
}

/// Pooled multi-source distance workspace, dispatched on the graph's
/// weightedness: MS-BFS lanes for unweighted graphs, batched
/// delta-stepping lanes ([`MsDeltaWorkspace`]
/// (mwc_graph::traversal::delta::MsDeltaWorkspace)) for weighted ones.
/// Both kernels produce per-root arrays bit-identical to their sequential
/// references, so the batched solver and the engine's cross-request
/// prefetch can share arrays regardless of which leased the workspace.
pub enum MsDistWorkspace<'p> {
    /// Unweighted graphs: 64-lane multi-source BFS.
    Bfs(PooledMsWorkspace<'p>),
    /// Weighted graphs: 64-lane multi-source delta-stepping.
    Delta(PooledMsDeltaWorkspace<'p>),
}

impl<'p> MsDistWorkspace<'p> {
    /// Leases the kernel matching `g` from `pool`.
    pub fn lease(pool: &'p WorkspacePool, g: &Graph) -> Self {
        if g.is_weighted() {
            MsDistWorkspace::Delta(pool.lease_multi_delta())
        } else {
            MsDistWorkspace::Bfs(pool.lease_multi())
        }
    }

    /// Cumulative work counter for tracing: BFS levels or delta-stepping
    /// buckets expanded over the workspace's lifetime.
    pub fn expanded(&self) -> u64 {
        match self {
            MsDistWorkspace::Bfs(ws) => ws.levels_expanded(),
            MsDistWorkspace::Delta(ws) => ws.buckets_expanded(),
        }
    }
}

/// [`batched_root_distances`] with kernel dispatch: weighted graphs route
/// through the batched delta-stepping kernel
/// ([`multi_source_delta_distances`]), unweighted ones through MS-BFS.
/// The solver's batched sweep and
/// [`QueryEngine::solve_group`](crate::engine::QueryEngine::solve_group)'s
/// prefetch both go through here, so coalesced and uncoalesced solves run
/// the same kernel on the same graph.
pub fn batched_root_distances_dispatch(
    g: &Graph,
    roots: &[NodeId],
    ws: &mut MsDistWorkspace<'_>,
) -> Vec<Vec<u32>> {
    match ws {
        MsDistWorkspace::Bfs(ms) => multi_source_distances(g, roots, ms),
        MsDistWorkspace::Delta(ms) => multi_source_delta_distances(g, roots, ms),
    }
}

/// Per-root distance arrays shared *across* queries: root vertex →
/// distances-from-root, produced by the same [`multi_source_distances`]
/// kernel the batched solver runs itself. Built by
/// [`QueryEngine::solve_group`](crate::engine::QueryEngine::solve_group)
/// from the union of all coalesced queries' roots and consumed by
/// [`WienerSteiner::solve_pooled_shared`]; the `Arc`s let many concurrent
/// solves read one array without copying.
pub type SharedRootDists = HashMap<NodeId, Arc<Vec<u32>>>;

/// Convenience entry point with default configuration.
pub fn minimum_wiener_connector(g: &Graph, q: &[NodeId]) -> Result<WsqSolution> {
    WienerSteiner::new(g).solve(q)
}

/// Validates and canonicalizes a query set: sorted, deduplicated,
/// non-empty, in range. Shared by every solver and baseline.
pub fn normalize_query(g: &Graph, q: &[NodeId]) -> Result<Vec<NodeId>> {
    if q.is_empty() {
        return Err(CoreError::EmptyQuery);
    }
    let mut q: Vec<NodeId> = q.to_vec();
    q.sort_unstable();
    q.dedup();
    for &v in &q {
        g.check_node(v)?;
    }
    Ok(q)
}

/// The λ grid: powers of `(1 + β)` covering `[1/√2, √n]` — the range
/// Lemma 3 guarantees contains the optimal λ, so some tried value is
/// within a `(1 + β)` factor of it.
pub(crate) fn lambda_grid(n: usize, beta: f64) -> Vec<f64> {
    let base = 1.0 + beta;
    let lo = std::f64::consts::FRAC_1_SQRT_2;
    let hi = (n.max(2) as f64).sqrt();
    let t_min = (lo.ln() / base.ln()).floor() as i32;
    let t_max = (hi.ln() / base.ln()).ceil() as i32;
    (t_min..=t_max).map(|t| base.powi(t)).collect()
}

/// A candidate's record plus its vertex set.
type EvaluatedCandidate = (CandidateRecord, Vec<NodeId>);

/// Whether the configured deadline (if any) has passed.
fn past_deadline(cfg: &WsqConfig) -> bool {
    cfg.deadline.is_some_and(|d| Instant::now() >= d)
}

/// Worker: full λ sweep for a chunk of roots, returning evaluated
/// candidates.
///
/// `dists`, when present, is the batched path's precomputed per-root
/// distance slice (aligned with `roots`); otherwise each root pays one
/// BFS here. Either way the BFS-tree parents feeding `AdjustDistances`
/// are derived on demand from the distances by the deterministic
/// [`canonical_parent`] rule — a pure function of the (kernel-invariant)
/// distance array, so every configuration grafts identical paths.
#[allow(clippy::too_many_arguments)]
fn run_roots(
    g: &Graph,
    cfg: &WsqConfig,
    q: &[NodeId],
    roots: &[NodeId],
    dists: Option<&[Arc<Vec<u32>>]>,
    lambdas: &[f64],
    pool: &WorkspacePool,
    adjust_us: Option<&AtomicU64>,
) -> Result<Vec<EvaluatedCandidate>> {
    let mut out = Vec::with_capacity(roots.len() * lambdas.len());
    // Per-root distances come from the kernel matching the graph:
    // delta-stepping on weighted graphs, BFS otherwise.
    let mut ws = (!g.is_weighted()).then(|| pool.lease());
    let mut delta = g.is_weighted().then(|| pool.lease_delta());
    let mut terminals: Vec<NodeId> = Vec::with_capacity(q.len() + 1);
    for (i, &r) in roots.iter().enumerate() {
        // Cooperative deadline: stop sweeping further roots, but never
        // before this worker contributed at least one candidate.
        if !out.is_empty() && past_deadline(cfg) {
            break;
        }
        let dist_r: &[u32] = match dists {
            Some(d) => d[i].as_slice(),
            None => match delta.as_mut() {
                Some(dw) => dw.run(g, r),
                None => {
                    let ws = ws.as_mut().expect("unweighted graphs lease a BFS workspace");
                    if cfg.kernel {
                        ws.run_auto(g, r)
                    } else {
                        ws.run(g, r)
                    }
                }
            },
        };
        // Terminals: Q ∪ {r} (identical to Q under RootPolicy::QueryOnly).
        terminals.clear();
        terminals.extend_from_slice(q);
        if !q.contains(&r) {
            if dist_r[q[0] as usize] == INF_DIST {
                continue; // root in a different component: useless
            }
            terminals.push(r);
        }
        for &lambda in lambdas {
            if !out.is_empty() && past_deadline(cfg) {
                break;
            }
            let weight = |u: NodeId, v: NodeId| {
                lambda + dist_r[u as usize].max(dist_r[v as usize]) as f64 / lambda
            };
            let tree = if cfg.node_weighted_steiner {
                // Problem 4 solved directly: vertex cost λ + d_G(r, u)/λ.
                let node_cost = |u: NodeId| {
                    let d = dist_r[u as usize];
                    let d = if d == INF_DIST {
                        g.num_nodes() as u32
                    } else {
                        d
                    };
                    lambda + d as f64 / lambda
                };
                klein_ravi(g, &terminals, node_cost)?
            } else {
                steiner_tree(cfg.steiner, g, &terminals, weight)?
            };
            let final_tree = if cfg.adjust {
                let t0 = adjust_us.map(|_| Instant::now());
                let adjusted =
                    adjust_distances_with(g, &tree, r, dist_r, |v| canonical_parent(g, dist_r, v));
                if let (Some(acc), Some(t0)) = (adjust_us, t0) {
                    acc.fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
                }
                adjusted
            } else {
                tree
            };
            let nodes = final_tree.nodes;
            let a_value = evaluate_a(g, &nodes, r, pool, cfg.kernel)?;
            out.push((
                CandidateRecord {
                    root: r,
                    lambda,
                    size: nodes.len(),
                    a_value,
                    wiener: None,
                },
                nodes,
            ));
        }
    }
    Ok(out)
}

/// Computes `A(G[S], r)` — one BFS inside the induced subgraph. Shared
/// with the approximate solver (`wsq_approx`), which evaluates the same
/// objective on its candidates.
pub(crate) fn evaluate_a(
    g: &Graph,
    nodes: &[NodeId],
    r: NodeId,
    pool: &WorkspacePool,
    kernel: bool,
) -> Result<u64> {
    let sub = g.induced(nodes)?;
    let r_local = sub.to_local(r).expect("root belongs to its candidate");
    let (sum, reached) = if sub.graph().is_weighted() {
        let mut ws = pool.lease_delta();
        ws.run(sub.graph(), r_local);
        ws.last_run_distance_sum()
    } else {
        let mut ws = pool.lease();
        if kernel {
            ws.run_auto(sub.graph(), r_local);
        } else {
            ws.run(sub.graph(), r_local);
        }
        ws.last_run_distance_sum()
    };
    debug_assert_eq!(
        reached,
        sub.num_nodes(),
        "candidate must induce a connected subgraph"
    );
    Ok(sum * sub.num_nodes() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::generators::{karate::karate_club, structured};
    use rand::{Rng, SeedableRng};

    #[test]
    fn lambda_grid_covers_lemma3_range() {
        for n in [2usize, 10, 100, 10_000, 1_000_000] {
            let grid = lambda_grid(n, 1.0);
            let lo = std::f64::consts::FRAC_1_SQRT_2;
            let hi = (n as f64).sqrt();
            assert!(grid.first().unwrap() <= &lo, "n={n}");
            assert!(grid.last().unwrap() >= &hi, "n={n}");
            // Geometric spacing.
            for w in grid.windows(2) {
                assert!((w[1] / w[0] - 2.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn single_query_vertex_is_trivial() {
        let g = structured::path(5);
        let sol = minimum_wiener_connector(&g, &[3]).unwrap();
        assert_eq!(sol.connector.vertices(), &[3]);
        assert_eq!(sol.wiener_index, 0);
    }

    #[test]
    fn two_query_vertices_on_a_path() {
        let g = structured::path(7);
        let sol = minimum_wiener_connector(&g, &[0, 6]).unwrap();
        // Only one connector exists: the whole path.
        assert_eq!(sol.connector.len(), 7);
        assert_eq!(sol.wiener_index, (343 - 7) / 6);
    }

    #[test]
    fn rejects_bad_queries() {
        let g = structured::path(4);
        assert!(matches!(
            minimum_wiener_connector(&g, &[]),
            Err(CoreError::EmptyQuery)
        ));
        assert!(minimum_wiener_connector(&g, &[9]).is_err());
        let split = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(matches!(
            minimum_wiener_connector(&split, &[0, 3]),
            Err(CoreError::QueryNotConnectable)
        ));
    }

    #[test]
    fn solution_contains_query_and_is_connected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(51);
        for _ in 0..10 {
            let g = mwc_graph::generators::barabasi_albert(200, 2, &mut rng);
            let q: Vec<NodeId> = (0..5).map(|_| rng.gen_range(0..200)).collect();
            let sol = minimum_wiener_connector(&g, &q).unwrap();
            assert!(sol.connector.contains_all(&q));
            // Connector::new validates connectivity; re-wrap to assert it.
            assert!(Connector::new(&g, sol.connector.vertices()).is_ok());
            assert_eq!(sol.wiener_index, sol.connector.wiener_index(&g).unwrap());
        }
    }

    #[test]
    fn figure2_instance_beats_steiner_tree() {
        // On the Fig 2 graph with Q = the line, st returns W = 165 while the
        // optimum is 142; ws-q must include at least one root and do
        // strictly better than the bare line.
        let g = structured::figure2_graph(10);
        let q: Vec<NodeId> = (0..10).collect();
        let sol = minimum_wiener_connector(&g, &q).unwrap();
        assert!(
            sol.wiener_index < 165,
            "ws-q should beat the Steiner tree (got {})",
            sol.wiener_index
        );
        assert!(sol.connector.len() > 10, "some root vertex should be added");
    }

    #[test]
    fn karate_dc_query_includes_bridging_leaders() {
        // Fig 1 (left): Q = {12, 25, 26, 30} (paper ids) spans both factions;
        // the minimum Wiener connector adds the leaders 1, 34 and bridge 32.
        let g = karate_club();
        let q = mwc_graph::generators::karate::from_paper_ids(&[12, 25, 26, 30]);
        let sol = minimum_wiener_connector(&g, &q).unwrap();
        assert!(sol.connector.contains_all(&q));
        // The solution should stay small and pick up central vertices.
        assert!(sol.connector.len() <= 10, "size {}", sol.connector.len());
        let picks: Vec<NodeId> = sol
            .connector
            .vertices()
            .iter()
            .copied()
            .filter(|v| !q.contains(v))
            .collect();
        // At least one of the leaders (0 or 33) must appear.
        assert!(
            picks.contains(&0) || picks.contains(&33),
            "expected a community leader among {picks:?}"
        );
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(61);
        let g = mwc_graph::generators::barabasi_albert(300, 3, &mut rng);
        let q: Vec<NodeId> = vec![7, 63, 155, 240, 299];
        let seq = WienerSteiner::with_config(
            &g,
            WsqConfig {
                parallel: false,
                ..WsqConfig::default()
            },
        )
        .solve(&q)
        .unwrap();
        let par = WienerSteiner::with_config(
            &g,
            WsqConfig {
                parallel: true,
                ..WsqConfig::default()
            },
        )
        .solve(&q)
        .unwrap();
        assert_eq!(seq.wiener_index, par.wiener_index);
        assert_eq!(seq.connector.vertices(), par.connector.vertices());
    }

    #[test]
    fn trace_records_all_candidates() {
        let g = karate_club();
        let q = vec![0u32, 33];
        let solver = WienerSteiner::with_config(
            &g,
            WsqConfig {
                keep_trace: true,
                parallel: false,
                ..WsqConfig::default()
            },
        );
        let sol = solver.solve(&q).unwrap();
        let expected = 2 * lambda_grid(34, 1.0).len();
        assert_eq!(sol.trace.len(), expected);
        assert_eq!(sol.num_candidates, expected);
        let min_a = sol.trace.iter().map(|r| r.a_value).min().unwrap();
        for rec in &sol.trace {
            assert!(q.contains(&rec.root));
            assert!(rec.size >= 2);
            // Exact Wiener evaluated exactly for the Lemma-1 survivors.
            assert_eq!(rec.wiener.is_some(), rec.a_value <= 2 * min_a);
        }
        assert!(sol.trace.iter().any(|r| r.wiener.is_some()));
    }

    #[test]
    fn adjust_ablation_runs() {
        let g = karate_club();
        let q = vec![11u32, 24, 25, 29];
        let no_adjust = WienerSteiner::with_config(
            &g,
            WsqConfig {
                adjust: false,
                parallel: false,
                ..WsqConfig::default()
            },
        )
        .solve(&q)
        .unwrap();
        assert!(no_adjust.connector.contains_all(&q));
    }

    #[test]
    fn all_vertices_root_policy_no_worse_on_small_graph() {
        let g = karate_club();
        let q = vec![11u32, 24, 25, 29];
        let query_only = minimum_wiener_connector(&g, &q).unwrap();
        let exhaustive = WienerSteiner::with_config(
            &g,
            WsqConfig {
                roots: RootPolicy::AllVertices,
                ..WsqConfig::default()
            },
        )
        .solve(&q)
        .unwrap();
        assert!(exhaustive.wiener_index <= query_only.wiener_index);
    }

    #[test]
    fn duplicate_query_vertices_are_merged() {
        let g = structured::path(6);
        let sol = minimum_wiener_connector(&g, &[2, 2, 4, 4]).unwrap();
        assert_eq!(sol.connector.vertices(), &[2, 3, 4]);
    }

    #[test]
    fn batch_toggle_yields_identical_connectors() {
        // The multi-source batched root sweep changes how distances are
        // produced, never what they are — and parents are a pure function
        // of distances — so connectors must be bit-identical with
        // batching on or off.
        let mut rng = rand::rngs::StdRng::seed_from_u64(73);
        let g = mwc_graph::generators::barabasi_albert(600, 3, &mut rng);
        for _ in 0..5 {
            let size = rng.gen_range(2..=6usize);
            let q: Vec<NodeId> = (0..size).map(|_| rng.gen_range(0..600)).collect();
            let on = WienerSteiner::with_config(
                &g,
                WsqConfig {
                    batch: true,
                    parallel: false,
                    ..WsqConfig::default()
                },
            )
            .solve(&q)
            .unwrap();
            let off = WienerSteiner::with_config(
                &g,
                WsqConfig {
                    batch: false,
                    parallel: false,
                    ..WsqConfig::default()
                },
            )
            .solve(&q)
            .unwrap();
            assert_eq!(on.connector.vertices(), off.connector.vertices(), "{q:?}");
            assert_eq!(on.wiener_index, off.wiener_index);
            assert_eq!(on.num_candidates, off.num_candidates);
            assert_eq!(
                (on.best_root, on.best_lambda),
                (off.best_root, off.best_lambda)
            );
        }
    }

    #[test]
    fn batch_parity_holds_with_all_vertices_roots() {
        // AllVertices spans multiple 64-lane batches on the karate club +
        // margin graph; the standalone feasibility path and the per-batch
        // sweeps must agree with the per-root path.
        let g = mwc_graph::generators::barabasi_albert(
            150,
            2,
            &mut rand::rngs::StdRng::seed_from_u64(79),
        );
        let q = vec![3u32, 77, 149];
        let mk = |batch: bool| {
            WienerSteiner::with_config(
                &g,
                WsqConfig {
                    roots: RootPolicy::AllVertices,
                    batch,
                    parallel: false,
                    ..WsqConfig::default()
                },
            )
            .solve(&q)
            .unwrap()
        };
        let on = mk(true);
        let off = mk(false);
        assert_eq!(on.connector.vertices(), off.connector.vertices());
        assert_eq!(on.wiener_index, off.wiener_index);
        assert_eq!(on.num_candidates, off.num_candidates);
    }

    #[test]
    fn batched_root_distances_match_per_root_bfs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(83);
        let g = mwc_graph::generators::barabasi_albert(500, 3, &mut rng);
        // 100 roots spans two 64-lane sweeps, with duplicates.
        let roots: Vec<NodeId> = (0..100).map(|i| (i * 7) % 500).collect();
        let mut ms = mwc_graph::traversal::bfs::MsBfsWorkspace::new();
        let dists = batched_root_distances(&g, &roots, &mut ms);
        assert_eq!(dists.len(), roots.len());
        let mut ws = mwc_graph::traversal::bfs::BfsWorkspace::new();
        for (i, &r) in roots.iter().enumerate() {
            assert_eq!(dists[i], ws.run(&g, r), "root {r}");
        }
    }

    #[test]
    fn shared_root_distances_yield_identical_connectors() {
        // The coalescing path hands the solver distance arrays computed by
        // a multi-source sweep over the union of *several* queries' roots.
        // Lanes are independent, so the connector must be bit-identical to
        // the solver computing its own sweeps.
        let mut rng = rand::rngs::StdRng::seed_from_u64(89);
        let g = mwc_graph::generators::barabasi_albert(400, 3, &mut rng);
        let mut ms = MsBfsWorkspace::new();
        for _ in 0..5 {
            let size = rng.gen_range(2..=5usize);
            let q: Vec<NodeId> = (0..size).map(|_| rng.gen_range(0..400)).collect();
            let q_norm = normalize_query(&g, &q).unwrap();
            // The union sweep: this query's roots plus unrelated ones, as
            // the coalescer would pack them.
            let mut union: Vec<NodeId> = q_norm.clone();
            union.extend((0..6).map(|_| rng.gen_range(0..400u32)));
            union.sort_unstable();
            union.dedup();
            let arrays = batched_root_distances(&g, &union, &mut ms);
            let shared: SharedRootDists = union
                .iter()
                .copied()
                .zip(arrays.into_iter().map(Arc::new))
                .collect();
            let solver = WienerSteiner::new(&g);
            let pool = WorkspacePool::new();
            let own = solver.solve_pooled(&q, &pool).unwrap();
            let coalesced = solver
                .solve_pooled_shared(&q, &pool, Some(&shared))
                .unwrap();
            assert_eq!(
                own.connector.vertices(),
                coalesced.connector.vertices(),
                "{q:?}"
            );
            assert_eq!(own.wiener_index, coalesced.wiener_index);
            assert_eq!(own.num_candidates, coalesced.num_candidates);
            assert_eq!(
                (own.best_root, own.best_lambda),
                (coalesced.best_root, coalesced.best_lambda)
            );
        }
    }

    #[test]
    fn partially_covered_shared_map_falls_back_to_own_sweep() {
        let g = karate_club();
        let q = vec![11u32, 24, 25, 29];
        // A map missing one of the roots: the batch recomputes, results
        // unchanged.
        let mut ms = MsBfsWorkspace::new();
        let partial: SharedRootDists = batched_root_distances(&g, &[11, 24], &mut ms)
            .into_iter()
            .map(Arc::new)
            .zip([11u32, 24])
            .map(|(d, r)| (r, d))
            .collect();
        let solver = WienerSteiner::new(&g);
        let pool = WorkspacePool::new();
        let own = solver.solve_pooled(&q, &pool).unwrap();
        let shared = solver
            .solve_pooled_shared(&q, &pool, Some(&partial))
            .unwrap();
        assert_eq!(own.connector.vertices(), shared.connector.vertices());
        assert_eq!(own.wiener_index, shared.wiener_index);
    }

    #[test]
    fn infeasible_query_is_rejected_with_batching_on_and_off() {
        let split = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        for batch in [true, false] {
            let solver = WienerSteiner::with_config(
                &split,
                WsqConfig {
                    batch,
                    ..WsqConfig::default()
                },
            );
            assert!(matches!(
                solver.solve(&[0, 3]),
                Err(CoreError::QueryNotConnectable)
            ));
        }
    }

    /// Deterministic weighted twin of `g`: every edge gets a weight in
    /// `1..=maxw` hashed from its endpoints.
    fn weighted_version(g: &Graph, maxw: u32) -> Graph {
        let edges: Vec<(NodeId, NodeId, u32)> = g
            .edges()
            .map(|(u, v)| {
                let h = (u as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ (v as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
                (u, v, (h % maxw as u64) as u32 + 1)
            })
            .collect();
        Graph::from_weighted_edges(g.num_nodes(), &edges).unwrap()
    }

    #[test]
    fn weighted_solves_are_toggle_invariant() {
        // On weighted graphs every distance comes from delta-stepping
        // (batched or single-source) — and delta-stepping is pinned
        // bit-identical to Dijkstra — so batching, parallelism, and
        // coalesced shared distances must all leave the connector fixed.
        let mut rng = rand::rngs::StdRng::seed_from_u64(97);
        let base = mwc_graph::generators::barabasi_albert(400, 3, &mut rng);
        let g = weighted_version(&base, 9);
        for _ in 0..4 {
            let q: Vec<NodeId> = (0..4).map(|_| rng.gen_range(0..400)).collect();
            let reference = WienerSteiner::with_config(
                &g,
                WsqConfig {
                    batch: false,
                    parallel: false,
                    ..WsqConfig::default()
                },
            )
            .solve(&q)
            .unwrap();
            for (batch, parallel) in [(true, false), (true, true), (false, true)] {
                let sol = WienerSteiner::with_config(
                    &g,
                    WsqConfig {
                        batch,
                        parallel,
                        ..WsqConfig::default()
                    },
                )
                .solve(&q)
                .unwrap();
                assert_eq!(
                    sol.connector.vertices(),
                    reference.connector.vertices(),
                    "batch={batch} parallel={parallel} {q:?}"
                );
                assert_eq!(sol.wiener_index, reference.wiener_index);
                assert_eq!(sol.num_candidates, reference.num_candidates);
            }
            // The coalescing path: shared arrays from the weighted batched
            // kernel, exactly as solve_group prefetches them.
            let q_norm = normalize_query(&g, &q).unwrap();
            let pool = WorkspacePool::new();
            let mut ws = MsDistWorkspace::lease(&pool, &g);
            let arrays = batched_root_distances_dispatch(&g, &q_norm, &mut ws);
            drop(ws);
            let shared: SharedRootDists = q_norm
                .iter()
                .copied()
                .zip(arrays.into_iter().map(Arc::new))
                .collect();
            let coalesced = WienerSteiner::new(&g)
                .solve_pooled_shared(&q, &pool, Some(&shared))
                .unwrap();
            assert_eq!(
                coalesced.connector.vertices(),
                reference.connector.vertices()
            );
            assert_eq!(coalesced.wiener_index, reference.wiener_index);
            // The reported Wiener index is the weighted one.
            assert!(reference.connector.contains_all(&q_norm));
            assert_eq!(
                reference.wiener_index,
                reference.connector.wiener_index(&g).unwrap()
            );
        }
    }

    #[test]
    fn weight_one_graph_solves_like_its_unweighted_twin() {
        // A weighted graph whose weights are all 1 must produce exactly
        // the unweighted solve: delta-stepping degenerates to BFS order.
        let mut rng = rand::rngs::StdRng::seed_from_u64(101);
        let base = mwc_graph::generators::barabasi_albert(300, 2, &mut rng);
        let g1 = weighted_version(&base, 1);
        assert!(g1.is_weighted());
        for _ in 0..3 {
            let q: Vec<NodeId> = (0..4).map(|_| rng.gen_range(0..300)).collect();
            let w = WienerSteiner::new(&g1).solve(&q).unwrap();
            let u = WienerSteiner::new(&base).solve(&q).unwrap();
            assert_eq!(w.connector.vertices(), u.connector.vertices(), "{q:?}");
            assert_eq!(w.wiener_index, u.wiener_index);
        }
    }

    #[test]
    fn kernel_toggle_yields_identical_connectors() {
        // The direction-optimizing kernel only changes scan order, never
        // distances — connectors must be bit-identical with it on or off.
        let mut rng = rand::rngs::StdRng::seed_from_u64(71);
        let g = mwc_graph::generators::barabasi_albert(500, 3, &mut rng);
        for _ in 0..5 {
            let q: Vec<NodeId> = (0..4).map(|_| rng.gen_range(0..500)).collect();
            let on = WienerSteiner::with_config(
                &g,
                WsqConfig {
                    kernel: true,
                    parallel: false,
                    ..WsqConfig::default()
                },
            )
            .solve(&q)
            .unwrap();
            let off = WienerSteiner::with_config(
                &g,
                WsqConfig {
                    kernel: false,
                    parallel: false,
                    ..WsqConfig::default()
                },
            )
            .solve(&q)
            .unwrap();
            assert_eq!(on.connector.vertices(), off.connector.vertices(), "{q:?}");
            assert_eq!(on.wiener_index, off.wiener_index);
            assert_eq!(on.num_candidates, off.num_candidates);
        }
    }
}
