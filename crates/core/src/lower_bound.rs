//! Certified lower bounds on the optimal Wiener index.
//!
//! §5 of the paper derives lower bounds from integer programs solved with
//! Gurobi. A commercial MIP solver is outside this reproduction's scope
//! (see DESIGN.md §3 item 4); instead this module provides a *certified
//! combinatorial* lower bound playing the role of the solver's `GL` in
//! Table 2, with a proof sketch below. On graphs with ≤ 64 vertices the
//! exact enumerator (`crate::exact`) supplies `GL = GU = OPT` instead.
//!
//! **Bound.** Let `Q` be the query set, `d_G` distances in the input graph,
//! and `S ⊇ Q` any connector. Then
//!
//! ```text
//! W(G[S]) ≥ Σ_{{s,t} ⊆ Q} d_G(s, t)  +  [ C(|S|, 2) − C(|Q|, 2) ]
//! ```
//!
//! because induced distances dominate `d_G` for query pairs and every other
//! pair contributes ≥ 1. Moreover `|S| ≥ k_min`, the maximum of three
//! certified cardinality bounds:
//!
//! 1. `|Q|` (trivially);
//! 2. `max_pair + 1` where `max_pair = max_{{s,t} ⊆ Q} d_G(s, t)` — `S`
//!    contains an `s`–`t` path with `d_G(s,t) + 1` distinct vertices;
//! 3. `⌈mehlhorn_edges / 2⌉ + 1` — any connector `S` spans `Q`, so a
//!    spanning tree of `G[S]` is a Steiner tree with `|S| − 1 ≥ OPT_st`
//!    edges, and Mehlhorn's tree has at most `2 · OPT_st` edges.
//!
//! The right-hand side is nondecreasing in `|S|`, so substituting `k_min`
//! yields a bound valid for every feasible `S`.

use mwc_graph::traversal::bfs::BfsWorkspace;
use mwc_graph::{Graph, NodeId, INF_DIST};

use crate::error::{CoreError, Result};
use crate::steiner::mehlhorn_steiner;
use crate::wsq::normalize_query;

/// Components of the certified lower bound, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LowerBound {
    /// `Σ_{{s,t} ⊆ Q} d_G(s, t)` — the query-pair distance mass.
    pub query_pair_sum: u64,
    /// `max_{{s,t} ⊆ Q} d_G(s, t)`.
    pub max_pair_distance: u32,
    /// The implied minimum connector cardinality `k_min`.
    pub min_cardinality: usize,
    /// The final certified bound.
    pub value: u64,
}

/// Computes the certified lower bound for `q` in `g` (`|Q|` BFS runs plus
/// one Mehlhorn Steiner run for the cardinality bound).
///
/// Errors if the query is empty/invalid or spans multiple components.
pub fn certified_lower_bound(g: &Graph, q: &[NodeId]) -> Result<LowerBound> {
    let q = normalize_query(g, q)?;
    let mut ws = BfsWorkspace::new();
    let mut pair_sum = 0u64;
    let mut max_pair = 0u32;
    for (i, &s) in q.iter().enumerate() {
        let dist = ws.run(g, s);
        for &t in &q[i + 1..] {
            let d = dist[t as usize];
            if d == INF_DIST {
                return Err(CoreError::QueryNotConnectable);
            }
            pair_sum += d as u64;
            max_pair = max_pair.max(d);
        }
    }
    // Steiner-based cardinality bound: |S| - 1 ≥ OPT_st ≥ mehlhorn/2.
    let steiner_edges = mehlhorn_steiner(g, &q, |_, _| 1.0)?.edges.len();
    let k_steiner = steiner_edges.div_ceil(2) + 1;
    let k_min = q.len().max(max_pair as usize + 1).max(k_steiner);
    let pairs = |k: usize| (k as u64) * (k as u64 - 1) / 2;
    let value = pair_sum + pairs(k_min) - pairs(q.len());
    Ok(LowerBound {
        query_pair_sum: pair_sum,
        max_pair_distance: max_pair,
        min_cardinality: k_min,
        value,
    })
}

/// The Table 2 error interval for a solution of value `wsq` against bounds
/// `gl ≤ OPT ≤ gu`: `[(wsq − gu)/gu, (wsq − gl)/gl]`, clamped at 0.
///
/// A zero-width interval at 0 certifies optimality.
pub fn error_interval(wsq: u64, gl: u64, gu: u64) -> (f64, f64) {
    debug_assert!(gl <= gu && gu <= wsq.max(gu));
    let rel = |bound: u64| {
        if bound == 0 {
            if wsq == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            ((wsq as f64 - bound as f64) / bound as f64).max(0.0)
        }
    };
    (rel(gu), rel(gl))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{exact_minimum, ExactConfig};
    use mwc_graph::generators::{karate::karate_club, structured};
    use rand::{Rng, SeedableRng};

    #[test]
    fn path_bound_is_tight_for_q2() {
        // Q = endpoints of P_5: only connector is the path itself,
        // W = (125 - 5)/6 = 20; bound: pair_sum = 4, k_min = 5,
        // extra = C(5,2) - C(2,2)... C(2,2)=1 → 4 + (10 - 1) = 13 ≤ 20.
        let g = structured::path(5);
        let lb = certified_lower_bound(&g, &[0, 4]).unwrap();
        assert_eq!(lb.query_pair_sum, 4);
        assert_eq!(lb.min_cardinality, 5);
        assert_eq!(lb.value, 4 + 10 - 1);
        assert!(lb.value <= 20);
    }

    #[test]
    fn adjacent_query_pair_bound_is_exact() {
        let g = structured::path(3);
        let lb = certified_lower_bound(&g, &[0, 1]).unwrap();
        assert_eq!(lb.value, 1); // optimal: the edge itself
    }

    #[test]
    fn bound_never_exceeds_exact_optimum() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(83);
        let mut checked = 0;
        while checked < 15 {
            let raw = mwc_graph::generators::gnm(18, 32, &mut rng);
            let Ok((g, _)) = mwc_graph::connectivity::largest_component_graph(&raw) else {
                continue;
            };
            let n = g.num_nodes() as NodeId;
            if n < 8 {
                continue;
            }
            let q: Vec<NodeId> = (0..3).map(|_| rng.gen_range(0..n)).collect();
            let exact = exact_minimum(&g, &q, None, &ExactConfig::default()).unwrap();
            assert!(exact.optimal);
            let lb = certified_lower_bound(&g, &q).unwrap();
            assert!(
                lb.value <= exact.wiener_index,
                "LB {} exceeds OPT {} (q = {q:?})",
                lb.value,
                exact.wiener_index
            );
            checked += 1;
        }
    }

    #[test]
    fn bound_on_karate_queries() {
        let g = karate_club();
        let q: Vec<NodeId> = vec![11, 24, 25, 29];
        let exact = exact_minimum(&g, &q, None, &ExactConfig::default()).unwrap();
        let lb = certified_lower_bound(&g, &q).unwrap();
        assert!(exact.optimal);
        assert!(lb.value <= exact.wiener_index);
        assert!(lb.value > 0);
    }

    #[test]
    fn disconnected_query_errors() {
        let g = mwc_graph::Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(certified_lower_bound(&g, &[0, 2]).is_err());
    }

    #[test]
    fn error_interval_shapes() {
        // Optimal: wsq == gu == gl.
        assert_eq!(error_interval(40, 40, 40), (0.0, 0.0));
        // Paper row "football |Q|=10": ws-q 656, GU 598, GL 538
        // → [9.6%, 22%].
        let (lo, hi) = error_interval(656, 538, 598);
        assert!((lo - 0.0969).abs() < 0.01, "lo = {lo}");
        assert!((hi - 0.2193).abs() < 0.01, "hi = {hi}");
        // Degenerate zero bound.
        let (lo, hi) = error_interval(0, 0, 0);
        assert_eq!((lo, hi), (0.0, 0.0));
    }
}
