//! Takahashi–Matsuyama shortest-path heuristic for Steiner trees (1980).
//!
//! Grow the tree from one terminal; at each step connect the terminal
//! nearest to the current tree via a shortest path. Same `2(1 − 1/|Q|)`
//! approximation factor as Mehlhorn's algorithm, but a different — often
//! smaller, path-shaped — tree, which makes it an informative ablation
//! subroutine inside Algorithm 1 (DESIGN.md §7).
//!
//! Each round is a multi-source Dijkstra from the current tree vertices,
//! so the total cost is `O(|Q| (|E| + |V| log |V|))` — the same order as
//! the rest of `ws-q`.

use mwc_graph::hash::FxHashSet;
use mwc_graph::traversal::dijkstra::multi_source_dijkstra;
use mwc_graph::{Graph, NodeId, NO_NODE};

use crate::error::{CoreError, Result};
use crate::steiner::mehlhorn::SteinerTree;

/// Computes an approximately minimum Steiner tree for `terminals` in `g`
/// by iterative nearest-terminal attachment. Accepts the same weight
/// closure contract as [`mehlhorn_steiner`](crate::steiner::mehlhorn_steiner):
/// symmetric, non-negative.
pub fn takahashi_matsuyama<W>(g: &Graph, terminals: &[NodeId], weight: W) -> Result<SteinerTree>
where
    W: Fn(NodeId, NodeId) -> f64,
{
    let mut terms: Vec<NodeId> = terminals.to_vec();
    terms.sort_unstable();
    terms.dedup();
    if terms.is_empty() {
        return Err(CoreError::EmptyQuery);
    }
    for &t in &terms {
        g.check_node(t).map_err(CoreError::from)?;
    }
    if terms.len() == 1 {
        return Ok(SteinerTree::singleton(terms[0]));
    }

    let mut in_tree: FxHashSet<NodeId> = FxHashSet::default();
    in_tree.insert(terms[0]);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut total = 0.0f64;
    let mut remaining: Vec<NodeId> = terms[1..].to_vec();

    while !remaining.is_empty() {
        let sources: Vec<NodeId> = in_tree.iter().copied().collect();
        let voronoi = multi_source_dijkstra(g, &sources, &weight);
        // Nearest remaining terminal to the tree.
        let (pos, &next) = remaining
            .iter()
            .enumerate()
            .min_by(|a, b| voronoi.dist[*a.1 as usize].total_cmp(&voronoi.dist[*b.1 as usize]))
            .expect("remaining is non-empty");
        if !voronoi.dist[next as usize].is_finite() {
            return Err(CoreError::QueryNotConnectable);
        }
        remaining.swap_remove(pos);
        // Attach the shortest path from `next` back into the tree. Tree
        // vertices are Dijkstra sources (distance 0, no parent), so the
        // parent walk stops exactly at the attachment point.
        let mut cur = next;
        while !in_tree.contains(&cur) {
            let p = voronoi.parent[cur as usize];
            debug_assert_ne!(p, NO_NODE, "non-tree vertex on a finite path has a parent");
            edges.push((cur.min(p), cur.max(p)));
            total += weight(cur, p);
            in_tree.insert(cur);
            cur = p;
        }
    }

    let mut nodes: Vec<NodeId> = in_tree.into_iter().collect();
    nodes.sort_unstable();
    let tree = SteinerTree {
        nodes,
        edges,
        total_weight: total,
    };
    debug_assert!(tree.validate(), "Takahashi–Matsuyama output must be a tree");
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::steiner::mehlhorn_steiner;
    use mwc_graph::generators::{karate::karate_club, structured};
    use rand::SeedableRng;

    const UNIT: fn(NodeId, NodeId) -> f64 = |_, _| 1.0;

    #[test]
    fn two_terminals_give_shortest_path() {
        let g = structured::grid(5, 5, false);
        let t = takahashi_matsuyama(&g, &[0, 24], UNIT).unwrap();
        assert!(t.validate());
        assert_eq!(t.total_weight, 8.0);
        assert_eq!(t.num_nodes(), 9);
    }

    #[test]
    fn single_duplicate_and_empty_terminals() {
        let g = structured::path(5);
        assert_eq!(
            takahashi_matsuyama(&g, &[3], UNIT).unwrap(),
            SteinerTree::singleton(3)
        );
        assert_eq!(
            takahashi_matsuyama(&g, &[2, 2], UNIT).unwrap(),
            SteinerTree::singleton(2)
        );
        assert!(matches!(
            takahashi_matsuyama(&g, &[], UNIT),
            Err(CoreError::EmptyQuery)
        ));
    }

    #[test]
    fn disconnected_terminals_error() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(matches!(
            takahashi_matsuyama(&g, &[0, 3], UNIT),
            Err(CoreError::QueryNotConnectable)
        ));
    }

    #[test]
    fn star_terminals_use_the_hub() {
        let g = structured::star(8);
        let t = takahashi_matsuyama(&g, &[1, 3, 5, 7], UNIT).unwrap();
        assert!(t.contains(0));
        assert_eq!(t.num_nodes(), 5);
        assert_eq!(t.total_weight, 4.0);
    }

    #[test]
    fn tree_input_gives_the_unique_steiner_tree() {
        // On a tree, every heuristic must return the same (unique) answer.
        let g = structured::balanced_tree(2, 4);
        let q = [3u32, 11, 25];
        let tm = takahashi_matsuyama(&g, &q, UNIT).unwrap();
        let me = mehlhorn_steiner(&g, &q, UNIT).unwrap();
        assert_eq!(tm.total_weight, me.total_weight);
        assert_eq!(tm.nodes, me.nodes);
    }

    #[test]
    fn within_mutual_factor_two_of_mehlhorn() {
        // Both are 2-approximations, so neither can be more than twice
        // the other.
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..8 {
            let g = mwc_graph::generators::gnm(60, 150, &mut rng);
            let Ok((lc, _)) = mwc_graph::connectivity::largest_component_graph(&g) else {
                continue;
            };
            let n = lc.num_nodes() as NodeId;
            let terms: Vec<NodeId> = (0..5).map(|_| rng.gen_range(0..n)).collect();
            let tm = takahashi_matsuyama(&lc, &terms, UNIT).unwrap();
            let me = mehlhorn_steiner(&lc, &terms, UNIT).unwrap();
            assert!(tm.validate());
            assert!(tm.total_weight <= 2.0 * me.total_weight + 1e-9);
            assert!(me.total_weight <= 2.0 * tm.total_weight + 1e-9);
            for &q in &terms {
                assert!(tm.contains(q));
            }
        }
    }

    #[test]
    fn respects_weight_function() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let heavy = |u: NodeId, v: NodeId| {
            if (u.min(v), u.max(v)) == (0, 2) {
                10.0
            } else {
                1.0
            }
        };
        let t = takahashi_matsuyama(&g, &[0, 2], heavy).unwrap();
        assert_eq!(t.num_nodes(), 3, "should detour through vertex 1");
        assert_eq!(t.total_weight, 2.0);
    }

    #[test]
    fn no_nonterminal_leaves_on_karate() {
        let g = karate_club();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        use rand::Rng;
        for _ in 0..10 {
            let terms: Vec<NodeId> = (0..4).map(|_| rng.gen_range(0..34)).collect();
            let t = takahashi_matsuyama(&g, &terms, UNIT).unwrap();
            let adj = t.adjacency();
            for (&v, nbrs) in &adj {
                if nbrs.len() <= 1 && t.num_nodes() > 1 {
                    assert!(terms.contains(&v), "non-terminal leaf {v}");
                }
            }
        }
    }
}
