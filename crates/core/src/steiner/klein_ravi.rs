//! Klein–Ravi greedy for node-weighted Steiner trees (J. Algorithms 1995).
//!
//! §4 Step 4 of the paper observes that Problem 4 *is* a node-weighted
//! Steiner tree instance (vertex cost `λ + d_G(r, u)/λ`), that the general
//! problem admits no `o(log |Q|)` approximation, and that the paper's
//! instances escape the lower bound through the Lemma 4 shift of costs
//! onto edges. This module implements the generic algorithm the paper
//! routes around — the Klein–Ravi `2 ln |Q|`-approximation — so the bench
//! suite can measure what the Lemma 4 trick is actually worth
//! (`SteinerAlgorithm::KleinRavi` in the ablation).
//!
//! The greedy repeatedly buys the *spider* with the best cost-per-merge
//! ratio: a center vertex `v` plus node-cheapest paths from `v` to `k ≥ 2`
//! of the current terminal components, at ratio
//! `(Σ path costs − (k−1)·c(v)) / k` (the center is paid once). Already-
//! bought vertices have cost 0, so spiders naturally reuse the partial
//! tree.

use mwc_graph::hash::{FxHashMap, FxHashSet};
use mwc_graph::{Graph, NodeId, NO_NODE};

use crate::error::{CoreError, Result};
use crate::steiner::mehlhorn::SteinerTree;
use crate::steiner::unionfind::UnionFind;

/// Computes a node-weighted Steiner tree for `terminals` in `g` with the
/// Klein–Ravi spider greedy. `cost(u) ≥ 0` is charged once per selected
/// vertex; terminals are charged too (a constant shared by every feasible
/// solution, so the approximation target is unaffected).
///
/// The returned [`SteinerTree::total_weight`] is the *node* cost of the
/// selected vertex set (not an edge total): the objective this algorithm
/// minimizes, and exactly `B(H, r, λ)` when called with the Problem 4
/// costs.
///
/// `O(|Q| · |C| · (|E| + |V| log |V|))` with `|C| ≤ |Q|` live components.
pub fn klein_ravi<C>(g: &Graph, terminals: &[NodeId], cost: C) -> Result<SteinerTree>
where
    C: Fn(NodeId) -> f64,
{
    let mut terms: Vec<NodeId> = terminals.to_vec();
    terms.sort_unstable();
    terms.dedup();
    if terms.is_empty() {
        return Err(CoreError::EmptyQuery);
    }
    for &t in &terms {
        g.check_node(t).map_err(CoreError::from)?;
    }
    if terms.len() == 1 {
        return Ok(SteinerTree::singleton(terms[0]));
    }
    let n = g.num_nodes();

    // Selected vertex set (bought vertices cost 0 from then on).
    let mut selected: FxHashSet<NodeId> = terms.iter().copied().collect();
    // Component structure over the terminals.
    let mut uf = UnionFind::new(terms.len());
    let term_index: FxHashMap<NodeId, u32> = terms
        .iter()
        .enumerate()
        .map(|(i, &t)| (t, i as u32))
        .collect();
    // Which component each *selected* vertex belongs to.
    let mut comp_of: FxHashMap<NodeId, u32> = term_index.clone();

    let buy_cost = |v: NodeId, selected: &FxHashSet<NodeId>| -> f64 {
        if selected.contains(&v) {
            0.0
        } else {
            cost(v).max(0.0)
        }
    };

    loop {
        // Live component representatives.
        let mut reps: Vec<u32> = (0..terms.len() as u32).map(|i| uf.find(i)).collect();
        reps.sort_unstable();
        reps.dedup();
        if reps.len() == 1 {
            break;
        }

        // Node-cost Dijkstra from each component: dist[v] = cheapest cost
        // of the new vertices on a path from the component to v, including
        // v itself.
        let rep_pos: FxHashMap<u32, usize> =
            reps.iter().enumerate().map(|(i, &r)| (r, i)).collect();
        let mut dist: Vec<Vec<f64>> = Vec::with_capacity(reps.len());
        let mut parent: Vec<Vec<NodeId>> = Vec::with_capacity(reps.len());
        for &rep in &reps {
            let sources: Vec<NodeId> = comp_of
                .iter()
                .filter(|&(_, &c)| uf.find(c) == rep)
                .map(|(&v, _)| v)
                .collect();
            let (d, p) = node_cost_dijkstra(g, &sources, |v| buy_cost(v, &selected));
            dist.push(d);
            parent.push(p);
        }

        // Best spider: center v, components sorted by path cost.
        let mut best: Option<(f64, NodeId, Vec<usize>)> = None; // (ratio, center, comp ids)
        for v in 0..n as NodeId {
            let cv = buy_cost(v, &selected);
            let mut reach: Vec<(f64, usize)> = (0..reps.len())
                .filter(|&i| dist[i][v as usize].is_finite())
                .map(|i| (dist[i][v as usize], i))
                .collect();
            if reach.len() < 2 {
                continue;
            }
            reach.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut path_sum = 0.0;
            for (k, &(d, _)) in reach.iter().enumerate() {
                path_sum += d;
                if k == 0 {
                    continue; // need ≥ 2 components
                }
                let merged = k + 1;
                // Each path cost includes the center; pay it exactly once.
                let total = path_sum - (merged as f64 - 1.0) * cv;
                let ratio = total / merged as f64;
                if best.as_ref().is_none_or(|(r, _, _)| ratio < *r) {
                    best = Some((ratio, v, reach[..merged].iter().map(|&(_, i)| i).collect()));
                }
            }
        }

        let Some((_, center, comp_ids)) = best else {
            // No vertex reaches two components: terminals are disconnected.
            return Err(CoreError::QueryNotConnectable);
        };

        // Buy the spider: walk each path from the center back to its
        // component, selecting vertices and merging components.
        let target_rep = reps[comp_ids[0]];
        let mut newly: Vec<NodeId> = Vec::new();
        for &ci in &comp_ids {
            let mut cur = center;
            loop {
                if selected.insert(cur) {
                    newly.push(cur);
                }
                let p = parent[ci][cur as usize];
                if p == NO_NODE {
                    break; // reached the component (sources have no parent)
                }
                cur = p;
            }
            // Merge this component into the spider's component.
            debug_assert!(rep_pos.contains_key(&reps[ci]), "stale representative");
            uf.union(target_rep, reps[ci]);
        }
        let merged_rep = uf.find(target_rep);
        for v in newly {
            comp_of.insert(v, terms_rep_slot(&term_index, merged_rep, v));
        }
        // Re-assign every selected vertex to its (possibly merged) root so
        // the next round's source sets are consistent.
        let snapshot: Vec<(NodeId, u32)> = comp_of.iter().map(|(&v, &c)| (v, c)).collect();
        for (v, c) in snapshot {
            comp_of.insert(v, uf.find(c));
        }
    }

    // Extract a spanning tree of the selected set (the union of spider
    // paths is connected; induced extra edges can only help, so a BFS tree
    // over the induced subgraph suffices and keeps the node set intact).
    let mut nodes: Vec<NodeId> = selected.iter().copied().collect();
    nodes.sort_unstable();
    let sub = g.induced(&nodes).map_err(CoreError::from)?;
    let bfs = mwc_graph::traversal::bfs::bfs_parents(sub.graph(), 0);
    let mut edges = Vec::with_capacity(nodes.len().saturating_sub(1));
    for v in 1..nodes.len() as NodeId {
        let p = bfs.parent[v as usize];
        if p == NO_NODE {
            return Err(CoreError::QueryNotConnectable);
        }
        let (a, b) = (sub.to_global(p), sub.to_global(v));
        edges.push((a.min(b), a.max(b)));
    }
    let total_weight: f64 = nodes.iter().map(|&v| cost(v).max(0.0)).sum();
    let tree = SteinerTree {
        nodes,
        edges,
        total_weight,
    };
    debug_assert!(tree.validate(), "Klein–Ravi output must be a tree");
    Ok(tree)
}

/// `comp_of` slot for a vertex: its own terminal component if it is a
/// terminal, else the merged representative.
fn terms_rep_slot(term_index: &FxHashMap<NodeId, u32>, merged_rep: u32, v: NodeId) -> u32 {
    term_index.get(&v).copied().unwrap_or(merged_rep)
}

/// Multi-source Dijkstra with *node* costs: `dist[v]` = minimum total cost
/// of vertices bought on a path from the source set to `v` (sources cost
/// 0 — they are already bought), including `v`'s own cost.
fn node_cost_dijkstra<C>(g: &Graph, sources: &[NodeId], cost: C) -> (Vec<f64>, Vec<NodeId>)
where
    C: Fn(NodeId) -> f64,
{
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[derive(PartialEq)]
    struct Key(f64, NodeId);
    impl Eq for Key {}
    impl PartialOrd for Key {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Key {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
        }
    }

    let n = g.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent = vec![NO_NODE; n];
    let mut heap: BinaryHeap<Reverse<Key>> = BinaryHeap::new();
    for &s in sources {
        dist[s as usize] = 0.0;
        heap.push(Reverse(Key(0.0, s)));
    }
    while let Some(Reverse(Key(d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        for &nb in g.neighbors(v) {
            let nd = d + cost(nb).max(0.0);
            if nd < dist[nb as usize] {
                dist[nb as usize] = nd;
                parent[nb as usize] = v;
                heap.push(Reverse(Key(nd, nb)));
            }
        }
    }
    (dist, parent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::generators::structured;
    use mwc_graph::Graph;
    use rand::SeedableRng;

    const UNIT: fn(NodeId) -> f64 = |_| 1.0;

    #[test]
    fn two_terminals_take_the_cheap_path() {
        // 0-1-2 path plus a direct heavy vertex route 0-3-2.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 3), (3, 2)]).unwrap();
        let heavy = |v: NodeId| if v == 3 { 10.0 } else { 1.0 };
        let t = klein_ravi(&g, &[0, 2], heavy).unwrap();
        assert!(t.contains(1), "should route through the cheap vertex");
        assert!(!t.contains(3));
        assert!(t.validate());
    }

    #[test]
    fn star_center_is_the_spider() {
        let g = structured::star(8);
        let t = klein_ravi(&g, &[1, 3, 5, 7], UNIT).unwrap();
        assert!(t.contains(0));
        assert_eq!(t.num_nodes(), 5);
        // Node-cost objective: 5 unit vertices.
        assert_eq!(t.total_weight, 5.0);
    }

    #[test]
    fn singleton_duplicates_and_errors() {
        let g = structured::path(5);
        assert_eq!(
            klein_ravi(&g, &[2], UNIT).unwrap(),
            SteinerTree::singleton(2)
        );
        assert_eq!(
            klein_ravi(&g, &[2, 2], UNIT).unwrap(),
            SteinerTree::singleton(2)
        );
        assert!(matches!(
            klein_ravi(&g, &[], UNIT),
            Err(CoreError::EmptyQuery)
        ));
        let disc = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(matches!(
            klein_ravi(&disc, &[0, 3], UNIT),
            Err(CoreError::QueryNotConnectable)
        ));
    }

    #[test]
    fn unit_costs_compare_with_mehlhorn_vertex_counts() {
        // With unit node costs the objective is |V(T)|; Klein–Ravi's
        // ln|Q| guarantee must keep it within a couple of Mehlhorn's
        // vertex count on small instances (and vice versa).
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        for _ in 0..6 {
            let g = mwc_graph::generators::gnm(50, 120, &mut rng);
            let Ok((lc, _)) = mwc_graph::connectivity::largest_component_graph(&g) else {
                continue;
            };
            let n = lc.num_nodes() as NodeId;
            let terms: Vec<NodeId> = (0..4).map(|_| rng.gen_range(0..n)).collect();
            let kr = klein_ravi(&lc, &terms, UNIT).unwrap();
            let me = crate::steiner::mehlhorn_steiner(&lc, &terms, |_, _| 1.0).unwrap();
            assert!(kr.validate());
            for &q in &terms {
                assert!(kr.contains(q));
            }
            let (a, b) = (kr.num_nodes() as f64, me.num_nodes() as f64);
            assert!(a <= 3.0 * b && b <= 3.0 * a, "kr {a} vs mehlhorn {b}");
        }
    }

    #[test]
    fn expensive_spider_center_is_avoided_when_possible() {
        // Two terminals joined both via an expensive hub and a cheap
        // two-vertex path: the greedy must prefer the cheap route.
        let g = Graph::from_edges(5, &[(0, 1), (1, 4), (0, 2), (2, 3), (3, 4)]).unwrap();
        let costs = |v: NodeId| match v {
            1 => 100.0,
            _ => 1.0,
        };
        let t = klein_ravi(&g, &[0, 4], costs).unwrap();
        assert!(!t.contains(1), "expensive hub selected: {:?}", t.nodes);
        assert_eq!(t.num_nodes(), 4);
    }

    #[test]
    fn selected_set_total_matches_reported_weight() {
        let g = structured::grid(4, 4, false);
        let cost = |v: NodeId| 1.0 + (v % 3) as f64;
        let t = klein_ravi(&g, &[0, 3, 12, 15], cost).unwrap();
        let expect: f64 = t.nodes.iter().map(|&v| cost(v)).sum();
        assert_eq!(t.total_weight, expect);
    }
}
