//! Shared tail of the path-expansion Steiner heuristics: take the
//! expanded subgraph (union of shortest paths), compute its MST, and
//! repeatedly delete non-terminal leaves.
//!
//! Both Mehlhorn's algorithm (steps 5–6) and Kou–Markowsky–Berman
//! (steps 4–5) end with exactly this refinement; factoring it keeps the
//! two implementations honest about producing identical tree invariants.

use mwc_graph::hash::{FxHashMap, FxHashSet};
use mwc_graph::NodeId;

use crate::steiner::mehlhorn::SteinerTree;
use crate::steiner::mst::{kruskal, WeightedEdge};

/// Builds the MST of the subgraph `(sub_nodes, sub_edges)` under `weight`,
/// prunes non-terminal leaves, and packages the result. `terms` must be
/// sorted; `sub_nodes` must contain every terminal and induce a connected
/// subgraph via `sub_edges` (the expansion step guarantees both).
pub(crate) fn mst_then_prune<W>(
    terms: &[NodeId],
    sub_nodes: FxHashSet<NodeId>,
    sub_edges: &FxHashSet<(NodeId, NodeId)>,
    weight: W,
) -> SteinerTree
where
    W: Fn(NodeId, NodeId) -> f64,
{
    let mut nodes: Vec<NodeId> = sub_nodes.into_iter().collect();
    nodes.sort_unstable();
    let local: FxHashMap<NodeId, u32> = nodes
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i as u32))
        .collect();
    let mut local_edges: Vec<WeightedEdge> = sub_edges
        .iter()
        .map(|&(u, v)| (weight(u, v), local[&u], local[&v]))
        .collect();
    let (sub_mst, _) = kruskal(nodes.len(), &mut local_edges);
    debug_assert_eq!(
        sub_mst.len() + 1,
        nodes.len(),
        "expanded subgraph must be connected"
    );

    // Prune non-terminal leaves repeatedly.
    let k = nodes.len();
    let mut adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); k];
    for &(w, ul, vl) in &sub_mst {
        adj[ul as usize].push((vl, w));
        adj[vl as usize].push((ul, w));
    }
    let mut degree: Vec<u32> = adj.iter().map(|a| a.len() as u32).collect();
    let mut removed = vec![false; k];
    let is_terminal: Vec<bool> = nodes
        .iter()
        .map(|v| terms.binary_search(v).is_ok())
        .collect();
    let mut stack: Vec<u32> = (0..k as u32)
        .filter(|&v| degree[v as usize] <= 1 && !is_terminal[v as usize])
        .collect();
    while let Some(v) = stack.pop() {
        if removed[v as usize] || is_terminal[v as usize] || degree[v as usize] > 1 {
            continue;
        }
        removed[v as usize] = true;
        for &(nb, _) in &adj[v as usize] {
            if !removed[nb as usize] {
                degree[nb as usize] -= 1;
                if degree[nb as usize] <= 1 && !is_terminal[nb as usize] {
                    stack.push(nb);
                }
            }
        }
    }

    let mut out_nodes: Vec<NodeId> = Vec::with_capacity(k);
    for (i, &v) in nodes.iter().enumerate() {
        if !removed[i] {
            out_nodes.push(v);
        }
    }
    let mut out_edges: Vec<(NodeId, NodeId)> =
        Vec::with_capacity(out_nodes.len().saturating_sub(1));
    let mut total = 0.0f64;
    for &(w, ul, vl) in &sub_mst {
        if !removed[ul as usize] && !removed[vl as usize] {
            let (u, v) = (nodes[ul as usize], nodes[vl as usize]);
            out_edges.push((u.min(v), u.max(v)));
            total += w;
        }
    }

    let tree = SteinerTree {
        nodes: out_nodes,
        edges: out_edges,
        total_weight: total,
    };
    debug_assert!(tree.validate(), "refined output must be a tree");
    tree
}
