//! Mehlhorn's 2-approximation for the Steiner tree problem in graphs
//! (Inf. Proc. Letters 1988) — the algorithm the paper uses both as the
//! `st` baseline and inside `ws-q` (§4 Corollary 3, §6.1).
//!
//! Steps:
//! 1. multi-source Dijkstra from the terminals → Voronoi partition
//!    (`s(v)` = nearest terminal, `d(s(v), v)` = distance to it);
//! 2. terminal distance graph: for each graph edge `(u, v)` crossing two
//!    Voronoi regions, a candidate terminal-terminal edge of weight
//!    `d(s(u), u) + w(u, v) + d(v, s(v))`, keeping the cheapest per pair;
//! 3. MST of the terminal distance graph (Kruskal);
//! 4. expansion of each MST edge into the corresponding graph path;
//! 5. MST of the expanded subgraph;
//! 6. repeated deletion of non-terminal leaves.
//!
//! The result is a tree spanning the terminals with total weight at most
//! `2 (1 - 1/|Q|)` times optimal. Edge weights are supplied as a closure so
//! the reweighted graph `G_{r,λ}` of Lemma 4 never has to be materialized.

use mwc_graph::hash::{FxHashMap, FxHashSet};
use mwc_graph::traversal::dijkstra::multi_source_dijkstra;
use mwc_graph::{Graph, NodeId, NO_NODE};

use crate::error::{CoreError, Result};
use crate::steiner::mst::{kruskal, WeightedEdge};

/// A tree subgraph of the input graph, over global vertex ids.
#[derive(Debug, Clone, PartialEq)]
pub struct SteinerTree {
    /// Sorted vertex set.
    pub nodes: Vec<NodeId>,
    /// Tree edges (global ids, `u < v`); `edges.len() == nodes.len() - 1`.
    pub edges: Vec<(NodeId, NodeId)>,
    /// Total weight of the tree edges under the weight function it was
    /// built with.
    pub total_weight: f64,
}

impl SteinerTree {
    /// A tree with a single vertex and no edges.
    pub fn singleton(v: NodeId) -> Self {
        SteinerTree {
            nodes: vec![v],
            edges: Vec::new(),
            total_weight: 0.0,
        }
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Whether `v` is a tree vertex.
    pub fn contains(&self, v: NodeId) -> bool {
        self.nodes.binary_search(&v).is_ok()
    }

    /// Adjacency lists of the tree, keyed by global id.
    pub fn adjacency(&self) -> FxHashMap<NodeId, Vec<NodeId>> {
        let mut adj: FxHashMap<NodeId, Vec<NodeId>> = FxHashMap::default();
        adj.reserve(self.nodes.len());
        for &v in &self.nodes {
            adj.entry(v).or_default();
        }
        for &(u, v) in &self.edges {
            adj.get_mut(&u).expect("edge endpoint in nodes").push(v);
            adj.get_mut(&v).expect("edge endpoint in nodes").push(u);
        }
        adj
    }

    /// Checks the structural invariants (tree = connected + acyclic via
    /// edge count, endpoints within node set). Used by tests and debug
    /// assertions.
    pub fn validate(&self) -> bool {
        if self.nodes.is_empty() {
            return false;
        }
        if self.edges.len() + 1 != self.nodes.len() {
            return false;
        }
        let index: FxHashMap<NodeId, u32> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        let mut uf = crate::steiner::UnionFind::new(self.nodes.len());
        for &(u, v) in &self.edges {
            let (Some(&ul), Some(&vl)) = (index.get(&u), index.get(&v)) else {
                return false;
            };
            if !uf.union(ul, vl) {
                return false; // cycle
            }
        }
        uf.num_sets() == 1
    }
}

/// Computes an approximately minimum Steiner tree for `terminals` in `g`
/// under the symmetric, non-negative edge weight `weight(u, v)`.
///
/// Duplicate terminals are merged. Errors with
/// [`CoreError::QueryNotConnectable`] if the terminals do not share a
/// connected component, [`CoreError::EmptyQuery`] on an empty terminal set.
///
/// `O((|V| + |E|) log |V|)` once the weight closure is `O(1)`.
pub fn mehlhorn_steiner<W>(g: &Graph, terminals: &[NodeId], weight: W) -> Result<SteinerTree>
where
    W: Fn(NodeId, NodeId) -> f64,
{
    let mut terms: Vec<NodeId> = terminals.to_vec();
    terms.sort_unstable();
    terms.dedup();
    if terms.is_empty() {
        return Err(CoreError::EmptyQuery);
    }
    for &t in &terms {
        g.check_node(t).map_err(CoreError::from)?;
    }
    if terms.len() == 1 {
        return Ok(SteinerTree::singleton(terms[0]));
    }

    // Step 1: Voronoi partition around the terminals.
    let voronoi = multi_source_dijkstra(g, &terms, &weight);

    // Step 2: cheapest crossing edge per terminal pair. The map also
    // remembers the graph edge realizing the candidate, needed for path
    // expansion in step 4.
    let mut crossing: FxHashMap<(u32, u32), (f64, NodeId, NodeId)> = FxHashMap::default();
    for u in g.nodes() {
        let su = voronoi.source_index[u as usize];
        if su == u32::MAX {
            continue;
        }
        for &v in g.neighbors(u) {
            if v <= u {
                continue;
            }
            let sv = voronoi.source_index[v as usize];
            if sv == u32::MAX || sv == su {
                continue;
            }
            let w = voronoi.dist[u as usize] + weight(u, v) + voronoi.dist[v as usize];
            let key = (su.min(sv), su.max(sv));
            use std::collections::hash_map::Entry;
            match crossing.entry(key) {
                Entry::Occupied(mut e) => {
                    if w < e.get().0 {
                        e.insert((w, u, v));
                    }
                }
                Entry::Vacant(e) => {
                    e.insert((w, u, v));
                }
            }
        }
    }

    // Step 3: MST over the terminal distance graph.
    let mut term_edges: Vec<WeightedEdge> = crossing
        .iter()
        .map(|(&(a, b), &(w, _, _))| (w, a, b))
        .collect();
    let (term_mst, _) = kruskal(terms.len(), &mut term_edges);
    if term_mst.len() + 1 != terms.len() {
        return Err(CoreError::QueryNotConnectable);
    }

    // Step 4: expand each terminal-MST edge into its graph path
    // s(u) ⇝ u — v ⇝ s(v), following the Voronoi parent pointers.
    let mut sub_nodes: FxHashSet<NodeId> = FxHashSet::default();
    let mut sub_edges: FxHashSet<(NodeId, NodeId)> = FxHashSet::default();
    let mut add_edge = |a: NodeId, b: NodeId, nodes: &mut FxHashSet<NodeId>| {
        nodes.insert(a);
        nodes.insert(b);
        sub_edges.insert((a.min(b), a.max(b)));
    };
    for &t in &terms {
        sub_nodes.insert(t);
    }
    for &(w, a, b) in &term_mst {
        // Identify the graph edge realizing this terminal pair.
        let &(_, u, v) = crossing
            .get(&(a.min(b), a.max(b)))
            .expect("terminal MST edge has a crossing entry");
        let _ = w;
        add_edge(u, v, &mut sub_nodes);
        for mut cur in [u, v] {
            while voronoi.parent[cur as usize] != NO_NODE {
                let p = voronoi.parent[cur as usize];
                add_edge(cur, p, &mut sub_nodes);
                cur = p;
            }
        }
    }

    // Steps 5–6: MST of the expanded subgraph, then leaf pruning (shared
    // with Kou–Markowsky–Berman, which ends identically).
    Ok(crate::steiner::expand::mst_then_prune(
        &terms, sub_nodes, &sub_edges, &weight,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::generators::{karate::karate_club, structured};
    use rand::SeedableRng;

    const UNIT: fn(NodeId, NodeId) -> f64 = |_, _| 1.0;

    #[test]
    fn two_terminals_give_shortest_path() {
        let g = structured::grid(5, 5, false);
        // Corners of the grid: distance 8.
        let t = mehlhorn_steiner(&g, &[0, 24], UNIT).unwrap();
        assert!(t.validate());
        assert_eq!(t.total_weight, 8.0);
        assert_eq!(t.num_nodes(), 9);
        assert!(t.contains(0) && t.contains(24));
    }

    #[test]
    fn single_and_duplicate_terminals() {
        let g = structured::path(5);
        let t = mehlhorn_steiner(&g, &[3], UNIT).unwrap();
        assert_eq!(t, SteinerTree::singleton(3));
        let t = mehlhorn_steiner(&g, &[2, 2, 2], UNIT).unwrap();
        assert_eq!(t, SteinerTree::singleton(2));
    }

    #[test]
    fn empty_terminals_error() {
        let g = structured::path(3);
        assert!(matches!(
            mehlhorn_steiner(&g, &[], UNIT),
            Err(CoreError::EmptyQuery)
        ));
    }

    #[test]
    fn disconnected_terminals_error() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(matches!(
            mehlhorn_steiner(&g, &[0, 3], UNIT),
            Err(CoreError::QueryNotConnectable)
        ));
    }

    #[test]
    fn star_terminals_use_the_hub() {
        let g = structured::star(8);
        let t = mehlhorn_steiner(&g, &[1, 3, 5, 7], UNIT).unwrap();
        assert!(t.contains(0), "hub must be selected as Steiner point");
        assert_eq!(t.num_nodes(), 5);
        assert_eq!(t.total_weight, 4.0);
    }

    #[test]
    fn no_superfluous_nonterminal_leaves() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for seed in 0..10u64 {
            use rand::Rng;
            let _ = seed;
            let g = mwc_graph::generators::barabasi_albert(80, 2, &mut rng);
            let terms: Vec<NodeId> = (0..5).map(|_| rng.gen_range(0..80)).collect();
            let t = mehlhorn_steiner(&g, &terms, UNIT).unwrap();
            assert!(t.validate());
            let adj = t.adjacency();
            for (&v, nbrs) in &adj {
                if nbrs.len() <= 1 && t.num_nodes() > 1 {
                    assert!(terms.contains(&v), "non-terminal leaf {v} survived pruning");
                }
            }
            for &q in &terms {
                assert!(t.contains(q));
            }
        }
    }

    #[test]
    fn within_factor_two_of_optimum_on_karate() {
        // For |Q| = 2 the optimum is the shortest path; check the 2x bound
        // (Mehlhorn in fact returns an exact shortest path here).
        let g = karate_club();
        let d = mwc_graph::traversal::bfs::bfs_distances(&g, 0);
        for t in [15u32, 23, 33] {
            let tree = mehlhorn_steiner(&g, &[0, t], UNIT).unwrap();
            assert_eq!(tree.total_weight, d[t as usize] as f64, "terminal {t}");
        }
    }

    #[test]
    fn respects_weight_function() {
        // Path 0-1-2 plus heavy shortcut edge (0,2): unit weights take the
        // shortcut, skewed weights avoid it.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let t = mehlhorn_steiner(&g, &[0, 2], UNIT).unwrap();
        assert_eq!(t.num_nodes(), 2);
        let heavy = |u: NodeId, v: NodeId| {
            if (u, v) == (0, 2) || (v, u) == (0, 2) {
                10.0
            } else {
                1.0
            }
        };
        let t = mehlhorn_steiner(&g, &[0, 2], heavy).unwrap();
        assert_eq!(t.num_nodes(), 3, "should detour through vertex 1");
        assert_eq!(t.total_weight, 2.0);
    }

    #[test]
    fn spans_many_terminals_on_random_graphs() {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..5 {
            let g = mwc_graph::generators::gnm(120, 360, &mut rng);
            let (lc, _) = mwc_graph::connectivity::largest_component_graph(&g).unwrap();
            let n = lc.num_nodes();
            let terms: Vec<NodeId> = (0..8).map(|_| rng.gen_range(0..n as NodeId)).collect();
            let t = mehlhorn_steiner(&lc, &terms, UNIT).unwrap();
            assert!(t.validate());
            for &q in &terms {
                assert!(t.contains(q));
            }
        }
    }
}
