//! Kruskal's minimum spanning tree / forest over explicit edge lists.

use super::unionfind::UnionFind;

/// A weighted edge `(weight, u, v)` over dense vertex ids.
pub type WeightedEdge = (f64, u32, u32);

/// Kruskal's algorithm over `num_nodes` vertices.
///
/// Returns the selected edges (a minimum spanning forest if the input is
/// disconnected) and the total weight. Sorts `edges` in place;
/// `O(m log m)`.
pub fn kruskal(num_nodes: usize, edges: &mut [WeightedEdge]) -> (Vec<WeightedEdge>, f64) {
    edges.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    let mut uf = UnionFind::new(num_nodes);
    let mut picked = Vec::with_capacity(num_nodes.saturating_sub(1));
    let mut total = 0.0f64;
    for &(w, u, v) in edges.iter() {
        if uf.union(u, v) {
            picked.push((w, u, v));
            total += w;
            if picked.len() + 1 == num_nodes {
                break;
            }
        }
    }
    (picked, total)
}

/// Whether the edge set connects all `num_nodes` vertices.
pub fn spans_all(num_nodes: usize, edges: &[WeightedEdge]) -> bool {
    let mut uf = UnionFind::new(num_nodes);
    for &(_, u, v) in edges {
        uf.union(u, v);
    }
    uf.num_sets() <= 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_cheapest_spanning_edges() {
        // Square with a cheap diagonal.
        let mut edges = vec![
            (1.0, 0, 1),
            (4.0, 1, 2),
            (3.0, 2, 3),
            (2.0, 3, 0),
            (1.5, 0, 2),
        ];
        let (mst, total) = kruskal(4, &mut edges);
        assert_eq!(mst.len(), 3);
        assert_eq!(total, 1.0 + 1.5 + 2.0);
    }

    #[test]
    fn forest_on_disconnected_input() {
        let mut edges = vec![(1.0, 0, 1), (2.0, 2, 3)];
        let (mst, total) = kruskal(4, &mut edges);
        assert_eq!(mst.len(), 2);
        assert_eq!(total, 3.0);
        // A two-component forest does not span a single set.
        assert!(!spans_all(4, &mst));
        let mut tree = vec![(1.0, 0, 1), (1.0, 1, 2), (1.0, 2, 3)];
        let (spanning, _) = kruskal(4, &mut tree);
        assert!(spans_all(4, &spanning));
    }

    #[test]
    fn deterministic_under_ties() {
        let mut e1 = vec![(1.0, 0, 1), (1.0, 1, 2), (1.0, 0, 2)];
        let mut e2 = e1.clone();
        e2.reverse();
        let (m1, _) = kruskal(3, &mut e1);
        let (m2, _) = kruskal(3, &mut e2);
        assert_eq!(m1, m2);
    }

    #[test]
    fn single_node() {
        let (mst, total) = kruskal(1, &mut []);
        assert!(mst.is_empty());
        assert_eq!(total, 0.0);
    }
}
