//! Kou–Markowsky–Berman 2-approximation for Steiner trees (1981).
//!
//! The textbook predecessor of Mehlhorn's algorithm: build the *complete*
//! terminal distance graph (one Dijkstra per terminal), take its MST,
//! expand MST edges into shortest paths, take the MST of the expansion,
//! and prune non-terminal leaves. Mehlhorn's contribution was replacing
//! the `|Q|` Dijkstras with one Voronoi-partitioned run; KMB serves as the
//! reference implementation the faster variant is validated against, and
//! as an ablation subroutine inside Algorithm 1.

use mwc_graph::hash::FxHashSet;
use mwc_graph::traversal::dijkstra::{dijkstra, DijkstraResult};
use mwc_graph::{Graph, NodeId, NO_NODE};

use crate::error::{CoreError, Result};
use crate::steiner::expand::mst_then_prune;
use crate::steiner::mehlhorn::SteinerTree;
use crate::steiner::mst::{kruskal, WeightedEdge};

/// Computes an approximately minimum Steiner tree for `terminals` in `g`
/// with the Kou–Markowsky–Berman algorithm. Same contract as
/// [`mehlhorn_steiner`](crate::steiner::mehlhorn_steiner).
///
/// `O(|Q| (|E| + |V| log |V|))` — one Dijkstra per terminal.
pub fn kou_markowsky_berman<W>(g: &Graph, terminals: &[NodeId], weight: W) -> Result<SteinerTree>
where
    W: Fn(NodeId, NodeId) -> f64,
{
    let mut terms: Vec<NodeId> = terminals.to_vec();
    terms.sort_unstable();
    terms.dedup();
    if terms.is_empty() {
        return Err(CoreError::EmptyQuery);
    }
    for &t in &terms {
        g.check_node(t).map_err(CoreError::from)?;
    }
    if terms.len() == 1 {
        return Ok(SteinerTree::singleton(terms[0]));
    }

    // Step 1: single-source Dijkstra from every terminal.
    let runs: Vec<DijkstraResult> = terms.iter().map(|&t| dijkstra(g, t, &weight)).collect();

    // Step 2: MST of the complete terminal distance graph.
    let mut kq_edges: Vec<WeightedEdge> = Vec::with_capacity(terms.len() * (terms.len() - 1) / 2);
    for (i, run) in runs.iter().enumerate() {
        for (j, &tj) in terms.iter().enumerate().skip(i + 1) {
            let d = run.dist[tj as usize];
            if !d.is_finite() {
                return Err(CoreError::QueryNotConnectable);
            }
            kq_edges.push((d, i as u32, j as u32));
        }
    }
    let (term_mst, _) = kruskal(terms.len(), &mut kq_edges);
    debug_assert_eq!(term_mst.len() + 1, terms.len());

    // Step 3: expand each MST edge (i, j) into the shortest path realized
    // by terminal i's Dijkstra tree.
    let mut sub_nodes: FxHashSet<NodeId> = terms.iter().copied().collect();
    let mut sub_edges: FxHashSet<(NodeId, NodeId)> = FxHashSet::default();
    for &(_, i, j) in &term_mst {
        let run = &runs[i as usize];
        let mut cur = terms[j as usize];
        while run.parent[cur as usize] != NO_NODE {
            let p = run.parent[cur as usize];
            sub_nodes.insert(cur);
            sub_nodes.insert(p);
            sub_edges.insert((cur.min(p), cur.max(p)));
            cur = p;
        }
    }

    // Steps 4–5: MST of the expansion + leaf pruning (shared with
    // Mehlhorn's steps 5–6).
    Ok(mst_then_prune(&terms, sub_nodes, &sub_edges, &weight))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::steiner::{mehlhorn_steiner, takahashi::takahashi_matsuyama};
    use mwc_graph::generators::structured;
    use rand::SeedableRng;

    const UNIT: fn(NodeId, NodeId) -> f64 = |_, _| 1.0;

    #[test]
    fn two_terminals_give_shortest_path() {
        let g = structured::grid(5, 5, false);
        let t = kou_markowsky_berman(&g, &[0, 24], UNIT).unwrap();
        assert!(t.validate());
        assert_eq!(t.total_weight, 8.0);
    }

    #[test]
    fn singleton_duplicates_and_errors() {
        let g = structured::path(4);
        assert_eq!(
            kou_markowsky_berman(&g, &[1], UNIT).unwrap(),
            SteinerTree::singleton(1)
        );
        assert_eq!(
            kou_markowsky_berman(&g, &[1, 1, 1], UNIT).unwrap(),
            SteinerTree::singleton(1)
        );
        assert!(matches!(
            kou_markowsky_berman(&g, &[], UNIT),
            Err(CoreError::EmptyQuery)
        ));
        let disc = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(matches!(
            kou_markowsky_berman(&disc, &[0, 2], UNIT),
            Err(CoreError::QueryNotConnectable)
        ));
    }

    #[test]
    fn star_terminals_use_the_hub() {
        let g = structured::star(8);
        let t = kou_markowsky_berman(&g, &[1, 3, 5, 7], UNIT).unwrap();
        assert!(t.contains(0));
        assert_eq!(t.total_weight, 4.0);
    }

    #[test]
    fn figure2_steiner_tree_is_the_query_line() {
        // Figure 2 of the paper: the Steiner tree over the 10 line
        // vertices is the line itself (9 edges) — the roots don't help a
        // *Steiner* objective.
        let g = structured::figure2_graph(10);
        let q: Vec<NodeId> = (0..10).collect();
        let t = kou_markowsky_berman(&g, &q, UNIT).unwrap();
        assert_eq!(t.total_weight, 9.0);
    }

    #[test]
    fn agrees_with_mehlhorn_and_tm_on_trees() {
        let g = structured::balanced_tree(3, 3);
        let q = [1u32, 7, 20, 35];
        let kmb = kou_markowsky_berman(&g, &q, UNIT).unwrap();
        let me = mehlhorn_steiner(&g, &q, UNIT).unwrap();
        let tm = takahashi_matsuyama(&g, &q, UNIT).unwrap();
        assert_eq!(kmb.total_weight, me.total_weight);
        assert_eq!(kmb.total_weight, tm.total_weight);
        assert_eq!(kmb.nodes, me.nodes);
    }

    #[test]
    fn mutual_factor_two_with_mehlhorn_on_random_graphs() {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for _ in 0..8 {
            let g = mwc_graph::generators::gnm(60, 140, &mut rng);
            let Ok((lc, _)) = mwc_graph::connectivity::largest_component_graph(&g) else {
                continue;
            };
            let n = lc.num_nodes() as NodeId;
            let terms: Vec<NodeId> = (0..6).map(|_| rng.gen_range(0..n)).collect();
            let kmb = kou_markowsky_berman(&lc, &terms, UNIT).unwrap();
            let me = mehlhorn_steiner(&lc, &terms, UNIT).unwrap();
            assert!(kmb.validate());
            assert!(kmb.total_weight <= 2.0 * me.total_weight + 1e-9);
            assert!(me.total_weight <= 2.0 * kmb.total_weight + 1e-9);
            for &q in &terms {
                assert!(kmb.contains(q));
            }
        }
    }

    #[test]
    fn respects_weight_function() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let heavy = |u: NodeId, v: NodeId| {
            if (u.min(v), u.max(v)) == (0, 2) {
                10.0
            } else {
                1.0
            }
        };
        let t = kou_markowsky_berman(&g, &[0, 2], heavy).unwrap();
        assert_eq!(t.total_weight, 2.0);
    }
}
