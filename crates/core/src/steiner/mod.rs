//! Steiner tree machinery: union-find, Kruskal MST, and three classical
//! approximation algorithms.
//!
//! Algorithm 1 solves a Steiner instance per `(root, λ)` candidate; the
//! paper uses Mehlhorn's 2-approximation (§4 Corollary 3). Two more
//! 2-approximations — Kou–Markowsky–Berman (the algorithm Mehlhorn
//! accelerates) and the Takahashi–Matsuyama path heuristic — are provided
//! both as cross-validation for Mehlhorn's implementation and as the
//! subroutine ablation in the bench suite (DESIGN.md §7).

pub(crate) mod expand;
pub mod klein_ravi;
pub mod kmb;
pub mod mehlhorn;
pub mod mst;
pub mod takahashi;
pub mod unionfind;

pub use klein_ravi::klein_ravi;
pub use kmb::kou_markowsky_berman;
pub use mehlhorn::{mehlhorn_steiner, SteinerTree};
pub use mst::{kruskal, WeightedEdge};
pub use takahashi::takahashi_matsuyama;
pub use unionfind::UnionFind;

use mwc_graph::{Graph, NodeId};

use crate::error::Result;

/// Which Steiner subroutine to run (all are `2(1 − 1/|Q|)`-approximations,
/// so Algorithm 1's guarantee holds with any of them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SteinerAlgorithm {
    /// Mehlhorn (1988): Voronoi-partitioned terminal distance graph — the
    /// paper's choice and the fastest (`O(|E| + |V| log |V|)`).
    #[default]
    Mehlhorn,
    /// Kou–Markowsky–Berman (1981): exact terminal distance graph, one
    /// Dijkstra per terminal.
    KouMarkowskyBerman,
    /// Takahashi–Matsuyama (1980): iterative nearest-terminal attachment.
    TakahashiMatsuyama,
}

/// Runs the selected Steiner algorithm. See the per-algorithm functions
/// for the contract ([`mehlhorn_steiner`] documents it in full).
pub fn steiner_tree<W>(
    algorithm: SteinerAlgorithm,
    g: &Graph,
    terminals: &[NodeId],
    weight: W,
) -> Result<SteinerTree>
where
    W: Fn(NodeId, NodeId) -> f64,
{
    match algorithm {
        SteinerAlgorithm::Mehlhorn => mehlhorn_steiner(g, terminals, weight),
        SteinerAlgorithm::KouMarkowskyBerman => kou_markowsky_berman(g, terminals, weight),
        SteinerAlgorithm::TakahashiMatsuyama => takahashi_matsuyama(g, terminals, weight),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::generators::structured;

    #[test]
    fn dispatcher_reaches_every_algorithm() {
        let g = structured::grid(4, 4, false);
        let q = [0u32, 15];
        for alg in [
            SteinerAlgorithm::Mehlhorn,
            SteinerAlgorithm::KouMarkowskyBerman,
            SteinerAlgorithm::TakahashiMatsuyama,
        ] {
            let t = steiner_tree(alg, &g, &q, |_, _| 1.0).unwrap();
            assert!(t.validate());
            // |Q| = 2 → all three return a shortest path of length 6.
            assert_eq!(t.total_weight, 6.0, "{alg:?}");
        }
    }

    #[test]
    fn default_is_mehlhorn() {
        assert_eq!(SteinerAlgorithm::default(), SteinerAlgorithm::Mehlhorn);
    }
}
