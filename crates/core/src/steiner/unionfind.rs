//! Disjoint-set union (union-find) with union by rank and path halving.
//!
//! Used by Kruskal's MST inside Mehlhorn's Steiner approximation, and by
//! the greedy baselines' incremental "is Q connected yet?" checks.

/// Disjoint-set forest over `0..len`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    /// Number of disjoint sets remaining.
    num_sets: usize,
}

impl UnionFind {
    /// `len` singleton sets.
    pub fn new(len: usize) -> Self {
        UnionFind {
            parent: (0..len as u32).collect(),
            rank: vec![0; len],
            num_sets: len,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Representative of `x`'s set (path halving).
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `false` if already merged.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.num_sets -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_union_find() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_sets(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.num_sets(), 3);
        assert!(uf.same(0, 1));
        assert!(!uf.same(0, 2));
        assert!(uf.union(1, 3));
        assert!(uf.same(0, 2));
        assert_eq!(uf.num_sets(), 2);
    }

    #[test]
    fn chain_unions_collapse() {
        let n = 1000;
        let mut uf = UnionFind::new(n);
        for i in 1..n as u32 {
            uf.union(i - 1, i);
        }
        assert_eq!(uf.num_sets(), 1);
        let root = uf.find(0);
        for i in 0..n as u32 {
            assert_eq!(uf.find(i), root);
        }
    }

    #[test]
    fn empty_and_len() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(UnionFind::new(3).len(), 3);
    }
}
