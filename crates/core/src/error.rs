//! Error type for the solver crate.

use std::fmt;

use mwc_graph::GraphError;

/// Convenience alias for `Result<T, CoreError>`.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors produced by the Wiener-connector solvers.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// The query set is empty.
    EmptyQuery,
    /// The query vertices do not lie in a single connected component, so no
    /// connector exists.
    QueryNotConnectable,
    /// An underlying graph error (e.g. a query vertex out of range).
    Graph(GraphError),
    /// The instance exceeds a solver-specific limit (e.g. the exact
    /// enumeration solver only handles graphs with at most 64 vertices).
    UnsupportedInstance {
        /// Description of the violated limit.
        what: String,
    },
    /// An error from the LP/MIP machinery backing the §5 bounds.
    Lp(mwc_lp::LpError),
    /// A [`QueryEngine`](crate::engine::QueryEngine) lookup named a solver
    /// that is not registered.
    UnknownSolver {
        /// The requested registry key.
        requested: String,
        /// The registered keys, deterministically sorted.
        available: Vec<String>,
    },
    /// The solution exceeded the size budget set via
    /// [`QueryOptions::max_connector_size`](crate::engine::QueryOptions::max_connector_size).
    BudgetExceeded {
        /// Size of the connector the solver produced.
        size: usize,
        /// The configured budget it violated.
        budget: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::EmptyQuery => write!(f, "query set is empty"),
            CoreError::QueryNotConnectable => {
                write!(
                    f,
                    "query vertices span multiple connected components; no connector exists"
                )
            }
            CoreError::Graph(e) => write!(f, "{e}"),
            CoreError::UnsupportedInstance { what } => write!(f, "unsupported instance: {what}"),
            CoreError::Lp(e) => write!(f, "lp solver: {e}"),
            CoreError::UnknownSolver {
                requested,
                available,
            } => write!(
                f,
                "no solver registered under {requested:?} (available: {})",
                available.join(", ")
            ),
            CoreError::BudgetExceeded { size, budget } => write!(
                f,
                "connector has {size} vertices, exceeding the size budget of {budget}"
            ),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Graph(e) => Some(e),
            CoreError::Lp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for CoreError {
    fn from(e: GraphError) -> Self {
        CoreError::Graph(e)
    }
}

impl From<mwc_lp::LpError> for CoreError {
    fn from(e: mwc_lp::LpError) -> Self {
        CoreError::Lp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(CoreError::EmptyQuery.to_string().contains("empty"));
        assert!(CoreError::QueryNotConnectable
            .to_string()
            .contains("component"));
        let e: CoreError = GraphError::Disconnected.into();
        assert!(matches!(e, CoreError::Graph(_)));
    }
}
