//! Solving the §5 integer programs with the from-scratch [`mwc_lp`]
//! solver — the reproduction of the paper's Gurobi runs behind Table 2.
//!
//! The paper computes a lower bound `GL` on the optimal Wiener index by
//! solving Program 7 (the tree-based relaxation whose objective measures
//! distances in the *input* graph) with lazily-added cycle-elimination
//! constraints, and an upper bound `GU` by warm-starting the solver with
//! the `ws-q` solution. This module supplies the same machinery:
//!
//! * [`to_lp`] — converts a [`IntegerProgram`] (§5 formulation) into an
//!   [`LpProblem`], relaxing binaries to `[0, 1]`;
//! * [`program7_bounds`] — the cutting-plane loop: solve the LP
//!   relaxation, separate violated cycle constraints (a minimum-weight
//!   cycle search on `1 − x` edge weights), re-solve, then optionally run
//!   branch-and-bound for the integral Program 7 optimum. Every
//!   intermediate value is a certified lower bound on the optimal Wiener
//!   index, so truncation by node/time limits still yields a valid `GL` —
//!   matching the paper's "ran out of memory → best lower bound so far"
//!   protocol;
//! * [`program6_exact`] — branch-and-bound on Program 6, whose optimum
//!   *equals* the minimum Wiener index (Theorem 5). Only viable on tiny
//!   graphs, where it cross-validates the subset-enumeration solver in
//!   [`crate::exact`].

use mwc_graph::hash::FxHashSet;
use mwc_graph::{Graph, NodeId};
use mwc_lp::{
    branch_and_bound, Cmp as LpCmp, LpProblem, LpSolution, LpStatus, MipConfig, MipResult,
    MipStatus, SimplexConfig, Var,
};

use crate::error::{CoreError, Result};
use crate::ilp::{flow_formulation, tree_formulation, Cmp, FlowLayout, IntegerProgram};
use crate::wsq::normalize_query;

/// Converts a §5 formulation into an LP model. Binary variables get
/// bounds `[0, 1]` (their integrality is the returned list, to be enforced
/// by [`branch_and_bound`]); continuous variables get `[0, ∞)`.
pub fn to_lp(ip: &IntegerProgram) -> Result<(LpProblem, Vec<Var>)> {
    let mut lp = LpProblem::minimize();
    let mut binaries = Vec::new();
    for (i, name) in ip.var_names.iter().enumerate() {
        let hi = if ip.binary[i] { 1.0 } else { f64::INFINITY };
        let v = lp
            .add_var(name.clone(), 0.0, hi, 0.0)
            .map_err(CoreError::from)?;
        if ip.binary[i] {
            binaries.push(v);
        }
    }
    let mut dense = vec![0.0f64; ip.num_vars()];
    for &(i, c) in &ip.objective {
        dense[i] += c;
    }
    for (i, &c) in dense.iter().enumerate() {
        if c != 0.0 {
            lp.set_objective(Var::from_index(i), c)?;
        }
    }
    for con in &ip.constraints {
        let terms: Vec<(Var, f64)> = con
            .terms
            .iter()
            .map(|&(i, c)| (Var::from_index(i), c))
            .collect();
        let op = match con.op {
            Cmp::Le => LpCmp::Le,
            Cmp::Ge => LpCmp::Ge,
            Cmp::Eq => LpCmp::Eq,
        };
        lp.add_constraint(terms, op, con.rhs)?;
    }
    Ok((lp, binaries))
}

/// Solves the LP relaxation of a §5 formulation.
pub fn lp_relaxation(ip: &IntegerProgram, config: &SimplexConfig) -> Result<LpSolution> {
    let (lp, _) = to_lp(ip)?;
    Ok(lp.solve(config)?)
}

/// Configuration of the Program 7 cutting-plane / branch-and-bound run.
#[derive(Debug, Clone)]
pub struct Program7Config {
    /// Rounds of cycle separation on the LP relaxation.
    pub max_cut_rounds: usize,
    /// Cuts added per round.
    pub cuts_per_round: usize,
    /// Whether to run branch-and-bound after the cut loop (tighter `GL`,
    /// more time).
    pub run_mip: bool,
    /// Branch-and-bound limits.
    pub mip: MipConfig,
    /// Per-LP simplex settings.
    pub simplex: SimplexConfig,
}

impl Default for Program7Config {
    fn default() -> Self {
        Program7Config {
            max_cut_rounds: 6,
            cuts_per_round: 16,
            run_mip: true,
            mip: MipConfig {
                max_nodes: 400,
                ..MipConfig::default()
            },
            simplex: SimplexConfig::default(),
        }
    }
}

/// Certified bounds produced by [`program7_bounds`].
#[derive(Debug, Clone)]
pub struct Program7Bounds {
    /// Final LP-with-cuts relaxation value.
    pub lp_bound: f64,
    /// Certified lower bound on the optimal Wiener index: the best of the
    /// LP and branch-and-bound bounds, rounded up (the Wiener index is
    /// integral).
    pub lower_bound: u64,
    /// Branch-and-bound incumbent objective, if the MIP ran and found one.
    /// This is the Program 7 optimum (or an upper bound on it), *not* an
    /// upper bound on the Wiener index.
    pub incumbent: Option<f64>,
    /// Branch-and-bound status, if it ran.
    pub mip_status: Option<MipStatus>,
    /// Cut-loop rounds executed.
    pub cut_rounds: usize,
    /// Total cycle cuts added.
    pub cuts_added: usize,
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
}

/// Runs the Program 7 cutting-plane loop (and optionally branch-and-bound)
/// for `(g, q)`, returning a certified lower bound on the minimum Wiener
/// index — the paper's `GL`.
///
/// ```
/// use mwc_core::ilp_solve::{program7_bounds, Program7Config};
/// use mwc_graph::generators::structured;
///
/// // P5 with Q = endpoints: the only connector is the whole path, and
/// // Program 7 is tight — GL equals the optimum W(P5) = 20.
/// let g = structured::path(5);
/// let bounds = program7_bounds(&g, &[0, 4], &Program7Config::default()).unwrap();
/// assert_eq!(bounds.lower_bound, 20);
/// ```
pub fn program7_bounds(g: &Graph, q: &[NodeId], config: &Program7Config) -> Result<Program7Bounds> {
    let q = normalize_query(g, q)?;
    let layout = FlowLayout::for_graph(g);
    let n = g.num_nodes();
    let arc_base = n + n * (n - 1) / 2;

    let mut cycles: Vec<Vec<NodeId>> = Vec::new();
    let mut seen: FxHashSet<Vec<NodeId>> = FxHashSet::default();
    let mut lp_bound = 0.0f64;
    let mut rounds = 0usize;

    let final_ip: IntegerProgram = loop {
        let ip = tree_formulation(g, &q, &cycles)?;
        let sol = lp_relaxation(&ip, &config.simplex)?;
        if sol.status != LpStatus::Optimal {
            // Program 7 is feasible for every connected instance (take all
            // vertices and a BFS tree) and its objective is nonnegative.
            return Err(CoreError::UnsupportedInstance {
                what: format!("program 7 relaxation reported {:?}", sol.status),
            });
        }
        lp_bound = sol.objective.max(lp_bound);
        rounds += 1;
        if rounds > config.max_cut_rounds {
            break ip;
        }
        let fresh = separate_cycles(
            g,
            &sol.x,
            &layout,
            arc_base,
            config.cuts_per_round,
            &mut seen,
        );
        if fresh.is_empty() {
            break ip;
        }
        cycles.extend(fresh);
    };

    let mut bounds = Program7Bounds {
        lp_bound,
        lower_bound: ceil_int(lp_bound),
        incumbent: None,
        mip_status: None,
        cut_rounds: rounds,
        cuts_added: cycles.len(),
        nodes: 0,
    };
    if config.run_mip {
        let (lp, bins) = to_lp(&final_ip)?;
        let res = branch_and_bound(&lp, &bins, &config.mip)?;
        bounds.nodes = res.nodes;
        bounds.mip_status = Some(res.status);
        bounds.incumbent = res.objective;
        let mip_bound = match res.status {
            // Optimal: the incumbent itself is the Program 7 optimum.
            MipStatus::Optimal => res.objective.unwrap_or(res.lower_bound),
            // Truncated: the frontier bound is still certified.
            MipStatus::Feasible | MipStatus::Unknown => res.lower_bound,
            // Infeasible/unbounded cannot happen for connected instances;
            // fall back to the LP bound rather than guessing.
            _ => f64::NEG_INFINITY,
        };
        if mip_bound.is_finite() {
            bounds.lower_bound = bounds.lower_bound.max(ceil_int(mip_bound));
            bounds.lp_bound = bounds
                .lp_bound
                .max(mip_bound.min(bounds.incumbent.unwrap_or(mip_bound)));
        }
    }
    Ok(bounds)
}

/// Solves Program 6 exactly by branch-and-bound. By Theorem 5 the optimum
/// equals the minimum Wiener index. Exponential variable counts make this
/// viable only on tiny graphs (it exists to cross-validate `crate::exact`
/// and the formulation itself).
pub fn program6_exact(g: &Graph, q: &[NodeId], mip: &MipConfig) -> Result<MipResult> {
    let (ip, _layout) = flow_formulation(g, q)?;
    let (lp, bins) = to_lp(&ip)?;
    Ok(branch_and_bound(&lp, &bins, mip)?)
}

/// Rounds a certified fractional bound up to the next integer (valid
/// because the Wiener index is integral), with a small tolerance so
/// `19.999999` becomes `20`, not `21` via floating noise.
fn ceil_int(bound: f64) -> u64 {
    if !bound.is_finite() || bound <= 0.0 {
        return 0;
    }
    (bound - 1e-6).ceil().max(0.0) as u64
}

/// Finds up to `max_cuts` cycle constraints violated by the fractional
/// arc values `x`: cycles `C` with `Σ_{(u,v) ∈ C} (x_uv + x_vu) > |C| − 1`,
/// equivalently `Σ (1 − w_e) < 1` on edge weights `w_e = x_uv + x_vu`.
/// For each edge with positive weight, the cheapest completion is a
/// shortest `u → v` path on `1 − w` costs avoiding the edge itself.
fn separate_cycles(
    g: &Graph,
    x: &[f64],
    layout: &FlowLayout,
    arc_base: usize,
    max_cuts: usize,
    seen: &mut FxHashSet<Vec<NodeId>>,
) -> Vec<Vec<NodeId>> {
    const TOL: f64 = 1e-6;
    let weight = |a: NodeId, b: NodeId| -> f64 {
        let f = layout.arc(a, b).map_or(0.0, |i| x[arc_base + i]);
        let r = layout.arc(b, a).map_or(0.0, |i| x[arc_base + i]);
        (f + r).min(1.0)
    };
    let mut cuts = Vec::new();
    for (u, v) in g.edges() {
        if cuts.len() >= max_cuts {
            break;
        }
        let w_uv = weight(u, v);
        // If any cycle edge has weight 0, the cycle sum is ≤ |C| − 1:
        // only edges carrying fractional flow can participate in a cut.
        if w_uv <= TOL {
            continue;
        }
        let Some((cost, path)) = cheapest_path_avoiding(g, u, v, weight) else {
            continue;
        };
        if cost + (1.0 - w_uv) < 1.0 - TOL && path.len() >= 3 {
            let mut key = path.clone();
            key.sort_unstable();
            if seen.insert(key) {
                cuts.push(path);
            }
        }
    }
    cuts
}

/// Dijkstra on `1 − w` edge costs from `u` to `v`, not using the edge
/// `{u, v}` itself. Dense `O(n²)` scan — separation runs on the small
/// graphs where Program 7 is tractable at all.
fn cheapest_path_avoiding(
    g: &Graph,
    u: NodeId,
    v: NodeId,
    weight: impl Fn(NodeId, NodeId) -> f64,
) -> Option<(f64, Vec<NodeId>)> {
    let n = g.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent = vec![mwc_graph::NO_NODE; n];
    let mut done = vec![false; n];
    dist[u as usize] = 0.0;
    for _ in 0..n {
        let cur = (0..n)
            .filter(|&i| !done[i] && dist[i].is_finite())
            .min_by(|&a, &b| dist[a].total_cmp(&dist[b]))?;
        if cur == v as usize {
            break;
        }
        done[cur] = true;
        for &nb in g.neighbors(cur as NodeId) {
            if (cur as NodeId == u && nb == v) || (cur as NodeId == v && nb == u) {
                continue; // the avoided edge
            }
            let cost = dist[cur] + (1.0 - weight(cur as NodeId, nb)).max(0.0);
            if cost < dist[nb as usize] {
                dist[nb as usize] = cost;
                parent[nb as usize] = cur as NodeId;
            }
        }
    }
    if !dist[v as usize].is_finite() {
        return None;
    }
    let mut path = vec![v];
    let mut cur = v;
    while cur != u {
        cur = parent[cur as usize];
        if cur == mwc_graph::NO_NODE {
            return None;
        }
        path.push(cur);
    }
    path.reverse();
    Some((dist[v as usize], path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{exact_minimum, ExactConfig};
    use mwc_graph::generators::structured;
    use rand::SeedableRng;

    fn quick_config() -> Program7Config {
        Program7Config {
            max_cut_rounds: 4,
            cuts_per_round: 8,
            run_mip: true,
            mip: MipConfig {
                max_nodes: 200,
                ..MipConfig::default()
            },
            simplex: SimplexConfig::default(),
        }
    }

    #[test]
    fn path_graph_bound_is_tight() {
        // P5, Q = endpoints: the only connector is the whole path, and
        // Program 7 distances coincide with induced ones → GL = W = 20.
        let g = structured::path(5);
        let b = program7_bounds(&g, &[0, 4], &quick_config()).unwrap();
        assert_eq!(b.lower_bound, 20);
        assert_eq!(b.mip_status, Some(MipStatus::Optimal));
    }

    #[test]
    fn star_graph_bound_is_tight() {
        // Star with 5 leaves (center 0), Q = two leaves: optimum is
        // {leaf, center, leaf} with W = 1 + 1 + 2 = 4.
        let g = structured::star(5);
        let b = program7_bounds(&g, &[1, 2], &quick_config()).unwrap();
        assert_eq!(b.lower_bound, 4);
        let exact = exact_minimum(&g, &[1, 2], None, &ExactConfig::default()).unwrap();
        assert_eq!(exact.wiener_index, 4);
    }

    #[test]
    fn cycle_graph_bound_matches_exact() {
        // C6, Q = antipodal: either half-path is optimal, W = 10.
        let g = structured::cycle(6);
        let exact = exact_minimum(&g, &[0, 3], None, &ExactConfig::default()).unwrap();
        assert_eq!(exact.wiener_index, 10);
        let b = program7_bounds(&g, &[0, 3], &quick_config()).unwrap();
        assert!(b.lower_bound <= 10, "GL {} exceeds optimum", b.lower_bound);
        assert_eq!(b.lower_bound, 10, "Program 7 is tight on C6");
    }

    #[test]
    fn lower_bound_never_exceeds_exact_optimum_on_random_graphs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let mut checked = 0;
        while checked < 5 {
            let g = mwc_graph::generators::gnm(9, 14, &mut rng);
            let Ok((g, _)) = mwc_graph::connectivity::largest_component_graph(&g) else {
                continue;
            };
            let n = g.num_nodes() as NodeId;
            if n < 5 {
                continue;
            }
            let q = vec![0, n / 2, n - 1];
            let exact = exact_minimum(&g, &q, None, &ExactConfig::default()).unwrap();
            let b = program7_bounds(&g, &q, &quick_config()).unwrap();
            assert!(
                b.lower_bound <= exact.wiener_index,
                "GL {} > OPT {} on n={} m={}",
                b.lower_bound,
                exact.wiener_index,
                g.num_nodes(),
                g.num_edges()
            );
            checked += 1;
        }
    }

    #[test]
    fn cuts_never_loosen_the_lp_bound() {
        let g = structured::figure2_graph(5);
        let q: Vec<NodeId> = (0..5).collect();
        let no_cuts = Program7Config {
            max_cut_rounds: 0,
            run_mip: false,
            ..quick_config()
        };
        let with_cuts = Program7Config {
            run_mip: false,
            ..quick_config()
        };
        let weak = program7_bounds(&g, &q, &no_cuts).unwrap();
        let strong = program7_bounds(&g, &q, &with_cuts).unwrap();
        assert!(strong.lp_bound >= weak.lp_bound - 1e-6);
    }

    #[test]
    fn program6_mip_equals_exact_optimum_on_tiny_graphs() {
        // Theorem 5 end-to-end: branch-and-bound on the flow formulation
        // recovers the exact minimum Wiener index.
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let mut checked = 0;
        while checked < 3 {
            let g = mwc_graph::generators::gnm(6, 8, &mut rng);
            let Ok((g, _)) = mwc_graph::connectivity::largest_component_graph(&g) else {
                continue;
            };
            let n = g.num_nodes() as NodeId;
            if n < 4 {
                continue;
            }
            let q = vec![0, n - 1];
            let exact = exact_minimum(&g, &q, None, &ExactConfig::default()).unwrap();
            let res = program6_exact(&g, &q, &MipConfig::default()).unwrap();
            assert_eq!(res.status, MipStatus::Optimal);
            let obj = res.objective.unwrap();
            assert!(
                (obj - exact.wiener_index as f64).abs() < 1e-6,
                "Program 6 MIP {} != exact {} (n={}, m={})",
                obj,
                exact.wiener_index,
                g.num_nodes(),
                g.num_edges()
            );
            checked += 1;
        }
    }

    #[test]
    fn singleton_query_bound_is_zero() {
        let g = structured::path(4);
        let b = program7_bounds(&g, &[2], &quick_config()).unwrap();
        assert_eq!(b.lower_bound, 0);
    }

    #[test]
    fn ceil_int_handles_float_noise() {
        assert_eq!(ceil_int(19.9999995), 20);
        assert_eq!(ceil_int(20.0000004), 20);
        assert_eq!(ceil_int(20.3), 21);
        assert_eq!(ceil_int(0.0), 0);
        assert_eq!(ceil_int(-3.0), 0);
        assert_eq!(ceil_int(f64::NEG_INFINITY), 0);
    }
}
