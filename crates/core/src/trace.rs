//! Lock-free span recording for end-to-end request tracing.
//!
//! A [`TraceRecorder`] is a fixed-capacity, append-only arena of span
//! records shared across every stage a request passes through (server
//! admission → coalesce window → engine → ws-q pipeline → kernel).
//! Writers claim a slot with one atomic `fetch_add` and publish the
//! finished record through a `OnceLock`, so recording never takes a
//! lock and never blocks another stage. When the arena is full further
//! spans are counted as dropped rather than reallocating — a trace is
//! diagnostic output, not ground truth.
//!
//! A [`TraceContext`] is the per-request handle threaded through
//! `QueryOptions`: either disabled (a `None` recorder — the common
//! case, costing one branch per stage) or carrying the recorder plus
//! the span id that new spans should attach to as children.
//!
//! All timestamps are monotonic-clock offsets (microseconds) from the
//! recorder's origin, which the creating layer pins to the moment the
//! request was read off the wire.

use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Sentinel parent id for root spans.
pub const NO_PARENT: u32 = u32::MAX;

/// Maximum spans retained per request. Plenty for the serving
/// pipeline (a traced solve emits ~10); batches that overflow simply
/// report a non-zero dropped count.
pub const MAX_SPANS: usize = 256;

/// One finished span: a named interval with a parent pointer and
/// optional stage counters (lanes, sweeps, candidates, ...).
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Slot index in the recorder; doubles as the span id.
    pub id: u32,
    /// Parent span id, or [`NO_PARENT`] for the request root.
    pub parent: u32,
    /// Static stage tag (`"root_sweep"`, `"feasibility"`, ...).
    pub name: &'static str,
    /// Microseconds from the recorder origin to span start.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Stage counters attached by the emitting layer.
    pub counters: Vec<(&'static str, u64)>,
}

/// Fixed-capacity lock-free span arena for one request.
pub struct TraceRecorder {
    origin: Instant,
    next: AtomicU32,
    dropped: AtomicU32,
    slots: Box<[OnceLock<SpanRecord>]>,
}

impl TraceRecorder {
    /// New recorder whose origin is `origin` (usually the instant the
    /// request was read off the wire, so span offsets line up with
    /// wall-clock request latency).
    pub fn with_origin(origin: Instant) -> Arc<Self> {
        let slots = (0..MAX_SPANS).map(|_| OnceLock::new()).collect();
        Arc::new(TraceRecorder {
            origin,
            next: AtomicU32::new(0),
            dropped: AtomicU32::new(0),
            slots,
        })
    }

    /// New recorder with origin = now.
    pub fn new() -> Arc<Self> {
        Self::with_origin(Instant::now())
    }

    /// The instant span offsets are measured from.
    pub fn origin(&self) -> Instant {
        self.origin
    }

    /// Microseconds from the origin to `t` (0 if `t` precedes it).
    pub fn offset_us(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.origin).as_micros() as u64
    }

    /// Claim a span id without publishing its record yet. Used by
    /// layers that need to hand the id to children before the parent
    /// interval is known (the request root). Returns `None` — and
    /// counts a drop — when the arena is full.
    pub fn reserve(&self) -> Option<u32> {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        if (id as usize) < self.slots.len() {
            Some(id)
        } else {
            // Undo is not possible (another thread may have claimed
            // past us); just cap the counter drift and count the drop.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    /// Publish the record for a previously [`reserve`](Self::reserve)d id.
    pub fn complete(
        &self,
        id: u32,
        name: &'static str,
        parent: u32,
        start: Instant,
        end: Instant,
        counters: Vec<(&'static str, u64)>,
    ) {
        let Some(slot) = self.slots.get(id as usize) else {
            return;
        };
        let rec = SpanRecord {
            id,
            parent,
            name,
            start_us: self.offset_us(start),
            dur_us: end.saturating_duration_since(start).as_micros() as u64,
            counters,
        };
        // A second complete() on the same id loses the race; that is a
        // caller bug but must not panic the serving path.
        let _ = slot.set(rec);
    }

    /// Record a finished span in one shot. Returns the span id unless
    /// the arena was full.
    pub fn record(
        &self,
        name: &'static str,
        parent: u32,
        start: Instant,
        end: Instant,
        counters: Vec<(&'static str, u64)>,
    ) -> Option<u32> {
        let id = self.reserve()?;
        self.complete(id, name, parent, start, end, counters);
        Some(id)
    }

    /// Spans that could not be recorded because the arena was full.
    pub fn dropped(&self) -> u32 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Snapshot every published span, ordered by start offset (ties
    /// broken by id, i.e. claim order).
    pub fn finish(&self) -> Vec<SpanRecord> {
        let mut out: Vec<SpanRecord> = self.slots.iter().filter_map(|s| s.get().cloned()).collect();
        out.sort_by_key(|r| (r.start_us, r.id));
        out
    }
}

impl fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceRecorder")
            .field("spans", &self.next.load(Ordering::Relaxed))
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish()
    }
}

/// Per-request tracing handle: a recorder plus the parent span id for
/// spans emitted through this context. The default context is
/// disabled and every operation on it is a single branch.
#[derive(Clone, Default)]
pub struct TraceContext {
    recorder: Option<Arc<TraceRecorder>>,
    parent: u32,
}

impl TraceContext {
    /// The disabled context (same as `Default`).
    pub fn disabled() -> Self {
        TraceContext::default()
    }

    /// Context whose spans attach under `parent` (use [`NO_PARENT`]
    /// for request roots).
    pub fn attached(recorder: Arc<TraceRecorder>, parent: u32) -> Self {
        TraceContext {
            recorder: Some(recorder),
            parent,
        }
    }

    /// Is tracing active for this request?
    pub fn enabled(&self) -> bool {
        self.recorder.is_some()
    }

    /// The shared recorder, when tracing is active.
    pub fn recorder(&self) -> Option<&Arc<TraceRecorder>> {
        self.recorder.as_ref()
    }

    /// Parent span id spans emitted through this context attach to.
    pub fn parent(&self) -> u32 {
        self.parent
    }

    /// A context emitting under a different parent span.
    pub fn child_of(&self, parent: u32) -> Self {
        TraceContext {
            recorder: self.recorder.clone(),
            parent,
        }
    }

    /// Record a finished interval under this context's parent.
    pub fn record(&self, name: &'static str, start: Instant, end: Instant) -> Option<u32> {
        self.record_with(name, start, end, Vec::new())
    }

    /// Record a finished interval with counters.
    pub fn record_with(
        &self,
        name: &'static str,
        start: Instant,
        end: Instant,
        counters: Vec<(&'static str, u64)>,
    ) -> Option<u32> {
        let rec = self.recorder.as_ref()?;
        rec.record(name, self.parent, start, end, counters)
    }

    /// Start a scoped span. Disabled contexts return an inert guard
    /// without reading the clock.
    pub fn span(&self, name: &'static str) -> Span {
        Span {
            ctx: self.clone(),
            name,
            start: self.recorder.as_ref().map(|_| Instant::now()),
            counters: Vec::new(),
        }
    }
}

impl fmt::Debug for TraceContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceContext")
            .field("enabled", &self.enabled())
            .field("parent", &self.parent)
            .finish()
    }
}

/// RAII span guard: records the interval from construction to drop
/// (or [`finish`](Span::finish)). Inert when tracing is disabled.
#[derive(Debug)]
pub struct Span {
    ctx: TraceContext,
    name: &'static str,
    start: Option<Instant>,
    counters: Vec<(&'static str, u64)>,
}

impl Span {
    /// Attach a counter to the span (no-op when disabled).
    pub fn counter(&mut self, name: &'static str, value: u64) {
        if self.start.is_some() {
            self.counters.push((name, value));
        }
    }

    /// End the span now and return its id (None when disabled or the
    /// recorder is full).
    pub fn finish(mut self) -> Option<u32> {
        self.close(Instant::now())
    }

    fn close(&mut self, end: Instant) -> Option<u32> {
        let start = self.start.take()?;
        self.ctx
            .record_with(self.name, start, end, std::mem::take(&mut self.counters))
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.start.is_some() {
            self.close(Instant::now());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn records_spans_with_parents_and_counters() {
        let rec = TraceRecorder::new();
        let root = rec.reserve().unwrap();
        let ctx = TraceContext::attached(rec.clone(), root);

        let t0 = rec.origin();
        let t1 = t0 + Duration::from_micros(100);
        let t2 = t0 + Duration::from_micros(400);
        let child = ctx.record("feasibility", t1, t2).unwrap();
        rec.complete(
            root,
            "solve",
            NO_PARENT,
            t0,
            t0 + Duration::from_micros(500),
            vec![("roots", 3)],
        );

        let spans = rec.finish();
        assert_eq!(spans.len(), 2);
        let root_span = spans.iter().find(|s| s.id == root).unwrap();
        assert_eq!(root_span.parent, NO_PARENT);
        assert_eq!(root_span.name, "solve");
        assert_eq!(root_span.start_us, 0);
        assert_eq!(root_span.dur_us, 500);
        assert_eq!(root_span.counters, vec![("roots", 3)]);
        let child_span = spans.iter().find(|s| s.id == child).unwrap();
        assert_eq!(child_span.parent, root);
        assert_eq!(child_span.start_us, 100);
        assert_eq!(child_span.dur_us, 300);
    }

    #[test]
    fn full_recorder_counts_drops() {
        let rec = TraceRecorder::new();
        let ctx = TraceContext::attached(rec.clone(), NO_PARENT);
        let t0 = rec.origin();
        for _ in 0..MAX_SPANS {
            assert!(ctx.record("s", t0, t0).is_some());
        }
        assert!(ctx.record("overflow", t0, t0).is_none());
        assert!(ctx.record("overflow", t0, t0).is_none());
        assert_eq!(rec.dropped(), 2);
        assert_eq!(rec.finish().len(), MAX_SPANS);
    }

    #[test]
    fn disabled_context_is_inert() {
        let ctx = TraceContext::disabled();
        assert!(!ctx.enabled());
        let mut span = ctx.span("anything");
        span.counter("n", 1);
        assert!(span.finish().is_none());
        assert!(ctx.record("x", Instant::now(), Instant::now()).is_none());
    }

    #[test]
    fn scoped_span_records_on_drop() {
        let rec = TraceRecorder::new();
        let ctx = TraceContext::attached(rec.clone(), NO_PARENT);
        {
            let mut span = ctx.span("scoped");
            span.counter("lanes", 64);
        }
        let spans = rec.finish();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "scoped");
        assert_eq!(spans[0].counters, vec![("lanes", 64)]);
    }

    #[test]
    fn concurrent_recording_is_lossless_up_to_capacity() {
        let rec = TraceRecorder::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let ctx = TraceContext::attached(rec.clone(), NO_PARENT);
                let origin = rec.origin();
                s.spawn(move || {
                    for _ in 0..16 {
                        ctx.record("worker", origin, origin);
                    }
                });
            }
        });
        assert_eq!(rec.finish().len(), 128);
        assert_eq!(rec.dropped(), 0);
    }
}
