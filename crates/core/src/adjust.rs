//! `AdjustDistances` — the distance-balancing post-processing step of
//! Algorithm 1 (paper Appendix A.3, Lemma 2), adapted from Khuller,
//! Raghavachari & Young's LAST construction ("Balancing minimum spanning
//! trees and shortest-path trees", Algorithmica 1995).
//!
//! Given a subtree `T` of `G` and a root `r`, the algorithm DFS-traverses
//! `T` maintaining a distance estimate `d[·]` from `r`; whenever a vertex
//! `u` drifts beyond `(1 + √2) · d_G(r, u)`, the shortest path from `r` to
//! `u` (along the BFS tree of `G`) is grafted in. The output tree `T'`
//! satisfies (Lemma 2):
//!
//! * (a) `V(T') ⊇ V(T)`;
//! * (b) `|V(T')| ≤ (1 + √2) · |V(T)|`;
//! * (c) `d_{T'}(r, v) ≤ (1 + √2) · d_G(r, v)` for all `v ∈ V(T')`;
//! * (d) `Σ_{v ∈ V(T')} d_G(r, v) ≤ √2 · Σ_{v ∈ V(T)} d_G(r, v)`.
//!
//! These are exactly the properties Corollary 2 needs to convert a good
//! `Ã(T, r)` (distances in `G`) into a good `A(T', r)` (distances inside
//! the solution). All four are enforced by tests below.
//!
//! One transcription note: Algorithm 4 in the paper relaxes
//! `relax(p_S[v], v)` while walking *up* the BFS parent chain, which can
//! relax against a vertex whose estimate is still `∞`. We therefore walk up
//! first (until an ancestor with a tight estimate `d[v] = d_S[v]` is found —
//! at worst the root) and then relax *downward* along the chain, which is
//! the order Khuller et al.'s Lemma 3.2 argument actually uses. The
//! estimates `d` only ever store lengths of real walks from `r` in `G`, so
//! `d[v] ≥ d_S[v]` throughout and the upward walk terminates.

use mwc_graph::hash::FxHashMap;
use mwc_graph::{Graph, NodeId, NO_NODE};

use crate::steiner::SteinerTree;

/// The balancing threshold `α = 1 + √2`.
pub const ALPHA: f64 = 1.0 + std::f64::consts::SQRT_2;

/// State of the relaxation: per-vertex distance estimate and tree parent,
/// over global ids (hash maps — the tree is small relative to `G`).
///
/// The BFS parent tree is consulted through a closure, not an array: the
/// batched solvers derive parents **on demand** from distance arrays
/// (`canonical_parent`'s lowest-id rule), and `AddPath` only ever touches
/// `O(|V(T')| · diameter)` chain vertices — materializing all `|V|`
/// parents per root would cost an extra `O(|V| + |E|)` pass and eat the
/// multi-source batching win.
struct Relaxation<'a, P> {
    d: FxHashMap<NodeId, u32>,
    p: FxHashMap<NodeId, NodeId>,
    dist_g: &'a [u32],
    parent_g: P,
    g: &'a Graph,
}

impl<P: Fn(NodeId) -> NodeId> Relaxation<'_, P> {
    #[inline]
    fn dist(&self, v: NodeId) -> u32 {
        self.d.get(&v).copied().unwrap_or(u32::MAX)
    }

    /// `relax(u, v)`: improves `d[v]` through the `G`-edge `(u, v)`.
    /// On weighted graphs the edge contributes its weight (the `d` and
    /// `dist_g` arrays then hold weighted distances); unweighted graphs
    /// keep the hop count (`edge_weight` is 1 without a lookup).
    #[inline]
    fn relax(&mut self, u: NodeId, v: NodeId) {
        let du = self.dist(u);
        debug_assert_ne!(du, u32::MAX, "relaxing from an unlabelled vertex");
        let cand = du.saturating_add(self.g.edge_weight(u, v));
        if self.dist(v) > cand {
            self.d.insert(v, cand);
            self.p.insert(v, u);
        }
    }

    /// `AddPath(u)`: grafts the `G`-shortest path from `r` to `u`.
    ///
    /// Walks the BFS-parent chain upward until an ancestor with a tight
    /// estimate (`d[v] = d_S[v]`), then relaxes downward, leaving every
    /// chain vertex with `d[v] = d_S[v]`. Each chain vertex's parent is
    /// resolved exactly once and remembered for the downward replay —
    /// the lookup may be an `O(deg)` on-demand derivation.
    fn add_path(&mut self, u: NodeId) {
        let mut chain: Vec<(NodeId, NodeId)> = Vec::new();
        let mut v = u;
        while self.dist(v) > self.dist_g[v as usize] {
            let p = (self.parent_g)(v);
            debug_assert_ne!(p, NO_NODE, "BFS parent chain must reach the root");
            chain.push((v, p));
            v = p;
        }
        for &(w, pw) in chain.iter().rev() {
            self.relax(pw, w);
            debug_assert_eq!(self.dist(w), self.dist_g[w as usize]);
        }
    }
}

/// Adjusts `tree` (a subtree of `g` containing `root`) so that distances
/// from `root` inside the output tree are within `1 + √2` of the distances
/// in `g`, per Lemma 2.
///
/// `dist_g` / `parent_g` are the BFS distances and parents from `root` in
/// `g` (Algorithm 1 already has them for every query vertex). Runs in
/// `O(|V(T')|)`.
///
/// # Panics
/// Panics (in debug builds) if `root` is not a tree vertex or the tree
/// touches vertices unreachable from `root` — neither occurs when called
/// from Algorithm 1, where the tree spans `Q` in `root`'s component.
pub fn adjust_distances(
    g: &Graph,
    tree: &SteinerTree,
    root: NodeId,
    dist_g: &[u32],
    parent_g: &[NodeId],
) -> SteinerTree {
    debug_assert_eq!(parent_g.len(), g.num_nodes());
    adjust_distances_with(g, tree, root, dist_g, |v| parent_g[v as usize])
}

/// [`adjust_distances`] with the BFS parent tree supplied as a lookup
/// function instead of a materialized array.
///
/// This is the entry point the batched `ws-q` path uses: the multi-source
/// kernel produces per-root *distance* arrays only, and parents are
/// derived on demand by
/// [`canonical_parent`](mwc_graph::traversal::bfs::canonical_parent)
/// (lowest-id neighbor one level closer) — a pure function of the
/// distances, so batched and per-root solves graft identical paths. Any
/// shortest-path-tree parent function preserves Lemma 2; the canonical
/// rule additionally makes the output deterministic across kernels.
pub fn adjust_distances_with<P: Fn(NodeId) -> NodeId>(
    g: &Graph,
    tree: &SteinerTree,
    root: NodeId,
    dist_g: &[u32],
    parent_g: P,
) -> SteinerTree {
    debug_assert!(tree.contains(root), "root must belong to the tree");
    debug_assert_eq!(dist_g.len(), g.num_nodes());
    let adj = tree.adjacency();
    let mut rx = Relaxation {
        d: FxHashMap::default(),
        p: FxHashMap::default(),
        dist_g,
        parent_g,
        g,
    };
    rx.d.reserve(tree.num_nodes() * 2);
    rx.d.insert(root, 0);

    // Iterative DFS reproducing Algorithm 3's exact relaxation order:
    //   dfs(u): maybe-AddPath(u); for child v: relax(u,v); dfs(v); relax(v,u)
    struct Frame {
        u: NodeId,
        tree_parent: NodeId,
        next_child: usize,
    }
    let mut stack = vec![Frame {
        u: root,
        tree_parent: NO_NODE,
        next_child: 0,
    }];
    // Entry check for the root (trivially tight, kept for symmetry).
    if rx.dist(root) as f64 > ALPHA * dist_g[root as usize] as f64 {
        rx.add_path(root);
    }
    while let Some(frame) = stack.last_mut() {
        let u = frame.u;
        let tree_parent = frame.tree_parent;
        let child_idx = frame.next_child;
        frame.next_child += 1;
        let children = adj.get(&u).expect("tree vertex has adjacency");
        if child_idx < children.len() {
            let v = children[child_idx];
            if v == tree_parent {
                continue;
            }
            rx.relax(u, v);
            if rx.dist(v) as f64 > ALPHA * dist_g[v as usize] as f64 {
                rx.add_path(v);
            }
            stack.push(Frame {
                u: v,
                tree_parent: u,
                next_child: 0,
            });
        } else {
            stack.pop();
            if tree_parent != NO_NODE {
                rx.relax(u, tree_parent);
            }
        }
    }

    // T' = { (v, p[v]) : v labelled, v ≠ root }.
    let mut nodes: Vec<NodeId> = rx.d.keys().copied().collect();
    nodes.sort_unstable();
    let mut edges: Vec<(NodeId, NodeId)> =
        rx.p.iter()
            .map(|(&v, &pv)| (v.min(pv), v.max(pv)))
            .collect();
    edges.sort_unstable();
    edges.dedup();
    let total_weight = edges.len() as f64;
    let out = SteinerTree {
        nodes,
        edges,
        total_weight,
    };
    debug_assert!(out.validate(), "adjusted output must be a tree");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::steiner::mehlhorn_steiner;
    use mwc_graph::generators::{barabasi_albert, gnm, structured};
    use mwc_graph::traversal::bfs::bfs_parents;
    use mwc_graph::wiener;
    use rand::{Rng, SeedableRng};

    const UNIT: fn(NodeId, NodeId) -> f64 = |_, _| 1.0;

    /// Distances from `root` inside a tree (BFS over the tree adjacency).
    fn tree_distances(tree: &SteinerTree, root: NodeId) -> FxHashMap<NodeId, u32> {
        let adj = tree.adjacency();
        let mut dist: FxHashMap<NodeId, u32> = FxHashMap::default();
        dist.insert(root, 0);
        let mut queue = vec![root];
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            let du = dist[&u];
            for &v in &adj[&u] {
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(v) {
                    e.insert(du + 1);
                    queue.push(v);
                }
            }
        }
        dist
    }

    fn check_lemma2(g: &Graph, tree: &SteinerTree, root: NodeId) -> SteinerTree {
        let bfs = bfs_parents(g, root);
        let out = adjust_distances(g, tree, root, &bfs.dist, &bfs.parent);
        assert!(out.validate());
        // (a) node superset
        for &v in &tree.nodes {
            assert!(out.contains(v), "(a) lost vertex {v}");
        }
        // (b) bounded growth
        assert!(
            out.num_nodes() as f64 <= ALPHA * tree.num_nodes() as f64 + 1e-9,
            "(b) grew from {} to {}",
            tree.num_nodes(),
            out.num_nodes()
        );
        // (c) stretch bound inside T'
        let dt = tree_distances(&out, root);
        assert_eq!(dt.len(), out.num_nodes(), "output tree connected");
        for (&v, &d_in_tree) in &dt {
            let d_g = bfs.dist[v as usize] as f64;
            assert!(
                d_in_tree as f64 <= ALPHA * d_g + 1e-9,
                "(c) vertex {v}: tree dist {d_in_tree} vs {} in G",
                bfs.dist[v as usize]
            );
        }
        // (d) total distance growth
        let sum =
            |nodes: &[NodeId]| -> u64 { nodes.iter().map(|&v| bfs.dist[v as usize] as u64).sum() };
        assert!(
            sum(&out.nodes) as f64 <= std::f64::consts::SQRT_2 * sum(&tree.nodes) as f64 + 1e-9,
            "(d) distance sum grew too much"
        );
        out
    }

    #[test]
    fn identity_on_shortest_path_trees() {
        // A BFS tree is already balanced: no vertices should be added.
        let g = structured::grid(6, 6, false);
        let bfs = bfs_parents(&g, 0);
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        for v in 1..g.num_nodes() as NodeId {
            let p = bfs.parent[v as usize];
            edges.push((v.min(p), v.max(p)));
        }
        edges.sort_unstable();
        let tree = SteinerTree {
            nodes: (0..g.num_nodes() as NodeId).collect(),
            edges,
            total_weight: (g.num_nodes() - 1) as f64,
        };
        let out = check_lemma2(&g, &tree, 0);
        assert_eq!(out.num_nodes(), tree.num_nodes());
    }

    #[test]
    fn grafts_shortcut_on_a_long_detour() {
        // Cycle C_12: the tree is the long way around from the root; vertices
        // opposite the root violate the α-bound and force a graft.
        let g = structured::cycle(12);
        // Tree = path 0-11-10-...-1 (the "wrong way" spanning tree).
        let mut edges: Vec<(NodeId, NodeId)> = vec![(0, 11)];
        for v in 1..11u32 {
            edges.push((v, v + 1));
        }
        let mut nodes: Vec<NodeId> = (0..12).collect();
        nodes.sort_unstable();
        let tree = SteinerTree {
            nodes,
            edges,
            total_weight: 11.0,
        };
        assert!(tree.validate());
        let out = check_lemma2(&g, &tree, 0);
        // The graft along 0→1→2… must bring distance of vertex ~5 below α·5.
        let dt = tree_distances(&out, 0);
        assert!(dt[&5] <= ((ALPHA * 5.0).floor()) as u32);
    }

    #[test]
    fn lemma2_holds_on_random_steiner_trees() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        for round in 0..20 {
            let g = if round % 2 == 0 {
                barabasi_albert(150, 2, &mut rng)
            } else {
                let raw = gnm(150, 280, &mut rng);
                mwc_graph::connectivity::largest_component_graph(&raw)
                    .unwrap()
                    .0
            };
            let n = g.num_nodes() as NodeId;
            let terms: Vec<NodeId> = (0..6).map(|_| rng.gen_range(0..n)).collect();
            let tree = mehlhorn_steiner(&g, &terms, UNIT).unwrap();
            let root = terms[0];
            check_lemma2(&g, &tree, root);
        }
    }

    #[test]
    fn output_is_subgraph_of_g() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let g = barabasi_albert(100, 3, &mut rng);
        let terms: Vec<NodeId> = vec![0, 40, 80, 99];
        let tree = mehlhorn_steiner(&g, &terms, UNIT).unwrap();
        let bfs = bfs_parents(&g, terms[0]);
        let out = adjust_distances(&g, &tree, terms[0], &bfs.dist, &bfs.parent);
        for &(u, v) in &out.edges {
            assert!(g.has_edge(u, v), "edge ({u},{v}) not in G");
        }
    }

    #[test]
    fn adjusted_set_remains_connected_induced() {
        // The induced subgraph over the adjusted vertex set is what ws-q
        // finally evaluates; it must be connected (it contains the tree).
        let mut rng = rand::rngs::StdRng::seed_from_u64(37);
        let g = barabasi_albert(200, 2, &mut rng);
        let terms: Vec<NodeId> = vec![3, 77, 150, 199];
        let tree = mehlhorn_steiner(&g, &terms, UNIT).unwrap();
        let bfs = bfs_parents(&g, terms[1]);
        let out = adjust_distances(&g, &tree, terms[1], &bfs.dist, &bfs.parent);
        let w = wiener::wiener_index_of_subset(&g, &out.nodes).unwrap();
        assert!(w.is_some(), "induced subgraph disconnected");
    }

    #[test]
    fn weighted_graft_respects_weighted_stretch_bound() {
        // Weighted cycle: light side 0 -1- 1 -1- 2, heavy side
        // 0 -10- 4 -10- 3 -10- 2. The tree takes the heavy way around, so
        // vertex 2 sits at weighted tree-distance 30 against d_G(0,2) = 2
        // — far beyond α·2 — and the light path must be grafted in.
        let g = Graph::from_weighted_edges(
            5,
            &[(0, 1, 1), (1, 2, 1), (0, 4, 10), (4, 3, 10), (3, 2, 10)],
        )
        .unwrap();
        let tree = SteinerTree {
            nodes: vec![0, 2, 3, 4],
            edges: vec![(0, 4), (2, 3), (3, 4)],
            total_weight: 3.0,
        };
        assert!(tree.validate());
        let mut ws = mwc_graph::traversal::delta::DeltaWorkspace::new();
        let dist: Vec<u32> = ws.run(&g, 0).to_vec();
        assert_eq!(dist, vec![0, 1, 2, 12, 10]);
        let out = adjust_distances_with(&g, &tree, 0, &dist, |v| {
            mwc_graph::traversal::bfs::canonical_parent(&g, &dist, v)
        });
        assert!(out.validate());
        // (a) superset, and the light path's interior vertex was added.
        for &v in &tree.nodes {
            assert!(out.contains(v), "(a) lost vertex {v}");
        }
        assert!(out.contains(1), "graft must pull in vertex 1");
        // (c) weighted distances inside the output tree within α of d_G.
        let adj = out.adjacency();
        let mut dt: FxHashMap<NodeId, u32> = FxHashMap::default();
        dt.insert(0, 0);
        let mut frontier = vec![0u32];
        while let Some(u) = frontier.pop() {
            let du = dt[&u];
            for &v in &adj[&u] {
                let cand = du + g.edge_weight(u, v);
                if dt.get(&v).is_none_or(|&cur| cand < cur) {
                    dt.insert(v, cand);
                    frontier.push(v);
                }
            }
        }
        assert_eq!(dt.len(), out.num_nodes());
        for (&v, &d_in_tree) in &dt {
            assert!(
                d_in_tree as f64 <= ALPHA * dist[v as usize] as f64 + 1e-9,
                "(c) vertex {v}: {d_in_tree} vs {} in G",
                dist[v as usize]
            );
        }
        for &(u, v) in &out.edges {
            assert!(g.has_edge(u, v), "edge ({u},{v}) not in G");
        }
    }

    #[test]
    fn singleton_tree_passes_through() {
        let g = structured::path(4);
        let tree = SteinerTree::singleton(2);
        let bfs = bfs_parents(&g, 2);
        let out = adjust_distances(&g, &tree, 2, &bfs.dist, &bfs.parent);
        assert_eq!(out.nodes, vec![2]);
        assert!(out.edges.is_empty());
    }
}
