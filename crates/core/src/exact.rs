//! Exact algorithms for small instances.
//!
//! §3 of the paper shows Min Wiener Connector is polynomial for constant
//! `|Q|` (impractically so — `n^{poly(|Q|)}`) and trivial for `|Q| = 2`
//! (any shortest path is optimal on unweighted graphs). §6.2 certifies the
//! approximation quality of `ws-q` against optimal solutions / bounds on
//! small graphs via a Gurobi ILP. This module provides the from-scratch
//! substitutes used by the Table 2 reproduction:
//!
//! * [`shortest_path_connector`] — the exact `|Q| = 2` solver;
//! * [`exact_minimum`] — exhaustive subset enumeration over bitset graphs
//!   (`n ≤ 64`) with the `W(S) ≥ C(|S|, 2)` size cutoff and a subset
//!   budget, replacing the ILP's optimality certificates.
//!
//! The enumeration is exact whenever it completes within budget and before
//! the size cutoff: every connector with `C(k, 2)` below the incumbent has
//! been inspected, and any larger connector has `W ≥ C(k, 2) ≥` incumbent.

use mwc_graph::traversal::bfs::{bfs_parents, path_from_parents};
use mwc_graph::{Graph, NodeId};

use crate::connector::Connector;
use crate::error::{CoreError, Result};
use crate::wsq::normalize_query;

/// Result of the enumeration solver.
#[derive(Debug, Clone)]
pub struct ExactOutcome {
    /// Best connector found.
    pub connector: Connector,
    /// Its Wiener index.
    pub wiener_index: u64,
    /// Whether optimality was proven (enumeration completed within budget).
    pub optimal: bool,
    /// Number of vertex subsets inspected.
    pub subsets_explored: u64,
}

/// Configuration for [`exact_minimum`].
#[derive(Debug, Clone)]
pub struct ExactConfig {
    /// Abort (returning the incumbent, `optimal = false`) after inspecting
    /// this many subsets.
    pub max_subsets: u64,
}

impl Default for ExactConfig {
    fn default() -> Self {
        ExactConfig {
            max_subsets: 50_000_000,
        }
    }
}

/// Exact solver for `|Q| = 2`: returns a shortest `s`–`t` path, which is an
/// optimal Wiener connector on unweighted graphs (§3).
pub fn shortest_path_connector(g: &Graph, s: NodeId, t: NodeId) -> Result<Connector> {
    g.check_node(s)?;
    g.check_node(t)?;
    if s == t {
        return Ok(Connector::new_unchecked(g, vec![s]));
    }
    let bfs = bfs_parents(g, s);
    let path = path_from_parents(&bfs.parent, s, t).ok_or(CoreError::QueryNotConnectable)?;
    Ok(Connector::new_unchecked(g, path))
}

/// A graph over at most 64 vertices with bitset adjacency, supporting
/// `O(diameter)`-word BFS per source.
#[derive(Debug, Clone)]
pub struct BitGraph {
    n: usize,
    adj: Vec<u64>,
}

impl BitGraph {
    /// Converts a [`Graph`] with `n ≤ 64` vertices.
    pub fn from_graph(g: &Graph) -> Result<Self> {
        let n = g.num_nodes();
        if n > 64 {
            return Err(CoreError::UnsupportedInstance {
                what: format!("BitGraph supports at most 64 vertices (got {n})"),
            });
        }
        let mut adj = vec![0u64; n];
        for (u, v) in g.edges() {
            adj[u as usize] |= 1 << v;
            adj[v as usize] |= 1 << u;
        }
        Ok(BitGraph { n, adj })
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Whether the subgraph induced by `mask` is connected (empty masks
    /// count as connected).
    pub fn is_connected(&self, mask: u64) -> bool {
        if mask == 0 {
            return true;
        }
        let start = mask.trailing_zeros() as usize;
        let mut reached = 1u64 << start;
        loop {
            let mut next = reached;
            let mut frontier = reached;
            while frontier != 0 {
                let v = frontier.trailing_zeros() as usize;
                frontier &= frontier - 1;
                next |= self.adj[v] & mask;
            }
            if next == reached {
                break;
            }
            reached = next;
        }
        reached == mask
    }

    /// Wiener index of the subgraph induced by `mask`; `None` if
    /// disconnected. `O(k · diam)` word operations for `k = |mask|`.
    pub fn wiener(&self, mask: u64) -> Option<u64> {
        let k = mask.count_ones();
        if k <= 1 {
            return Some(0);
        }
        let mut total = 0u64;
        let mut sources = mask;
        while sources != 0 {
            let s = sources.trailing_zeros() as usize;
            sources &= sources - 1;
            let mut visited = 1u64 << s;
            let mut frontier = self.adj[s] & mask;
            let mut level = 1u64;
            while frontier != 0 {
                total += level * frontier.count_ones() as u64;
                visited |= frontier;
                let mut next = 0u64;
                let mut f = frontier;
                while f != 0 {
                    let v = f.trailing_zeros() as usize;
                    f &= f - 1;
                    next |= self.adj[v];
                }
                frontier = next & mask & !visited;
                level += 1;
            }
            if visited != mask {
                return None;
            }
        }
        Some(total / 2)
    }
}

/// Exhaustive exact solver for graphs with at most 64 vertices.
///
/// Enumerates vertex subsets `S ⊇ Q` by increasing size `k`; stops at the
/// first `k` with `C(k, 2) ≥` incumbent Wiener index — larger connectors
/// cannot win since every pair contributes at least 1. `initial` (e.g. the
/// `ws-q` solution, as the paper warm-starts Gurobi) tightens that cutoff
/// from the start.
pub fn exact_minimum(
    g: &Graph,
    q: &[NodeId],
    initial: Option<&Connector>,
    cfg: &ExactConfig,
) -> Result<ExactOutcome> {
    let q = normalize_query(g, q)?;
    let bg = BitGraph::from_graph(g)?;
    let n = bg.num_nodes();

    let q_mask: u64 = q.iter().fold(0u64, |m, &v| m | 1 << v);
    let mut explored = 0u64;

    // Incumbent: caller-provided warm start, else the whole graph.
    let full_mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let mut best_mask;
    let mut best_w;
    match initial {
        Some(c) => {
            let mask = c.vertices().iter().fold(0u64, |m, &v| m | 1 << v);
            debug_assert_eq!(mask & q_mask, q_mask, "warm start must contain Q");
            best_w = bg
                .wiener(mask)
                .ok_or(CoreError::Graph(mwc_graph::GraphError::Disconnected))?;
            best_mask = mask;
        }
        None => match bg.wiener(full_mask) {
            Some(w) => {
                best_w = w;
                best_mask = full_mask;
            }
            None => return Err(CoreError::QueryNotConnectable),
        },
    }

    // Candidate pool: all non-query vertices.
    let pool: Vec<u32> = (0..n as u32).filter(|&v| q_mask >> v & 1 == 0).collect();

    let mut optimal = true;
    'sizes: for k in q.len()..=n {
        // Size cutoff: any connector with k vertices has W ≥ C(k, 2).
        let floor = (k as u64) * (k as u64 - 1) / 2;
        if floor >= best_w {
            break;
        }
        let extra = k - q.len();
        if extra > pool.len() {
            break;
        }
        // Enumerate `extra`-combinations of the pool lexicographically.
        let mut idx: Vec<usize> = (0..extra).collect();
        loop {
            explored += 1;
            if explored > cfg.max_subsets {
                optimal = false;
                break 'sizes;
            }
            let mask = idx.iter().fold(q_mask, |m, &i| m | 1 << pool[i]);
            if let Some(w) = bg.wiener(mask) {
                if w < best_w {
                    best_w = w;
                    best_mask = mask;
                }
            }
            if !next_combination(&mut idx, pool.len()) {
                break;
            }
        }
    }

    let vertices: Vec<NodeId> = (0..n as u32).filter(|&v| best_mask >> v & 1 == 1).collect();
    debug_assert!(bg.is_connected(best_mask));
    Ok(ExactOutcome {
        connector: Connector::new_unchecked(g, vertices),
        wiener_index: best_w,
        optimal,
        subsets_explored: explored,
    })
}

/// Advances `idx` to the next lexicographic `k`-combination of
/// `0..pool_len`; returns `false` when exhausted. Empty combinations have
/// exactly one state.
fn next_combination(idx: &mut [usize], pool_len: usize) -> bool {
    let k = idx.len();
    for i in (0..k).rev() {
        if idx[i] < pool_len - k + i {
            idx[i] += 1;
            for j in i + 1..k {
                idx[j] = idx[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::generators::{karate::karate_club, structured};
    use mwc_graph::wiener::wiener_index_of_subset;
    use rand::{Rng, SeedableRng};

    #[test]
    fn shortest_path_connector_is_a_path() {
        let g = structured::grid(4, 4, false);
        let c = shortest_path_connector(&g, 0, 15).unwrap();
        assert_eq!(c.len(), 7); // Manhattan distance 6
        assert!(c.contains(0) && c.contains(15));
        let same = shortest_path_connector(&g, 5, 5).unwrap();
        assert_eq!(same.vertices(), &[5]);
    }

    #[test]
    fn shortest_path_unreachable_errors() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(shortest_path_connector(&g, 0, 3).is_err());
    }

    #[test]
    fn bitgraph_matches_reference_wiener() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(71);
        for _ in 0..20 {
            let g = mwc_graph::generators::gnm(14, 25, &mut rng);
            let bg = BitGraph::from_graph(&g).unwrap();
            // Random subsets.
            for _ in 0..50 {
                let mask: u64 = rng.gen_range(0..(1u64 << 14));
                let verts: Vec<NodeId> = (0..14).filter(|&v| mask >> v & 1 == 1).collect();
                let reference = wiener_index_of_subset(&g, &verts).unwrap();
                assert_eq!(bg.wiener(mask), reference, "mask {mask:b}");
                assert_eq!(
                    bg.is_connected(mask),
                    reference.is_some() || verts.len() <= 1,
                    "connectivity mask {mask:b}"
                );
            }
        }
    }

    #[test]
    fn bitgraph_rejects_large_graphs() {
        let g = structured::path(65);
        assert!(BitGraph::from_graph(&g).is_err());
    }

    #[test]
    fn exact_on_figure2_finds_142() {
        let g = structured::figure2_graph(10);
        let q: Vec<NodeId> = (0..10).collect();
        let out = exact_minimum(&g, &q, None, &ExactConfig::default()).unwrap();
        assert!(out.optimal);
        assert_eq!(out.wiener_index, 142);
        assert_eq!(out.connector.len(), 12); // whole graph
    }

    #[test]
    fn exact_q2_agrees_with_shortest_path_theorem() {
        // §3: for |Q| = 2 a shortest path is optimal; cross-check the
        // enumerator against it on random small graphs.
        let mut rng = rand::rngs::StdRng::seed_from_u64(73);
        for _ in 0..10 {
            let raw = mwc_graph::generators::gnm(16, 28, &mut rng);
            let (g, _) = mwc_graph::connectivity::largest_component_graph(&raw).unwrap();
            let n = g.num_nodes() as NodeId;
            if n < 4 {
                continue;
            }
            let (s, t) = (0, n - 1);
            let sp = shortest_path_connector(&g, s, t).unwrap();
            let sp_w = sp.wiener_index(&g).unwrap();
            let out = exact_minimum(&g, &[s, t], None, &ExactConfig::default()).unwrap();
            assert!(out.optimal);
            assert_eq!(out.wiener_index, sp_w, "graph n={n}");
        }
    }

    #[test]
    fn warm_start_never_hurts() {
        let g = karate_club();
        let q: Vec<NodeId> = vec![11, 24, 25, 29];
        let wsq = crate::wsq::minimum_wiener_connector(&g, &q).unwrap();
        let budgeted = ExactConfig {
            max_subsets: 200_000,
        };
        let cold = exact_minimum(&g, &q, None, &budgeted).unwrap();
        let warm = exact_minimum(&g, &q, Some(&wsq.connector), &budgeted).unwrap();
        assert!(warm.wiener_index <= cold.wiener_index);
        assert!(warm.wiener_index <= wsq.wiener_index);
    }

    #[test]
    fn budget_abort_reports_non_optimal() {
        let g = karate_club();
        let q: Vec<NodeId> = vec![0, 16, 26, 29, 14];
        let out = exact_minimum(&g, &q, None, &ExactConfig { max_subsets: 10 }).unwrap();
        assert!(!out.optimal);
        assert!(out.subsets_explored >= 10);
        assert!(out.connector.contains_all(&q));
    }

    #[test]
    fn exact_solution_is_lower_than_or_equal_wsq() {
        let g = karate_club();
        for q in [vec![0u32, 33], vec![11, 24, 25, 29], vec![3, 11, 16]] {
            let wsq = crate::wsq::minimum_wiener_connector(&g, &q).unwrap();
            let exact =
                exact_minimum(&g, &q, Some(&wsq.connector), &ExactConfig::default()).unwrap();
            assert!(exact.optimal, "q={q:?}");
            assert!(
                exact.wiener_index <= wsq.wiener_index,
                "exact {} vs wsq {} for {q:?}",
                exact.wiener_index,
                wsq.wiener_index
            );
            // ws-q stays within the constant-factor guarantee by a wide
            // margin in practice (§6.2 reports ≤ 1.17 on small graphs).
            assert!(
                (wsq.wiener_index as f64) <= 3.0 * exact.wiener_index as f64,
                "approximation ratio too large: {} / {}",
                wsq.wiener_index,
                exact.wiener_index
            );
        }
    }
}
