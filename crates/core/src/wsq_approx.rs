//! Approximate-distance `ws-q` — the §6.6 scale-out direction, built.
//!
//! The paper's scalability section observes that pushing Algorithm 1 to
//! very large graphs "becomes necessary to employ techniques for parallel
//! and/or approximate shortest-distance computations [52, 4, 40, 45]",
//! and leaves them beyond scope. This module implements the approximate-
//! distance variant on top of [`mwc_graph::oracle::LandmarkOracle`]:
//!
//! * the per-root single-source distances of Algorithm 1 line 1 (one BFS
//!   per query vertex, `O(|Q| (|V| + |E|))` per solve) are replaced by
//!   landmark estimates (`O(|Q| · k · |V|)` scans against a `k`-landmark
//!   oracle built once per graph and shared across queries);
//! * the `G_{r,λ}` reweighting, λ sweep, Steiner solves, and Remark 1
//!   candidate selection are unchanged;
//! * `AdjustDistances` is skipped — it needs an exact BFS tree from the
//!   root, which is precisely what this variant avoids. The theoretical
//!   guarantee consequently degrades from a constant factor to a
//!   constant factor *relative to the oracle's distortion*; empirically
//!   (see the `fig5_approx` bench) quality stays within a few percent
//!   with 16 hub landmarks.
//!
//! The estimates are upper bounds that coincide with true distances
//! whenever some landmark lies on a shortest path, so hub landmarks work
//! well exactly on the small-world graphs the paper evaluates.

use mwc_graph::oracle::{LandmarkOracle, LandmarkStrategy};
use mwc_graph::traversal::bfs::WorkspacePool;
use mwc_graph::wiener;
use mwc_graph::{Graph, NodeId, INF_DIST};
use rand::Rng;

use crate::connector::Connector;
use crate::error::{CoreError, Result};
use crate::steiner::{steiner_tree, SteinerAlgorithm};
use crate::wsq::{evaluate_a, lambda_grid, normalize_query, CandidateRecord, WsqSolution};

/// Configuration of the approximate solver.
#[derive(Debug, Clone)]
pub struct ApproxWsqConfig {
    /// λ-grid resolution (see [`crate::WsqConfig::beta`]).
    pub beta: f64,
    /// Number of landmarks when the solver builds its own oracle.
    pub landmarks: usize,
    /// Landmark selection strategy.
    pub strategy: LandmarkStrategy,
    /// Steiner subroutine for the per-`(root, λ)` instances.
    pub steiner: SteinerAlgorithm,
    /// Exact-Wiener evaluation threshold (Remark 1; see
    /// [`crate::WsqConfig::wiener_exact_threshold`]).
    pub wiener_exact_threshold: usize,
    /// Route distance-only BFS runs (feasibility, `A(H, r)` evaluation)
    /// through the direction-optimizing kernel; see
    /// [`crate::WsqConfig::kernel`]. Results are bit-identical either
    /// way.
    pub kernel: bool,
    /// Allow internal parallelism (currently: the multi-source parallel
    /// Wiener evaluation of Remark-1 survivors). The engine clears this
    /// inside `solve_batch` workers so solvers do not nest one thread
    /// pool per worker — same contract as [`crate::WsqConfig::parallel`].
    pub parallel: bool,
    /// Batch the per-root landmark estimates: all `|Q|` root distance
    /// vectors come from **one pass** over the oracle's `k × |V|` matrix
    /// ([`LandmarkOracle::estimate_all_multi`]) instead of `|Q|` separate
    /// sweeps — each landmark row is folded into every root while
    /// cache-hot. Estimates (and therefore connectors) are identical
    /// either way; the flag mirrors [`crate::WsqConfig::batch`] for A/B
    /// parity testing.
    pub batch: bool,
}

impl Default for ApproxWsqConfig {
    fn default() -> Self {
        ApproxWsqConfig {
            beta: 1.0,
            landmarks: 16,
            strategy: LandmarkStrategy::HighestDegree,
            steiner: SteinerAlgorithm::default(),
            wiener_exact_threshold: 4096,
            kernel: true,
            parallel: true,
            batch: true,
        }
    }
}

/// The approximate-distance `ws-q` solver. Owns a landmark oracle built
/// once per graph; `solve` can then be called for many queries without
/// any full-graph BFS beyond the per-query feasibility check.
///
/// ```
/// use mwc_core::{ApproxWienerSteiner, ApproxWsqConfig};
/// use mwc_graph::generators::karate::karate_club;
/// use rand::SeedableRng;
///
/// let g = karate_club();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let solver = ApproxWienerSteiner::build(&g, ApproxWsqConfig::default(), &mut rng);
/// let sol = solver.solve(&[11, 24, 25, 29]).unwrap();
/// assert!(sol.connector.contains_all(&[11, 24, 25, 29]));
/// ```
#[derive(Debug, Clone)]
pub struct ApproxWienerSteiner<'g> {
    graph: &'g Graph,
    oracle: LandmarkOracle,
    config: ApproxWsqConfig,
}

impl<'g> ApproxWienerSteiner<'g> {
    /// Builds the oracle (`config.landmarks` BFS traversals) and returns
    /// a ready solver.
    pub fn build<R: Rng>(graph: &'g Graph, config: ApproxWsqConfig, rng: &mut R) -> Self {
        assert!(config.beta > 0.0, "beta must be positive");
        let oracle = LandmarkOracle::build(graph, config.landmarks, config.strategy, rng);
        ApproxWienerSteiner {
            graph,
            oracle,
            config,
        }
    }

    /// Wraps an existing oracle (e.g. shared across solvers).
    pub fn with_oracle(graph: &'g Graph, oracle: LandmarkOracle, config: ApproxWsqConfig) -> Self {
        assert!(config.beta > 0.0, "beta must be positive");
        ApproxWienerSteiner {
            graph,
            oracle,
            config,
        }
    }

    /// The underlying oracle.
    pub fn oracle(&self) -> &LandmarkOracle {
        &self.oracle
    }

    /// Computes an approximately minimum Wiener connector for `q` using
    /// estimated distances. Same contract as
    /// [`WienerSteiner::solve`](crate::WienerSteiner::solve).
    pub fn solve(&self, q: &[NodeId]) -> Result<WsqSolution> {
        solve_with_oracle(
            self.graph,
            &self.oracle,
            &self.config,
            q,
            &WorkspacePool::new(),
        )
    }
}

/// Algorithm 1 with landmark-estimated distances, against a *borrowed*
/// oracle and workspace pool.
///
/// This is the reusable core of [`ApproxWienerSteiner::solve`]; the
/// [`QueryEngine`](crate::engine::QueryEngine) calls it directly so one
/// oracle (built once per graph) and one buffer pool serve every query,
/// instead of each solver instance owning copies.
pub fn solve_with_oracle(
    g: &Graph,
    oracle: &LandmarkOracle,
    config: &ApproxWsqConfig,
    q: &[NodeId],
    pool: &WorkspacePool,
) -> Result<WsqSolution> {
    let q = normalize_query(g, q)?;
    if q.len() == 1 {
        return Ok(WsqSolution {
            connector: Connector::new_unchecked(g, q.clone()),
            wiener_index: 0,
            best_root: q[0],
            best_lambda: 1.0,
            num_candidates: 1,
            trace: Vec::new(),
        });
    }
    // Feasibility stays exact: one BFS, not one per root.
    {
        let mut ws = pool.lease();
        let dist = if config.kernel {
            ws.run_auto(g, q[0])
        } else {
            ws.run(g, q[0])
        };
        if q.iter().any(|&v| dist[v as usize] == INF_DIST) {
            return Err(CoreError::QueryNotConnectable);
        }
    }

    let lambdas = lambda_grid(g.num_nodes(), config.beta);
    // Batched root estimates: one pass over the landmark matrix serves
    // every root (identical values to per-root `estimate_all` calls).
    let root_dists = if config.batch {
        Some(oracle.estimate_all_multi(&q))
    } else {
        None
    };
    let mut all: Vec<(CandidateRecord, Vec<NodeId>)> = Vec::new();
    for (ri, &r) in q.iter().enumerate() {
        let per_root;
        let dist_r: &[u32] = match &root_dists {
            Some(d) => &d[ri],
            None => {
                per_root = oracle.estimate_all(r);
                &per_root
            }
        };
        for &lambda in &lambdas {
            let weight = |u: NodeId, v: NodeId| {
                // Unreachable vertices never appear on used paths (the
                // feasibility check passed); saturate defensively.
                let d = dist_r[u as usize].max(dist_r[v as usize]);
                let d = if d == INF_DIST {
                    g.num_nodes() as u32
                } else {
                    d
                };
                lambda + d as f64 / lambda
            };
            let tree = steiner_tree(config.steiner, g, &q, weight)?;
            let nodes = tree.nodes;
            let a_value = evaluate_a(g, &nodes, r, pool, config.kernel)?;
            all.push((
                CandidateRecord {
                    root: r,
                    lambda,
                    size: nodes.len(),
                    a_value,
                    wiener: None,
                },
                nodes,
            ));
        }
    }

    // Remark 1 selection, identical to the exact solver: Lemma 1 rules
    // out candidates with A > 2 · min A; the survivors get exact W.
    let min_a = all.iter().map(|(rec, _)| rec.a_value).min().unwrap_or(0);
    for (rec, nodes) in &mut all {
        if rec.a_value <= 2 * min_a && nodes.len() <= config.wiener_exact_threshold {
            let sub = g.induced(nodes)?;
            // Sequential when the engine is already parallel across
            // queries (see ApproxWsqConfig::parallel) — never nest pools.
            rec.wiener = if config.parallel {
                wiener::wiener_index(sub.graph())
            } else {
                wiener::wiener_index_sequential(sub.graph())
            };
        }
    }
    let num_candidates = all.len();
    let mut best: Option<(CandidateRecord, Vec<NodeId>)> = None;
    for (rec, nodes) in all {
        let better = match &best {
            None => true,
            Some((cur, _)) => match (rec.wiener, cur.wiener) {
                (Some(a), Some(b)) => a < b,
                (Some(a), None) => a < cur.a_value,
                (None, Some(b)) => rec.a_value / 2 < b && rec.a_value < cur.a_value,
                (None, None) => rec.a_value < cur.a_value,
            },
        };
        if better {
            best = Some((rec, nodes));
        }
    }
    let (best_rec, best_nodes) = best.expect("candidates are always produced");
    let connector = Connector::new_unchecked(g, best_nodes);
    let wiener_index = match best_rec.wiener {
        Some(w) => w,
        // Same sequential contract as the candidate evaluations above.
        None => connector.wiener_index_with(g, !config.parallel)?,
    };
    Ok(WsqSolution {
        connector,
        wiener_index,
        best_root: best_rec.root,
        best_lambda: best_rec.lambda,
        num_candidates,
        trace: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wsq::{WienerSteiner, WsqConfig};
    use mwc_graph::generators::karate::karate_club;
    use rand::SeedableRng;

    #[test]
    fn returns_valid_connectors_on_karate() {
        let g = karate_club();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let solver = ApproxWienerSteiner::build(&g, ApproxWsqConfig::default(), &mut rng);
        for q in [vec![11u32, 24, 25, 29], vec![3, 11, 16], vec![0, 33]] {
            let sol = solver.solve(&q).expect("solve");
            assert!(sol.connector.contains_all(&q));
            let sub = sol.connector.induced(&g).expect("induced");
            assert!(mwc_graph::connectivity::is_connected(sub.graph()));
            assert_eq!(
                sol.wiener_index,
                sol.connector.wiener_index(&g).unwrap(),
                "reported W must match the connector"
            );
        }
    }

    #[test]
    fn full_landmark_oracle_matches_exact_wsq() {
        // With every vertex a landmark the estimates are exact, so the
        // candidate trees coincide with the exact solver's (adjust off).
        let g = karate_club();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let approx = ApproxWienerSteiner::build(
            &g,
            ApproxWsqConfig {
                landmarks: g.num_nodes(),
                ..ApproxWsqConfig::default()
            },
            &mut rng,
        );
        let exact = WienerSteiner::with_config(
            &g,
            WsqConfig {
                adjust: false,
                parallel: false,
                ..WsqConfig::default()
            },
        );
        for q in [vec![11u32, 24, 25, 29], vec![3, 11, 16]] {
            let wa = approx.solve(&q).unwrap().wiener_index;
            let we = exact.solve(&q).unwrap().wiener_index;
            assert_eq!(wa, we, "query {q:?}");
        }
    }

    #[test]
    fn quality_stays_close_to_exact_on_scale_free_graphs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let g = mwc_graph::generators::barabasi_albert(400, 3, &mut rng);
        let approx = ApproxWienerSteiner::build(&g, ApproxWsqConfig::default(), &mut rng);
        let exact = WienerSteiner::with_config(
            &g,
            WsqConfig {
                parallel: false,
                ..WsqConfig::default()
            },
        );
        use rand::Rng;
        for _ in 0..5 {
            let q: Vec<NodeId> = (0..5).map(|_| rng.gen_range(0..400)).collect();
            let wa = approx.solve(&q).unwrap().wiener_index;
            let we = exact.solve(&q).unwrap().wiener_index;
            assert!(
                (wa as f64) <= 2.0 * we as f64,
                "approximate W {wa} too far from exact {we} on {q:?}"
            );
        }
    }

    #[test]
    fn singleton_and_error_paths() {
        let g = karate_club();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let solver = ApproxWienerSteiner::build(&g, ApproxWsqConfig::default(), &mut rng);
        let sol = solver.solve(&[7]).unwrap();
        assert_eq!(sol.wiener_index, 0);
        assert!(matches!(solver.solve(&[]), Err(CoreError::EmptyQuery)));
        let disc = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let solver = ApproxWienerSteiner::build(&disc, ApproxWsqConfig::default(), &mut rng);
        assert!(matches!(
            solver.solve(&[0, 3]),
            Err(CoreError::QueryNotConnectable)
        ));
    }

    #[test]
    fn batch_toggle_yields_identical_connectors() {
        // Batched landmark estimates are the same min over the same
        // terms, so candidate trees — and connectors — must not move.
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let g = mwc_graph::generators::barabasi_albert(300, 3, &mut rng);
        let mk = |batch: bool| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(8);
            ApproxWienerSteiner::build(
                &g,
                ApproxWsqConfig {
                    batch,
                    parallel: false,
                    ..ApproxWsqConfig::default()
                },
                &mut rng,
            )
        };
        let on = mk(true);
        let off = mk(false);
        use rand::Rng;
        for _ in 0..5 {
            let q: Vec<NodeId> = (0..4).map(|_| rng.gen_range(0..300)).collect();
            let a = on.solve(&q).unwrap();
            let b = off.solve(&q).unwrap();
            assert_eq!(a.connector.vertices(), b.connector.vertices(), "{q:?}");
            assert_eq!(a.wiener_index, b.wiener_index);
        }
    }

    #[test]
    fn oracle_is_reusable_across_solvers() {
        let g = karate_club();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let oracle = LandmarkOracle::build(&g, 8, LandmarkStrategy::HighestDegree, &mut rng);
        let a = ApproxWienerSteiner::with_oracle(&g, oracle.clone(), ApproxWsqConfig::default());
        let b = ApproxWienerSteiner::with_oracle(&g, oracle, ApproxWsqConfig::default());
        let q = [11u32, 24, 25];
        assert_eq!(
            a.solve(&q).unwrap().wiener_index,
            b.solve(&q).unwrap().wiener_index,
            "same oracle + config ⇒ deterministic result"
        );
    }
}
