//! Solvers for the **Minimum Wiener Connector** problem ("The Minimum
//! Wiener Connector Problem", SIGMOD 2015).
//!
//! Given a connected graph `G` and query vertices `Q`, find a connected
//! induced subgraph containing `Q` that minimizes the Wiener index (the sum
//! of all pairwise shortest-path distances). The objective favors *small*
//! connectors that recruit a few *central* vertices — community leaders
//! when `Q` sits inside one community, bridge/structural-hole vertices when
//! `Q` spans several.
//!
//! # Contents
//!
//! * [`engine`] — the unified serving API: the [`ConnectorSolver`] trait
//!   every method implements and the per-graph [`QueryEngine`] that
//!   amortizes BFS workspaces, centrality vectors, and the landmark
//!   oracle across many queries (`solve` / parallel `solve_batch`);
//! * [`wsq`] — the paper's main contribution: a constant-factor
//!   approximation running in `Õ(|Q||E|)` (Algorithm 1), exposed as
//!   [`WienerSteiner`];
//! * [`steiner`] — Mehlhorn's Steiner-tree 2-approximation it builds on;
//! * [`adjust`] — the `AdjustDistances` balancing step (Lemma 2);
//! * [`objective`] — the relaxation chain `W → A → Ã → B` (§4);
//! * [`exact`] — exact solvers for small instances (`|Q| = 2` shortest
//!   path; pruned subset enumeration on ≤ 64-vertex bitset graphs);
//! * [`local_search`] — add/remove refinement (the Table 2 upper bound);
//! * [`lower_bound`] — certified combinatorial lower bounds (the Table 2
//!   `GL` substitute for the paper's ILP, see DESIGN.md);
//! * [`connector`] — the [`Connector`] solution type shared with the
//!   baselines;
//! * [`trace`] — lock-free per-request span recording threaded through
//!   [`QueryOptions`] for end-to-end request tracing.
//!
//! # Quickstart
//!
//! Build a [`QueryEngine`] once per graph and serve queries through it:
//!
//! ```
//! use mwc_core::QueryEngine;
//! use mwc_graph::generators::karate::{from_paper_ids, karate_club};
//!
//! let g = karate_club();
//! let engine = QueryEngine::new(&g);
//! // Figure 1 (left): query vertices from both factions.
//! let q = from_paper_ids(&[12, 25, 26, 30]);
//! let report = engine.solve("ws-q", &q).unwrap();
//! assert!(report.connector.contains_all(&q));
//! assert!(report.connector.len() < 12); // small connector
//! ```
//!
//! The per-method types ([`WienerSteiner`], [`ApproxWienerSteiner`], …)
//! remain available for fine-grained control.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adjust;
pub mod connector;
pub mod engine;
pub mod error;
pub mod exact;
pub mod ilp;
pub mod ilp_solve;
pub mod local_search;
pub mod lower_bound;
pub mod objective;
pub mod steiner;
pub mod trace;
pub mod wsq;
pub mod wsq_approx;

pub use connector::Connector;
pub use engine::{
    CacheStats, ConnectorSolver, GroupOutcome, GroupQuery, GroupStats, OwnedEngine, QueryContext,
    QueryEngine, QueryOptions, SolveReport,
};
pub use error::{CoreError, Result};
pub use ilp_solve::{program6_exact, program7_bounds, Program7Bounds, Program7Config};
pub use steiner::{mehlhorn_steiner, SteinerTree};
pub use trace::{SpanRecord, TraceContext, TraceRecorder, NO_PARENT};
pub use wsq::{
    minimum_wiener_connector, CandidateRecord, RootPolicy, WienerSteiner, WsqConfig, WsqSolution,
};
pub use wsq_approx::{ApproxWienerSteiner, ApproxWsqConfig};
