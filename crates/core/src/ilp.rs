//! The integer-programming formulations of §5 (Programs 6 and 7).
//!
//! The paper encodes Min Wiener Connector as a min-cost multicommodity
//! flow ILP (Program 6) and a smaller tree-based relaxation (Program 7),
//! solved with Gurobi to obtain the Table 2 bounds. A commercial MIP
//! solver is outside this reproduction's dependency policy, but the
//! formulations themselves are part of the paper's contribution, so this
//! module builds them as explicit constraint systems that can be
//! inspected, exported, and *checked*:
//!
//! * [`flow_formulation`] — Program 6, exact (`Θ(|E||V|²)` variables);
//! * [`tree_formulation`] — Program 7, the relaxation with tree/cycle
//!   constraints (`O(|V|²)` variables; cycle constraints supplied lazily,
//!   here via a fundamental cycle basis);
//! * [`assignment_for_connector`] — Theorem 5's forward direction made
//!   executable: translates any connector into a feasible assignment of
//!   Program 6 whose objective equals its Wiener index (tested).
//!
//! Together with `crate::exact` (which certifies optima directly) this
//! covers §5's role in the evaluation; see DESIGN.md §3 item 4.

use mwc_graph::hash::FxHashMap;
use mwc_graph::traversal::bfs::{bfs_parents, path_from_parents};
use mwc_graph::{Graph, NodeId};

use crate::connector::Connector;
use crate::error::Result;
use crate::wsq::normalize_query;

/// Comparison operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `≤ rhs`
    Le,
    /// `≥ rhs`
    Ge,
    /// `= rhs`
    Eq,
}

/// A sparse linear constraint `Σ coeff · x[var] (op) rhs`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Sparse terms `(variable index, coefficient)`.
    pub terms: Vec<(usize, f64)>,
    /// Comparison operator.
    pub op: Cmp,
    /// Right-hand side.
    pub rhs: f64,
    /// Human-readable provenance (e.g. `flow-conservation s=0 t=3 v=2`).
    pub label: String,
}

impl Constraint {
    /// Evaluates the left-hand side under `x`.
    pub fn lhs(&self, x: &[f64]) -> f64 {
        self.terms.iter().map(|&(i, c)| c * x[i]).sum()
    }

    /// Whether `x` satisfies the constraint within `tol`.
    pub fn satisfied(&self, x: &[f64], tol: f64) -> bool {
        let lhs = self.lhs(x);
        match self.op {
            Cmp::Le => lhs <= self.rhs + tol,
            Cmp::Ge => lhs >= self.rhs - tol,
            Cmp::Eq => (lhs - self.rhs).abs() <= tol,
        }
    }
}

/// A (mixed-)integer linear program: minimize `objective · x`.
#[derive(Debug, Clone)]
pub struct IntegerProgram {
    /// Variable display names (debugging / export).
    pub var_names: Vec<String>,
    /// Sparse objective `(variable, coefficient)`; minimization.
    pub objective: Vec<(usize, f64)>,
    /// All constraints.
    pub constraints: Vec<Constraint>,
    /// Which variables are 0/1-integral (`y_u` in the paper; flow and pair
    /// variables may remain continuous, Theorem 5).
    pub binary: Vec<bool>,
}

impl IntegerProgram {
    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// Objective value of an assignment.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective.iter().map(|&(i, c)| c * x[i]).sum()
    }

    /// Returns the first violated constraint, if any. Integrality of
    /// `binary` variables is checked too.
    pub fn check(&self, x: &[f64], tol: f64) -> Option<String> {
        assert_eq!(x.len(), self.num_vars());
        for (i, &b) in self.binary.iter().enumerate() {
            if b && (x[i] - x[i].round()).abs() > tol {
                return Some(format!("integrality violated for {}", self.var_names[i]));
            }
            if x[i] < -tol {
                return Some(format!("negativity violated for {}", self.var_names[i]));
            }
        }
        self.constraints
            .iter()
            .find(|c| !c.satisfied(x, tol))
            .map(|c| {
                format!(
                    "violated: {} (lhs = {}, rhs = {})",
                    c.label,
                    c.lhs(x),
                    c.rhs
                )
            })
    }
}

/// Variable layout of Program 6, exposed so tests and the assignment
/// builder agree on indices.
#[derive(Debug)]
pub struct FlowLayout {
    n: usize,
    /// `edge_index[(u, v)]` for both orientations of every edge.
    edge_index: FxHashMap<(NodeId, NodeId), usize>,
    num_pairs: usize,
    num_arcs: usize,
}

impl FlowLayout {
    /// Builds the layout for `g` (deterministic: follows `g.edges()` order).
    pub fn for_graph(g: &Graph) -> Self {
        FlowLayout::new(g)
    }

    /// Index of the arc `u → v` within the arc block (0-based), if the
    /// edge exists. Program 7 stores arc variable `x_uv` at
    /// `num_nodes + C(n,2) + arc(u, v)`.
    pub fn arc(&self, u: NodeId, v: NodeId) -> Option<usize> {
        self.edge_index.get(&(u, v)).copied()
    }

    /// Number of directed arcs (`2|E|`).
    pub fn num_arcs(&self) -> usize {
        self.num_arcs
    }

    /// Number of vertices the layout was built for.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    fn new(g: &Graph) -> Self {
        let n = g.num_nodes();
        let mut edge_index = FxHashMap::default();
        let mut arcs = 0usize;
        for (u, v) in g.edges() {
            edge_index.insert((u, v), arcs);
            arcs += 1;
            edge_index.insert((v, u), arcs);
            arcs += 1;
        }
        FlowLayout {
            n,
            edge_index,
            num_pairs: n * (n - 1) / 2,
            num_arcs: arcs,
        }
    }

    /// Index of `y_u`.
    pub fn y(&self, u: NodeId) -> usize {
        u as usize
    }

    /// Index of `p_{st}` (`s ≠ t`, order-insensitive).
    pub fn p(&self, s: NodeId, t: NodeId) -> usize {
        let (s, t) = (s.min(t) as usize, s.max(t) as usize);
        debug_assert!(s < t);
        // Position of pair (s, t) in lexicographic order.
        let before_s: usize = s * self.n - s * (s + 1) / 2;
        self.n + before_s + (t - s - 1)
    }

    /// Index of the flow variable `f^{st}_{uv}` (directed arc `u → v`).
    pub fn f(&self, s: NodeId, t: NodeId, u: NodeId, v: NodeId) -> usize {
        let pair = self.p(s, t) - self.n;
        let arc = self.edge_index[&(u, v)];
        self.n + self.num_pairs + pair * self.num_arcs + arc
    }
}

/// Builds Program 6 (the exact flow formulation) for `(g, q)`.
///
/// Variables: `y_u` (vertex chosen, binary), `p_st` (pair both-chosen),
/// `f^{st}_{uv}` (unit flow for commodity `{s, t}`). Objective
/// `½ Σ f^{st}_{uv}`. Use only on small graphs — the variable count is
/// `n + C(n,2) · (1 + 2m)`.
pub fn flow_formulation(g: &Graph, q: &[NodeId]) -> Result<(IntegerProgram, FlowLayout)> {
    let q = normalize_query(g, q)?;
    let layout = FlowLayout::new(g);
    let n = layout.n;

    let mut var_names = Vec::with_capacity(n + layout.num_pairs * (1 + layout.num_arcs));
    for u in 0..n {
        var_names.push(format!("y[{u}]"));
    }
    let mut pairs: Vec<(NodeId, NodeId)> = Vec::with_capacity(layout.num_pairs);
    for s in 0..n as NodeId {
        for t in (s + 1)..n as NodeId {
            pairs.push((s, t));
            var_names.push(format!("p[{s},{t}]"));
        }
    }
    let arcs: Vec<(NodeId, NodeId)> = {
        let mut a = Vec::with_capacity(layout.num_arcs);
        for (u, v) in g.edges() {
            a.push((u, v));
            a.push((v, u));
        }
        a
    };
    for &(s, t) in &pairs {
        for &(u, v) in &arcs {
            var_names.push(format!("f[{s},{t}][{u}->{v}]"));
        }
    }

    let mut binary = vec![false; var_names.len()];
    binary[..n].fill(true);

    // Objective: the paper's ½ Σ_{s,t,u,v} f^{st}_{uv} ranges over
    // *ordered* commodity pairs; this encoding routes a single flow per
    // unordered pair, so each arc counts with coefficient 1.
    let mut objective = Vec::new();
    for &(s, t) in &pairs {
        for &(u, v) in &arcs {
            objective.push((layout.f(s, t, u, v), 1.0));
        }
    }

    let mut constraints = Vec::new();
    // Flow conservation for every commodity {s, t} and vertex v.
    for &(s, t) in &pairs {
        for v in 0..n as NodeId {
            let mut terms: Vec<(usize, f64)> = Vec::new();
            for &nb in g.neighbors(v) {
                terms.push((layout.f(s, t, nb, v), 1.0)); // inflow
                terms.push((layout.f(s, t, v, nb), -1.0)); // outflow
            }
            // Net flow: -p at the source, +p at the sink, 0 elsewhere.
            let coeff_p: f64 = if v == s {
                1.0
            } else if v == t {
                -1.0
            } else {
                0.0
            };
            if coeff_p != 0.0 {
                terms.push((layout.p(s, t), coeff_p));
            }
            constraints.push(Constraint {
                terms,
                op: Cmp::Eq,
                rhs: 0.0,
                label: format!("flow-conservation s={s} t={t} v={v}"),
            });
        }
        // Capacity: f^{st}_{uv} ≤ y_u.
        for &(u, v) in &arcs {
            constraints.push(Constraint {
                terms: vec![(layout.f(s, t, u, v), 1.0), (layout.y(u), -1.0)],
                op: Cmp::Le,
                rhs: 0.0,
                label: format!("capacity s={s} t={t} {u}->{v}"),
            });
        }
        // Pair activation: p_st ≥ y_s + y_t − 1.
        constraints.push(Constraint {
            terms: vec![
                (layout.p(s, t), 1.0),
                (layout.y(s), -1.0),
                (layout.y(t), -1.0),
            ],
            op: Cmp::Ge,
            rhs: -1.0,
            label: format!("pair-activation s={s} t={t}"),
        });
    }
    // Query containment: y_u = 1 for u ∈ Q.
    for &u in &q {
        constraints.push(Constraint {
            terms: vec![(layout.y(u), 1.0)],
            op: Cmp::Eq,
            rhs: 1.0,
            label: format!("query y[{u}] = 1"),
        });
    }

    Ok((
        IntegerProgram {
            var_names,
            objective,
            constraints,
            binary,
        },
        layout,
    ))
}

/// Translates a connector into the intended feasible assignment of
/// Program 6 (Theorem 5's forward direction): `y_u = 1` on the connector,
/// `p_st = 1` for chosen pairs, and one unit of flow routed along a
/// shortest path inside the induced subgraph for each pair.
pub fn assignment_for_connector(
    g: &Graph,
    q: &[NodeId],
    connector: &Connector,
    layout: &FlowLayout,
    program: &IntegerProgram,
) -> Result<Vec<f64>> {
    let _ = normalize_query(g, q)?;
    let mut x = vec![0.0f64; program.num_vars()];
    for &u in connector.vertices() {
        x[layout.y(u)] = 1.0;
    }
    let sub = connector.induced(g)?;
    let members = connector.vertices();
    for (i, &s) in members.iter().enumerate() {
        let s_local = sub.to_local(s).expect("member");
        let bfs = bfs_parents(sub.graph(), s_local);
        for &t in &members[i + 1..] {
            let t_local = sub.to_local(t).expect("member");
            let path =
                path_from_parents(&bfs.parent, s_local, t_local).expect("connector is connected");
            x[layout.p(s, t)] = 1.0;
            // Route the unit s→t flow along the path (global ids).
            for w in path.windows(2) {
                let (a, b) = (sub.to_global(w[0]), sub.to_global(w[1]));
                x[layout.f(s, t, a, b)] += 1.0;
            }
        }
    }
    Ok(x)
}

/// Builds Program 7 (the tree-based relaxation) for `(g, q)`.
///
/// Variables: `y_u`, `p_st`, and arc indicators `x_uv` selecting a
/// spanning arborescence of the solution rooted at the first query vertex.
/// The exponential cycle family is represented by the constraints for the
/// given `cycles` (the paper adds them lazily; [`fundamental_cycles`]
/// yields a cycle basis). Objective `½ Σ d_G(s,t) · p_st` — a *lower
/// bound* on the Wiener index.
pub fn tree_formulation(g: &Graph, q: &[NodeId], cycles: &[Vec<NodeId>]) -> Result<IntegerProgram> {
    let q = normalize_query(g, q)?;
    let n = g.num_nodes();
    let layout = FlowLayout::new(g);

    // Variable layout: y (n) + p (C(n,2)) + x arcs (2m).
    let mut var_names: Vec<String> = (0..n).map(|u| format!("y[{u}]")).collect();
    for s in 0..n as NodeId {
        for t in (s + 1)..n as NodeId {
            var_names.push(format!("p[{s},{t}]"));
        }
    }
    let arcs: Vec<(NodeId, NodeId)> = {
        let mut a = Vec::with_capacity(layout.num_arcs);
        for (u, v) in g.edges() {
            a.push((u, v));
            a.push((v, u));
        }
        a
    };
    let arc_base = var_names.len();
    let arc_idx = |u: NodeId, v: NodeId| arc_base + layout.edge_index[&(u, v)];
    for &(u, v) in &arcs {
        var_names.push(format!("x[{u}->{v}]"));
    }

    let mut binary = vec![false; var_names.len()];
    binary[..n].fill(true);

    // Objective: ½ Σ_{s≠t} d_G(s,t) p_st (the relaxation measures original
    // distances). Pair variables count unordered pairs once, so no halving
    // is needed here; the ½ in the paper accounts for ordered sums.
    let mut dist_rows: Vec<Vec<u32>> = Vec::with_capacity(n);
    for s in 0..n as NodeId {
        dist_rows.push(mwc_graph::traversal::bfs::bfs_distances(g, s));
    }
    let mut objective = Vec::new();
    for s in 0..n as NodeId {
        for t in (s + 1)..n as NodeId {
            let d = dist_rows[s as usize][t as usize];
            if d != mwc_graph::INF_DIST && d > 0 {
                objective.push((layout.p(s, t), d as f64));
            }
        }
    }

    let root = q[0];
    let mut constraints = Vec::new();
    // Every chosen non-root vertex has exactly one parent:
    // Σ_{u ∈ N(v)} x_uv = y_v.
    for v in 0..n as NodeId {
        if v == root {
            continue;
        }
        let mut terms: Vec<(usize, f64)> = g
            .neighbors(v)
            .iter()
            .map(|&u| (arc_idx(u, v), 1.0))
            .collect();
        terms.push((layout.y(v), -1.0));
        constraints.push(Constraint {
            terms,
            op: Cmp::Eq,
            rhs: 0.0,
            label: format!("one-parent v={v}"),
        });
    }
    // Tree edge count: Σ (x_uv + x_vu) = Σ y_u − 1.
    {
        let mut terms: Vec<(usize, f64)> =
            arcs.iter().map(|&(u, v)| (arc_idx(u, v), 1.0)).collect();
        for u in 0..n {
            terms.push((u, -1.0));
        }
        constraints.push(Constraint {
            terms,
            op: Cmp::Eq,
            rhs: -1.0,
            label: "edge-count".into(),
        });
    }
    // Orientation/selection coupling: x_uv + x_vu ≤ y_u (both endpoints
    // chosen when the edge is used; paper states it per endpoint).
    for (u, v) in g.edges() {
        for (a, b) in [(u, v), (v, u)] {
            constraints.push(Constraint {
                terms: vec![
                    (arc_idx(a, b), 1.0),
                    (arc_idx(b, a), 1.0),
                    (layout.y(a), -1.0),
                ],
                op: Cmp::Le,
                rhs: 0.0,
                label: format!("edge-coupling ({a},{b})"),
            });
        }
    }
    // Pair activation.
    for s in 0..n as NodeId {
        for t in (s + 1)..n as NodeId {
            constraints.push(Constraint {
                terms: vec![
                    (layout.p(s, t), 1.0),
                    (layout.y(s), -1.0),
                    (layout.y(t), -1.0),
                ],
                op: Cmp::Ge,
                rhs: -1.0,
                label: format!("pair-activation s={s} t={t}"),
            });
        }
    }
    // Cycle elimination for the supplied cycles: Σ_{(u,v) ∈ C} (x_uv +
    // x_vu) ≤ |C| − 1.
    for (ci, cycle) in cycles.iter().enumerate() {
        let len = cycle.len();
        let mut terms = Vec::with_capacity(2 * len);
        for i in 0..len {
            let (a, b) = (cycle[i], cycle[(i + 1) % len]);
            terms.push((arc_idx(a, b), 1.0));
            terms.push((arc_idx(b, a), 1.0));
        }
        constraints.push(Constraint {
            terms,
            op: Cmp::Le,
            rhs: len as f64 - 1.0,
            label: format!("cycle-{ci}"),
        });
    }
    // Query containment.
    for &u in &q {
        constraints.push(Constraint {
            terms: vec![(layout.y(u), 1.0)],
            op: Cmp::Eq,
            rhs: 1.0,
            label: format!("query y[{u}] = 1"),
        });
    }

    Ok(IntegerProgram {
        var_names,
        objective,
        constraints,
        binary,
    })
}

/// A fundamental cycle basis of `g`: one cycle per non-tree edge of a BFS
/// spanning forest. These are the first cycles a lazy-constraint loop
/// would separate on.
pub fn fundamental_cycles(g: &Graph) -> Vec<Vec<NodeId>> {
    let n = g.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let mut cycles = Vec::new();
    let mut visited_root = vec![false; n];
    for start in 0..n as NodeId {
        if visited_root[start as usize] {
            continue;
        }
        let bfs = bfs_parents(g, start);
        for v in 0..n as NodeId {
            if bfs.dist[v as usize] != mwc_graph::INF_DIST {
                visited_root[v as usize] = true;
            }
        }
        for (u, v) in g.edges() {
            if bfs.dist[u as usize] == mwc_graph::INF_DIST {
                continue;
            }
            // Tree edges: parent relation in either direction.
            if bfs.parent[u as usize] == v || bfs.parent[v as usize] == u {
                continue;
            }
            // Only cycles rooted in this component, counted once.
            if bfs.dist[u as usize] == mwc_graph::INF_DIST {
                continue;
            }
            if let Some(cycle) = cycle_through(&bfs.parent, u, v) {
                cycles.push(cycle);
            }
        }
    }
    cycles
}

/// The cycle formed by tree paths root→u, root→v and the edge (u, v).
fn cycle_through(parent: &[NodeId], u: NodeId, v: NodeId) -> Option<Vec<NodeId>> {
    // Collect ancestor chains, find the lowest common ancestor.
    let chain = |mut x: NodeId| {
        let mut c = vec![x];
        while parent[x as usize] != mwc_graph::NO_NODE {
            x = parent[x as usize];
            c.push(x);
        }
        c
    };
    let cu = chain(u);
    let cv = chain(v);
    let setu: std::collections::HashSet<NodeId> = cu.iter().copied().collect();
    let lca = *cv.iter().find(|x| setu.contains(x))?;
    let mut cycle: Vec<NodeId> = cu.iter().copied().take_while(|&x| x != lca).collect();
    cycle.push(lca);
    let tail: Vec<NodeId> = cv.iter().copied().take_while(|&x| x != lca).collect();
    cycle.extend(tail.into_iter().rev());
    (cycle.len() >= 3).then_some(cycle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{exact_minimum, ExactConfig};
    use mwc_graph::generators::structured;
    use rand::SeedableRng;

    const TOL: f64 = 1e-9;

    #[test]
    fn program6_counts_match_paper_formula() {
        // Paper: "more than 2|E||V|² variables and more than |V|³
        // constraints" (ordered pairs); our unordered-pair encoding has
        // n + C(n,2)(1 + 2m) variables.
        let g = structured::cycle(5);
        let (ip, _) = flow_formulation(&g, &[0, 2]).unwrap();
        let (n, m) = (5usize, 5usize);
        assert_eq!(ip.num_vars(), n + (n * (n - 1) / 2) * (1 + 2 * m));
        assert!(ip.constraints.len() >= n * (n - 1) / 2 * n);
    }

    #[test]
    fn connector_assignment_is_feasible_with_wiener_objective() {
        // Theorem 5 forward direction, executed: for random small graphs
        // and random connectors, the intended assignment is feasible and
        // its objective equals W(G[S]).
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut checked = 0;
        while checked < 6 {
            let g = mwc_graph::generators::gnm(8, 12, &mut rng);
            let (g, _) = match mwc_graph::connectivity::largest_component_graph(&g) {
                Ok(x) => x,
                Err(_) => continue,
            };
            let n = g.num_nodes() as NodeId;
            if n < 4 {
                continue;
            }
            let q = vec![0, n - 1];
            let (ip, layout) = flow_formulation(&g, &q).unwrap();
            // Whole-graph connector.
            let connector = Connector::new(&g, &(0..n).collect::<Vec<_>>()).unwrap();
            let x = assignment_for_connector(&g, &q, &connector, &layout, &ip).unwrap();
            assert_eq!(ip.check(&x, TOL), None, "infeasible assignment");
            let w = connector.wiener_index(&g).unwrap();
            assert!(
                (ip.objective_value(&x) - w as f64).abs() < TOL,
                "objective {} != W {}",
                ip.objective_value(&x),
                w
            );
            checked += 1;
        }
    }

    #[test]
    fn optimal_connector_assignment_matches_exact_optimum() {
        let g = structured::figure2_graph(6);
        let q: Vec<NodeId> = (0..6).collect();
        let exact = exact_minimum(&g, &q, None, &ExactConfig::default()).unwrap();
        let (ip, layout) = flow_formulation(&g, &q).unwrap();
        let x = assignment_for_connector(&g, &q, &exact.connector, &layout, &ip).unwrap();
        assert_eq!(ip.check(&x, TOL), None);
        assert!((ip.objective_value(&x) - exact.wiener_index as f64).abs() < TOL);
    }

    #[test]
    fn broken_assignments_are_rejected() {
        let g = structured::path(4);
        let q = vec![0u32, 3];
        let (ip, layout) = flow_formulation(&g, &q).unwrap();
        let connector = Connector::new(&g, &[0, 1, 2, 3]).unwrap();
        let mut x = assignment_for_connector(&g, &q, &connector, &layout, &ip).unwrap();
        // Remove a flow unit: conservation must break.
        let f = layout.f(0, 3, 0, 1);
        x[f] = 0.0;
        assert!(ip.check(&x, TOL).is_some());
        // Fractional y must break integrality.
        let mut y_frac = assignment_for_connector(&g, &q, &connector, &layout, &ip).unwrap();
        y_frac[layout.y(1)] = 0.5;
        assert!(ip.check(&y_frac, TOL).is_some());
    }

    #[test]
    fn program7_tree_assignment_is_feasible_and_lower_bounds() {
        // Encode a spanning tree of a connector; objective = Σ d_G over
        // chosen pairs ≤ W (the relaxation's defining property).
        let g = structured::figure2_graph(6);
        let q: Vec<NodeId> = (0..6).collect();
        let cycles = fundamental_cycles(&g);
        let ip = tree_formulation(&g, &q, &cycles).unwrap();

        // Assignment: whole graph chosen, arcs = BFS tree from q[0].
        let n = g.num_nodes();
        let layout = FlowLayout::new(&g);
        let arc_base = n + n * (n - 1) / 2;
        let mut x = vec![0.0f64; ip.num_vars()];
        x[..n].fill(1.0);
        for s in 0..n as NodeId {
            for t in (s + 1)..n as NodeId {
                x[layout.p(s, t)] = 1.0;
            }
        }
        let bfs = bfs_parents(&g, q[0]);
        for v in 0..n as NodeId {
            let p = bfs.parent[v as usize];
            if p != mwc_graph::NO_NODE {
                x[arc_base + layout.edge_index[&(p, v)]] = 1.0;
            }
        }
        assert_eq!(ip.check(&x, TOL), None, "tree assignment infeasible");

        // Relaxation property: objective ≤ true Wiener index of the set.
        let connector = Connector::new(&g, &(0..n as NodeId).collect::<Vec<_>>()).unwrap();
        let w = connector.wiener_index(&g).unwrap() as f64;
        assert!(ip.objective_value(&x) <= w + TOL);
    }

    #[test]
    fn program7_rejects_cyclic_selections() {
        let g = structured::cycle(4);
        let q = vec![0u32];
        let cycles = fundamental_cycles(&g);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 4);
        let ip = tree_formulation(&g, &q, &cycles).unwrap();
        let layout = FlowLayout::new(&g);
        let n = 4usize;
        let arc_base = n + n * (n - 1) / 2;
        let mut x = vec![0.0f64; ip.num_vars()];
        x[..n].fill(1.0);
        for s in 0..n as NodeId {
            for t in (s + 1)..n as NodeId {
                x[layout.p(s, t)] = 1.0;
            }
        }
        // Orient the whole cycle: 0→1→2→3→0. Violates one-parent for 0? No:
        // 0's parent is 3. Violates edge count (4 arcs vs y-1 = 3) and the
        // cycle constraint.
        for (a, b) in [(0u32, 1u32), (1, 2), (2, 3), (3, 0)] {
            x[arc_base + layout.edge_index[&(a, b)]] = 1.0;
        }
        let violation = ip.check(&x, TOL);
        assert!(violation.is_some(), "cyclic selection accepted");
    }

    #[test]
    fn fundamental_cycles_count_is_m_minus_n_plus_c() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        for _ in 0..5 {
            let g = mwc_graph::generators::gnm(12, 18, &mut rng);
            let comps = mwc_graph::connectivity::connected_components(&g);
            let expect = g.num_edges() + comps.count - g.num_nodes();
            let cycles = fundamental_cycles(&g);
            assert_eq!(cycles.len(), expect);
            for c in &cycles {
                assert!(c.len() >= 3);
                for i in 0..c.len() {
                    assert!(g.has_edge(c[i], c[(i + 1) % c.len()]), "not a cycle: {c:?}");
                }
            }
        }
    }
}
