//! The unified serving API: [`ConnectorSolver`] + [`QueryEngine`].
//!
//! The paper's workload is *many* query sets against one fixed graph
//! (§6 runs hundreds of queries per dataset), yet the historical entry
//! points — [`WienerSteiner::solve`],
//! [`ApproxWienerSteiner::solve`](crate::ApproxWienerSteiner::solve),
//! [`exact_minimum`], the baselines — each
//! rebuilt BFS workspaces and per-graph state on every call. This module
//! fixes the shape of the system:
//!
//! * [`ConnectorSolver`] — one object-safe trait every solving method
//!   implements, so callers select algorithms by registry name instead of
//!   matching on enums;
//! * [`QueryEngine`] — built once per graph, owning the state worth
//!   amortizing across queries: a [`WorkspacePool`] of BFS buffers, the
//!   degree-centrality vector, a lazily built betweenness vector, a
//!   lazily built [`LandmarkOracle`] shared by every approximate solve,
//!   and a bounded LRU *solve cache* ([`CacheStats`]) replaying recent
//!   `(solver, query, options)` answers — repeated and overlapping query
//!   sets are the serving norm;
//! * [`QueryContext`] — the per-query view handed to solvers: the graph,
//!   the shared caches, and the caller's [`QueryOptions`] (deadline /
//!   size budget);
//! * [`SolveReport`] — the uniform result: connector, exact Wiener index,
//!   wall-clock seconds, and solver diagnostics.
//!
//! # Solver registry
//!
//! [`QueryEngine::new`] registers the four solvers of this crate; the
//! `mwc-baselines` crate adds the §6.1 competitors via its
//! `register_baselines` helper (or use its `full_engine` constructor):
//!
//! | name          | algorithm                                         | paper |
//! |---------------|---------------------------------------------------|-------|
//! | `ws-q`        | [`WienerSteiner`] (constant-factor approximation) | Algorithm 1, Theorem 4 |
//! | `ws-q-approx` | [`ApproxWienerSteiner`](crate::ApproxWienerSteiner) on shared landmarks | §6.6 scale-out |
//! | `ws-q+ls`     | `ws-q` + local-search refinement                  | Table 2's `GU` upper bound |
//! | `exact`       | shortest path (`\|Q\| = 2`) / subset enumeration  | §3, §6.2 |
//!
//! # Quickstart
//!
//! ```
//! use mwc_core::engine::{QueryEngine, QueryOptions};
//! use mwc_graph::generators::karate::karate_club;
//!
//! let g = karate_club();
//! let engine = QueryEngine::new(&g); // reusable: build once, query many times
//! let report = engine.solve("ws-q", &[11, 24, 25, 29]).unwrap();
//! assert!(report.connector.contains_all(&[11, 24, 25, 29]));
//!
//! // Batches run in parallel; results keep the input order.
//! let queries = vec![vec![0, 33], vec![11, 24, 25, 29]];
//! let reports = engine.solve_batch("ws-q", &queries, &QueryOptions::default());
//! assert_eq!(reports.len(), 2);
//! ```

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use mwc_graph::oracle::{LandmarkOracle, LandmarkStrategy};
use mwc_graph::traversal::bfs::{WorkspacePool, MS_BFS_LANES};
use mwc_graph::{centrality, Graph, GraphError, NodeId};
use rand::SeedableRng;

use crate::connector::Connector;
use crate::error::{CoreError, Result};
use crate::exact::{exact_minimum, shortest_path_connector, ExactConfig};
use crate::local_search::{refine, LocalSearchConfig};
use crate::trace::TraceContext;
use crate::wsq::{
    batched_root_distances_dispatch, MsDistWorkspace, RootPolicy, SharedRootDists, WienerSteiner,
    WsqConfig, WsqSolution,
};
use crate::wsq_approx::{solve_with_oracle, ApproxWsqConfig};

/// Per-query knobs, built fluently:
/// `QueryOptions::new().deadline(d).max_connector_size(n)`.
///
/// The default is unconstrained (no deadline, no size budget) and
/// cache-eligible.
#[derive(Debug, Clone, Default)]
pub struct QueryOptions {
    deadline: Option<Duration>,
    max_size: Option<usize>,
    no_cache: bool,
    trace: TraceContext,
}

impl QueryOptions {
    /// Unconstrained options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the wall-clock time of each query. The deadline is
    /// *cooperative*: solvers that support it (`ws-q`, `ws-q+ls`) stop
    /// sweeping `(root, λ)` candidates once it passes and select among
    /// those already evaluated, so a feasible connector is still returned
    /// — only the approximation guarantee weakens. Solvers without
    /// internal checkpoints ignore it.
    pub fn deadline(mut self, limit: Duration) -> Self {
        self.deadline = Some(limit);
        self
    }

    /// Rejects solutions larger than `max` vertices: the engine returns
    /// [`CoreError::BudgetExceeded`] instead of an oversized connector
    /// (useful when downstream rendering or storage has a hard cap).
    pub fn max_connector_size(mut self, max: usize) -> Self {
        self.max_size = Some(max);
        self
    }

    /// Bypasses the engine's solve cache for this query: the solver runs
    /// even if an identical `(solver, query, options)` result is cached,
    /// and the fresh result is not stored. The serving layer maps its
    /// wire-level `no_cache` flag here.
    pub fn no_cache(mut self) -> Self {
        self.no_cache = true;
        self
    }

    /// The configured per-query time budget, if any.
    pub fn time_budget(&self) -> Option<Duration> {
        self.deadline
    }

    /// The configured connector-size budget, if any.
    pub fn size_budget(&self) -> Option<usize> {
        self.max_size
    }

    /// Whether the solve cache is bypassed for this query.
    pub fn cache_disabled(&self) -> bool {
        self.no_cache
    }

    /// Attaches a per-request [`TraceContext`]: the engine and the ws-q
    /// pipeline record stage spans (`cache_lookup`, `feasibility`,
    /// `root_sweep`, …) into it. The default (disabled) context costs
    /// one branch per stage.
    pub fn trace(mut self, trace: TraceContext) -> Self {
        self.trace = trace;
        self
    }

    /// The per-request trace context (disabled by default).
    pub fn trace_context(&self) -> &TraceContext {
        &self.trace
    }
}

/// Uniform solver output (the engine's replacement for the per-method
/// result types `WsqSolution` / `ExactOutcome` / bare `Connector`).
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReport {
    /// Registry name of the solver that produced the report.
    pub solver: String,
    /// The connector: a vertex set `S ⊇ Q` inducing a connected subgraph.
    pub connector: Connector,
    /// Exact Wiener index `W(G[S])` — every report carries the true
    /// objective value, evaluated inside the solve. For solvers that can
    /// return very large connectors (`ctp`/`cps` at full dataset scale)
    /// this evaluation is `O(|S|·(|S|+|E[S]|))` and can dominate the
    /// solve; it is a deliberate contract (uniform, exact, comparable
    /// across methods). Callers that only need the vertex set and find
    /// this too costly should call the legacy per-method functions, which
    /// return a bare [`Connector`].
    pub wiener_index: u64,
    /// Wall-clock seconds of the solve. Filled by [`QueryEngine::solve`];
    /// zero when the solver is invoked directly through the trait.
    pub seconds: f64,
    /// Candidates inspected: `(root, λ)` pairs for the `ws-q` family
    /// (Algorithm 1's sweep), subsets for the exact enumerator, zero where
    /// the notion does not apply.
    pub candidates: u64,
    /// `Some(true)` when the result is provably optimal (the exact solver
    /// finished within budget, or `|Q| = 2` — §3), `Some(false)` when an
    /// exact solver gave up early, `None` for approximations.
    pub optimal: Option<bool>,
}

impl SolveReport {
    fn from_wsq(solver: &str, sol: WsqSolution) -> Self {
        SolveReport {
            solver: solver.to_string(),
            connector: sol.connector,
            wiener_index: sol.wiener_index,
            seconds: 0.0,
            candidates: sol.num_candidates as u64,
            optimal: None,
        }
    }

    /// One human-readable line: solver, objective, connector, timing —
    /// the uniform rendering used by `mwc-client` and the bench harness
    /// instead of per-call-site `format!` strings.
    ///
    /// ```
    /// # use mwc_core::engine::QueryEngine;
    /// # use mwc_graph::generators::karate::karate_club;
    /// # let g = karate_club();
    /// # let report = QueryEngine::new(&g).solve("ws-q", &[0, 33]).unwrap();
    /// assert!(report.render_text().starts_with("ws-q: W = "));
    /// ```
    pub fn render_text(&self) -> String {
        let optimal = match self.optimal {
            Some(true) => ", optimal",
            Some(false) => ", not proven optimal",
            None => "",
        };
        format!(
            "{}: W = {}, {} vertices {:?}, {:.3} ms, {} candidates{}",
            self.solver,
            self.wiener_index,
            self.connector.len(),
            self.connector.vertices(),
            self.seconds * 1e3,
            self.candidates,
            optimal
        )
    }

    /// The report as one JSON object (no trailing newline) — the exact
    /// shape `mwc_service` puts on the wire in its `"report"` field:
    /// `{"solver":…,"connector":[…],"wiener_index":…,"seconds":…,`
    /// `"candidates":…,"optimal":…}` with `optimal` null for
    /// approximations. Hand-rolled (the workspace has no serde) but pinned
    /// shape-for-shape against the service's serializer by round-trip
    /// tests in `mwc_service`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96 + 8 * self.connector.len());
        out.push_str("{\"solver\":\"");
        for c in self.solver.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push_str("\",\"connector\":[");
        for (i, v) in self.connector.vertices().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&v.to_string());
        }
        out.push_str(&format!(
            "],\"wiener_index\":{},\"seconds\":{},\"candidates\":{},\"optimal\":{}}}",
            self.wiener_index,
            self.seconds,
            self.candidates,
            match self.optimal {
                Some(b) => b.to_string(),
                None => "null".to_string(),
            }
        ));
        out
    }
}

/// Default capacity of the engine's solve cache (entries, i.e. cached
/// reports). Connectors are small (tens of vertices), so even the full
/// cache is a few hundred kilobytes.
pub const DEFAULT_SOLVE_CACHE_CAPACITY: usize = 1024;

/// Default byte budget of the engine's solve cache. Long-lived servers
/// bound the cache by **approximate resident bytes** (connector length,
/// canonical query length, strings, per-entry overhead), not just entry
/// count — a few pathological giant connectors cannot pin unbounded
/// memory. At the default entry capacity the byte bound only binds when
/// entries average ≳ 16 KiB.
pub const DEFAULT_SOLVE_CACHE_BYTES: usize = 16 << 20;

/// A snapshot of the solve cache's counters — the serving layer exposes
/// this through its `stats` command.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Cache-eligible lookups that fell through to a real solve.
    /// (Deadline-bearing and `no_cache` queries bypass the cache without
    /// counting.)
    pub misses: u64,
    /// Entries displaced to make room for newer ones.
    pub evictions: u64,
    /// Entries dropped because they outlived the TTL
    /// ([`QueryEngine::set_solve_cache_ttl`]); each also counts as a miss
    /// for the lookup that noticed it.
    pub expired: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Configured capacity (0 = caching disabled).
    pub capacity: usize,
    /// Approximate bytes held by resident entries (see
    /// [`QueryEngine::set_solve_cache_bytes`] for the estimate).
    pub bytes_used: usize,
    /// Configured byte budget (0 = caching disabled).
    pub capacity_bytes: usize,
}

/// Cache key: the canonicalized query set plus everything that can change
/// the answer — the solver and the options fingerprint ([`QueryOptions`]'s
/// size budget; deadline-bearing queries are never cached because their
/// results depend on wall-clock luck).
type CacheKey = (String, Vec<NodeId>, Option<usize>);

#[derive(Debug)]
struct CacheEntry {
    report: SolveReport,
    last_used: u64,
    /// Approximate resident size, charged against the cache's byte
    /// budget (computed once at insert).
    bytes: usize,
    /// When the entry was (re-)inserted; the TTL is measured from here,
    /// not from the last hit — a popular stale answer must still expire.
    inserted: Instant,
}

/// Approximate resident bytes of one cache entry: the two `NodeId`
/// vectors (canonical query + connector) dominate, plus the solver
/// strings and a flat constant for struct headers, hash-map slot, and
/// allocator slack. An estimate, not an accounting — the point is that
/// eviction pressure scales with connector size.
fn approx_entry_bytes(key: &CacheKey, report: &SolveReport) -> usize {
    const PER_ENTRY_OVERHEAD: usize = 160;
    PER_ENTRY_OVERHEAD
        + key.0.len()
        + std::mem::size_of_val(key.1.as_slice())
        + report.solver.len()
        + std::mem::size_of_val(report.connector.vertices())
}

/// A bounded LRU map of solved reports.
///
/// Repeated and *overlapping* query sets are the serving norm (the same
/// group of users re-queries, dashboards refresh), so the engine
/// remembers recent answers. Lookups and inserts take one short mutex —
/// the solves they replace take milliseconds, so contention is noise.
/// Eviction scans for the least-recently-used entry; at the default
/// capacity that scan is far cheaper than any solve it makes room for.
#[derive(Debug)]
struct SolveCache {
    capacity: usize,
    /// Byte budget over [`approx_entry_bytes`] estimates — the bound that
    /// matters to long-lived servers, where entry *count* says nothing
    /// about resident memory.
    max_bytes: usize,
    /// Time-to-live measured from insertion; `None` keeps entries until
    /// displaced. The staleness bound long-lived servers need when the
    /// graph a name refers to can be reloaded out from under the cache's
    /// assumptions (same-process reloads already clear it; TTL covers
    /// everything else, e.g. operator expectations of freshness).
    ttl: Option<Duration>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    expired: AtomicU64,
    inner: Mutex<CacheMap>,
}

#[derive(Debug, Default)]
struct CacheMap {
    map: HashMap<CacheKey, CacheEntry>,
    tick: u64,
    /// Sum of the resident entries' `bytes` estimates.
    bytes: usize,
}

impl SolveCache {
    fn new(capacity: usize, max_bytes: usize, ttl: Option<Duration>) -> Self {
        SolveCache {
            capacity,
            max_bytes,
            ttl,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            inner: Mutex::new(CacheMap::default()),
        }
    }

    fn disabled(&self) -> bool {
        self.capacity == 0 || self.max_bytes == 0
    }

    /// Cached report for `key`, refreshing its recency. Counts a hit or
    /// miss; an entry past the TTL is dropped on discovery and counts as
    /// an expiry plus a miss (the caller re-solves and re-inserts).
    fn get(&self, key: &CacheKey) -> Option<SolveReport> {
        let mut inner = self.inner.lock().expect("solve cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(ttl) = self.ttl {
            if inner
                .map
                .get(key)
                .is_some_and(|e| e.inserted.elapsed() >= ttl)
            {
                let dead = inner.map.remove(key).expect("entry checked above");
                inner.bytes -= dead.bytes;
                self.expired.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        }
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.report.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) `report` under `key`, evicting
    /// least-recently-used entries until both the entry-count and byte
    /// budgets hold. An entry larger than the whole byte budget is not
    /// cached at all — one pathological connector must not flush the
    /// cache and then miss anyway.
    fn insert(&self, key: CacheKey, report: SolveReport) {
        if self.disabled() {
            return;
        }
        let size = approx_entry_bytes(&key, &report);
        if size > self.max_bytes {
            return;
        }
        let mut inner = self.inner.lock().expect("solve cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.remove(&key) {
            inner.bytes -= old.bytes;
        }
        while !inner.map.is_empty()
            && (inner.map.len() >= self.capacity || inner.bytes + size > self.max_bytes)
        {
            let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            let evicted = inner.map.remove(&oldest).expect("LRU key resident");
            inner.bytes -= evicted.bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        inner.bytes += size;
        inner.map.insert(
            key,
            CacheEntry {
                report,
                last_used: tick,
                bytes: size,
                inserted: Instant::now(),
            },
        );
    }

    /// Snapshot of every resident, unexpired entry, most recently used
    /// first — the order an importer with a smaller budget should insert
    /// in, so the warmest entries survive its eviction. Counts neither
    /// hits nor misses: exporting a cache must not skew its stats.
    fn export(&self) -> Vec<(CacheKey, SolveReport)> {
        let inner = self.inner.lock().expect("solve cache poisoned");
        let mut entries: Vec<(&CacheKey, &CacheEntry)> = inner
            .map
            .iter()
            .filter(|(_, e)| self.ttl.is_none_or(|ttl| e.inserted.elapsed() < ttl))
            .collect();
        entries.sort_by_key(|e| std::cmp::Reverse(e.1.last_used));
        entries
            .into_iter()
            .map(|(k, e)| (k.clone(), e.report.clone()))
            .collect()
    }

    fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("solve cache poisoned");
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            entries: inner.map.len(),
            capacity: self.capacity,
            bytes_used: inner.bytes,
            capacity_bytes: self.max_bytes,
        }
    }
}

/// Per-graph state shared by all solvers of an engine.
#[derive(Debug)]
struct SharedState {
    pool: WorkspacePool,
    degree: Vec<f64>,
    betweenness: OnceLock<Vec<f64>>,
    oracle: OnceLock<LandmarkOracle>,
    landmarks: usize,
    landmark_strategy: LandmarkStrategy,
    oracle_seed: u64,
    /// Route solvers' distance-only BFS through the direction-optimizing
    /// kernel (results are identical; see [`crate::WsqConfig::kernel`]).
    kernel: bool,
    /// Batch per-root sweeps through the multi-source kernel (results
    /// are identical; see [`crate::WsqConfig::batch`]).
    batch: bool,
}

/// The per-query view a [`ConnectorSolver`] receives: the graph plus the
/// engine's shared caches and the caller's options.
#[derive(Debug)]
pub struct QueryContext<'e> {
    graph: &'e Graph,
    shared: &'e SharedState,
    options: QueryOptions,
    deadline: Option<Instant>,
    prefer_sequential: bool,
    shared_roots: Option<Arc<SharedRootDists>>,
}

impl<'e> QueryContext<'e> {
    fn new(
        graph: &'e Graph,
        shared: &'e SharedState,
        options: QueryOptions,
        prefer_sequential: bool,
    ) -> Self {
        let deadline = options.time_budget().map(|d| Instant::now() + d);
        QueryContext {
            graph,
            shared,
            options,
            deadline,
            prefer_sequential,
            shared_roots: None,
        }
    }

    /// Attaches prefetched per-root distance arrays (the
    /// [`QueryEngine::solve_group`] coalescing path).
    fn with_shared_roots(mut self, shared_roots: Option<Arc<SharedRootDists>>) -> Self {
        self.shared_roots = shared_roots;
        self
    }

    /// Per-root distance arrays prefetched by a cross-query coalesced
    /// sweep, when this solve is part of one ([`QueryEngine::solve_group`]).
    /// Solvers that batch per-root BFS (`ws-q`, `ws-q+ls`) consume these
    /// instead of running their own sweeps; results are bit-identical
    /// either way because MS-BFS lanes are independent.
    pub fn shared_root_distances(&self) -> Option<&SharedRootDists> {
        self.shared_roots.as_deref()
    }

    /// `true` when the engine is already parallelizing *across* queries
    /// (inside [`QueryEngine::solve_batch`] workers) and solvers should
    /// not spawn their own worker threads on top — ws-q's root loop
    /// honors this to avoid `P²` oversubscription.
    pub fn prefer_sequential(&self) -> bool {
        self.prefer_sequential
    }

    /// The graph being served.
    pub fn graph(&self) -> &'e Graph {
        self.graph
    }

    /// The caller's options for this query.
    pub fn options(&self) -> &QueryOptions {
        &self.options
    }

    /// Absolute deadline for this query, if one was requested. Fixed when
    /// the context is created, so batch queries each get a full budget.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Whether the deadline has already passed.
    pub fn deadline_exceeded(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The engine's BFS buffer pool; lease instead of allocating.
    pub fn workspace_pool(&self) -> &'e WorkspacePool {
        &self.shared.pool
    }

    /// Whether solvers should route distance-only BFS runs through the
    /// direction-optimizing kernel (see
    /// [`QueryEngine::set_kernel_enabled`]). Purely a performance choice:
    /// distances, and therefore connectors, are identical either way.
    pub fn kernel_enabled(&self) -> bool {
        self.shared.kernel
    }

    /// Whether solvers should batch per-root sweeps through the
    /// multi-source BFS kernel (see [`QueryEngine::set_batch_enabled`]).
    /// Purely a performance choice: connectors are identical either way.
    pub fn batch_enabled(&self) -> bool {
        self.shared.batch
    }

    /// Degree centrality of every vertex (computed once per engine).
    pub fn degree_centrality(&self) -> &'e [f64] {
        &self.shared.degree
    }

    /// Exact betweenness centrality of every vertex, computed on first use
    /// and cached for the engine's lifetime. `O(|V||E|)` — on large graphs
    /// prefer sampling outside the engine.
    pub fn betweenness(&self) -> &'e [f64] {
        self.shared
            .betweenness
            .get_or_init(|| centrality::betweenness(self.graph, true))
    }

    /// The shared landmark distance oracle (§6.6), built on first use with
    /// the engine's deterministic seed and cached for its lifetime.
    pub fn landmark_oracle(&self) -> &'e LandmarkOracle {
        self.shared.oracle.get_or_init(|| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(self.shared.oracle_seed);
            LandmarkOracle::build(
                self.graph,
                self.shared.landmarks,
                self.shared.landmark_strategy,
                &mut rng,
            )
        })
    }
}

/// A Wiener-connector solving method, as served by a [`QueryEngine`].
///
/// Object safe: engines store `Box<dyn ConnectorSolver + Send + Sync>`.
/// Implementations must be stateless per query (shared state belongs in
/// the engine's [`QueryContext`] caches) so one registration can serve
/// concurrent batch queries.
pub trait ConnectorSolver: Send + Sync {
    /// Registry key and display name (e.g. `"ws-q"`, matching the paper's
    /// method names where one exists).
    fn name(&self) -> &str;

    /// Solves one query against the context's graph.
    ///
    /// Contract (same as the legacy entry points): errors on an empty
    /// query, out-of-range vertices, or query vertices spanning multiple
    /// components; otherwise returns a connector containing the query.
    fn solve(&self, ctx: &QueryContext<'_>, q: &[NodeId]) -> Result<SolveReport>;

    /// The root vertices whose full BFS distance arrays this solver would
    /// compute for `q` — or `None` when it runs no per-root sweeps (the
    /// default). [`QueryEngine::solve_group`] unions these across the
    /// queries of one coalesced window and prefetches them through shared
    /// [`MsBfsWorkspace`](mwc_graph::traversal::bfs::MsBfsWorkspace)
    /// sweeps; a solver that answers here must then consume
    /// [`QueryContext::shared_root_distances`] in its `solve`.
    ///
    /// Implementations must return roots whose prefetched distances leave
    /// the result **bit-identical** to an uncoalesced solve — for the
    /// `ws-q` family that holds because MS-BFS lane distances do not
    /// depend on lane composition.
    fn coalesce_roots(&self, _ctx: &QueryContext<'_>, _q: &[NodeId]) -> Option<Vec<NodeId>> {
        None
    }
}

/// `"ws-q"` — the paper's Algorithm 1 ([`WienerSteiner`]) behind the
/// [`ConnectorSolver`] trait. Honors [`QueryOptions::deadline`].
#[derive(Debug, Clone, Default)]
pub struct WsqSolver {
    /// Configuration applied to every query (deadline is overridden per
    /// query from the context).
    pub config: WsqConfig,
}

impl ConnectorSolver for WsqSolver {
    fn name(&self) -> &str {
        "ws-q"
    }

    fn solve(&self, ctx: &QueryContext<'_>, q: &[NodeId]) -> Result<SolveReport> {
        let mut cfg = self.config.clone();
        cfg.deadline = ctx.deadline();
        cfg.parallel = cfg.parallel && !ctx.prefer_sequential();
        cfg.kernel = cfg.kernel && ctx.kernel_enabled();
        cfg.batch = cfg.batch && ctx.batch_enabled();
        cfg.trace = ctx.options().trace_context().clone();
        let sol = WienerSteiner::with_config(ctx.graph(), cfg).solve_pooled_shared(
            q,
            ctx.workspace_pool(),
            ctx.shared_root_distances(),
        )?;
        Ok(SolveReport::from_wsq(self.name(), sol))
    }

    fn coalesce_roots(&self, ctx: &QueryContext<'_>, q: &[NodeId]) -> Option<Vec<NodeId>> {
        wsq_coalesce_roots(&self.config, ctx, q)
    }
}

/// Shared [`ConnectorSolver::coalesce_roots`] answer for the solvers built
/// on [`WienerSteiner`]: under the batched `QueryOnly` sweep the per-root
/// distance arrays are exactly the normalized query vertices' BFS
/// distances, so those are what a coalesced window can prefetch. Any
/// configuration that would not take the batched path (batching off,
/// `AllVertices` roots, single-vertex query) declines.
fn wsq_coalesce_roots(
    cfg: &WsqConfig,
    ctx: &QueryContext<'_>,
    q: &[NodeId],
) -> Option<Vec<NodeId>> {
    if !(cfg.batch && ctx.batch_enabled()) || cfg.roots != RootPolicy::QueryOnly {
        return None;
    }
    crate::wsq::normalize_query(ctx.graph(), q)
        .ok()
        .filter(|qn| qn.len() > 1)
}

/// `"ws-q-approx"` — Algorithm 1 on landmark-estimated distances (§6.6),
/// using the engine's shared [`LandmarkOracle`] so the `k` oracle BFS
/// traversals are paid once per graph, not once per solver.
#[derive(Debug, Clone, Default)]
pub struct ApproxWsqSolver {
    /// Configuration applied to every query. `landmarks` and `strategy`
    /// are ignored in engine use — the engine's shared oracle wins; build
    /// an [`ApproxWienerSteiner`](crate::ApproxWienerSteiner) directly to
    /// control them per instance.
    pub config: ApproxWsqConfig,
}

impl ConnectorSolver for ApproxWsqSolver {
    fn name(&self) -> &str {
        "ws-q-approx"
    }

    fn solve(&self, ctx: &QueryContext<'_>, q: &[NodeId]) -> Result<SolveReport> {
        let mut cfg = self.config.clone();
        cfg.kernel = cfg.kernel && ctx.kernel_enabled();
        cfg.parallel = cfg.parallel && !ctx.prefer_sequential();
        cfg.batch = cfg.batch && ctx.batch_enabled();
        let sol = solve_with_oracle(
            ctx.graph(),
            ctx.landmark_oracle(),
            &cfg,
            q,
            ctx.workspace_pool(),
        )?;
        Ok(SolveReport::from_wsq(self.name(), sol))
    }
}

/// `"ws-q+ls"` — `ws-q` polished by add/remove/swap local search (the
/// role Gurobi warm-starting plays for the paper's Table 2 upper bound).
#[derive(Debug, Clone, Default)]
pub struct LocalSearchSolver {
    /// Configuration of the underlying `ws-q` run.
    pub wsq: WsqConfig,
    /// Limits of the refinement pass.
    pub local_search: LocalSearchConfig,
}

impl ConnectorSolver for LocalSearchSolver {
    fn name(&self) -> &str {
        "ws-q+ls"
    }

    fn solve(&self, ctx: &QueryContext<'_>, q: &[NodeId]) -> Result<SolveReport> {
        let mut cfg = self.wsq.clone();
        cfg.deadline = ctx.deadline();
        cfg.parallel = cfg.parallel && !ctx.prefer_sequential();
        cfg.kernel = cfg.kernel && ctx.kernel_enabled();
        cfg.batch = cfg.batch && ctx.batch_enabled();
        cfg.trace = ctx.options().trace_context().clone();
        let sol = WienerSteiner::with_config(ctx.graph(), cfg).solve_pooled_shared(
            q,
            ctx.workspace_pool(),
            ctx.shared_root_distances(),
        )?;
        let candidates = sol.num_candidates as u64;
        let (connector, wiener_index) = if ctx.deadline_exceeded() {
            // The budget went to ws-q; skip the polish.
            (sol.connector, sol.wiener_index)
        } else {
            // The refinement honors what remains of the budget itself,
            // and stays off the parallel Wiener kernel when the engine is
            // already parallel across queries.
            let mut ls = self.local_search.clone();
            ls.deadline = ctx.deadline();
            ls.prefer_sequential = ls.prefer_sequential || ctx.prefer_sequential();
            let span = ctx.options().trace_context().span("local_search");
            let refined = refine(ctx.graph(), q, &sol.connector, &ls)?;
            drop(span);
            refined
        };
        Ok(SolveReport {
            solver: self.name().to_string(),
            connector,
            wiener_index,
            seconds: 0.0,
            candidates,
            optimal: None,
        })
    }

    fn coalesce_roots(&self, ctx: &QueryContext<'_>, q: &[NodeId]) -> Option<Vec<NodeId>> {
        wsq_coalesce_roots(&self.wsq, ctx, q)
    }
}

/// `"exact"` — provably minimum connectors where feasible: any-size graphs
/// for `|Q| = 2` (a shortest path is optimal on unweighted graphs, §3),
/// pruned subset enumeration on ≤ 64-vertex graphs otherwise (the §6.2
/// certificate stand-in). Errors with `UnsupportedInstance` beyond that.
#[derive(Debug, Clone, Default)]
pub struct ExactSolver {
    /// Enumeration budget.
    pub config: ExactConfig,
}

impl ConnectorSolver for ExactSolver {
    fn name(&self) -> &str {
        "exact"
    }

    fn solve(&self, ctx: &QueryContext<'_>, q: &[NodeId]) -> Result<SolveReport> {
        let g = ctx.graph();
        let q_norm = crate::wsq::normalize_query(g, q)?;
        if q_norm.len() == 2 && g.num_nodes() > 64 {
            let connector = shortest_path_connector(g, q_norm[0], q_norm[1])?;
            let wiener_index = connector.wiener_index(g)?;
            return Ok(SolveReport {
                solver: self.name().to_string(),
                connector,
                wiener_index,
                seconds: 0.0,
                candidates: 1,
                optimal: Some(true),
            });
        }
        let out = exact_minimum(g, &q_norm, None, &self.config)?;
        Ok(SolveReport {
            solver: self.name().to_string(),
            connector: out.connector,
            wiener_index: out.wiener_index,
            seconds: 0.0,
            candidates: out.subsets_explored,
            optimal: Some(out.optimal),
        })
    }
}

/// One query of a coalesced window: solver registry name, query set, and
/// per-query options — the heterogeneous unit [`QueryEngine::solve_group`]
/// accepts (unlike [`QueryEngine::solve_batch`], which runs one solver
/// over many queries with shared options).
#[derive(Debug, Clone)]
pub struct GroupQuery {
    /// Registry name of the solver to run.
    pub solver: String,
    /// The query vertex set (canonicalized internally).
    pub q: Vec<NodeId>,
    /// This query's own options.
    pub options: QueryOptions,
}

impl GroupQuery {
    /// Convenience constructor.
    pub fn new(solver: impl Into<String>, q: Vec<NodeId>, options: QueryOptions) -> Self {
        GroupQuery {
            solver: solver.into(),
            q,
            options,
        }
    }
}

/// What one [`QueryEngine::solve_group`] window did — the per-flush
/// accounting the serving layer's coalescer aggregates into its `stats`
/// wire section.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupStats {
    /// Queries submitted to the window.
    pub requests: u64,
    /// Queries answered from the solve cache without executing.
    pub cache_hits: u64,
    /// Queries answered by another member's execution (identical
    /// `(solver, canonical query, size budget)` within the window).
    pub deduped: u64,
    /// Distinct solver executions the window ran.
    pub executed: u64,
    /// Shared multi-source sweeps run for the window's prefetched roots.
    pub shared_sweeps: u64,
    /// Lanes occupied across those sweeps (≤ 64 × `shared_sweeps`; the
    /// ratio is the window's lane occupancy).
    pub shared_lanes: u64,
    /// Distinct roots whose distances were prefetched and shared.
    pub shared_roots: u64,
}

impl GroupStats {
    /// Folds another window's counters into this one.
    pub fn merge(&mut self, other: &GroupStats) {
        self.requests += other.requests;
        self.cache_hits += other.cache_hits;
        self.deduped += other.deduped;
        self.executed += other.executed;
        self.shared_sweeps += other.shared_sweeps;
        self.shared_lanes += other.shared_lanes;
        self.shared_roots += other.shared_roots;
    }
}

/// Result of [`QueryEngine::solve_group`]: per-query results in input
/// order plus the window's execution accounting.
#[derive(Debug)]
pub struct GroupOutcome {
    /// One result per input query, in input order.
    pub results: Vec<Result<SolveReport>>,
    /// What the window shared, deduplicated, and executed.
    pub stats: GroupStats,
}

/// Best-effort duplication of a solve error, so one shared execution can
/// answer every coalesced member of its job. `CoreError` is not `Clone`
/// (it can wrap `std::io::Error`); I/O errors are re-created from kind and
/// message, everything else is reconstructed field-for-field.
fn duplicate_error(e: &CoreError) -> CoreError {
    match e {
        CoreError::EmptyQuery => CoreError::EmptyQuery,
        CoreError::QueryNotConnectable => CoreError::QueryNotConnectable,
        CoreError::Graph(g) => CoreError::Graph(match g {
            GraphError::NodeOutOfRange { node, num_nodes } => GraphError::NodeOutOfRange {
                node: *node,
                num_nodes: *num_nodes,
            },
            GraphError::Empty => GraphError::Empty,
            GraphError::Disconnected => GraphError::Disconnected,
            GraphError::TooLarge { what } => GraphError::TooLarge { what },
            GraphError::Io(io) => GraphError::Io(std::io::Error::new(io.kind(), io.to_string())),
            GraphError::Parse { line, message } => GraphError::Parse {
                line: *line,
                message: message.clone(),
            },
            // `GraphError` is #[non_exhaustive]; preserve at least the
            // message for variants added later.
            other => GraphError::Io(std::io::Error::other(other.to_string())),
        }),
        CoreError::UnsupportedInstance { what } => {
            CoreError::UnsupportedInstance { what: what.clone() }
        }
        CoreError::Lp(l) => CoreError::Lp(l.clone()),
        CoreError::UnknownSolver {
            requested,
            available,
        } => CoreError::UnknownSolver {
            requested: requested.clone(),
            available: available.clone(),
        },
        CoreError::BudgetExceeded { size, budget } => CoreError::BudgetExceeded {
            size: *size,
            budget: *budget,
        },
    }
}

/// How a [`QueryEngine`] holds its graph: borrowed (the library-embedding
/// case, zero-cost) or shared ownership through an [`Arc`] (the serving
/// case, where the engine must outlive the stack frame that built it).
#[derive(Debug, Clone)]
enum GraphStore<'g> {
    Borrowed(&'g Graph),
    Shared(Arc<Graph>),
}

impl GraphStore<'_> {
    fn get(&self) -> &Graph {
        match self {
            GraphStore::Borrowed(g) => g,
            GraphStore::Shared(g) => g,
        }
    }
}

/// A [`QueryEngine`] that owns its graph (`'static` — no borrowed data),
/// built via [`QueryEngine::new_shared`] / [`QueryEngine::empty_shared`]
/// from an `Arc<Graph>`. This is the handle long-lived serving code
/// (`mwc_service`'s catalog) stores: it can be moved across threads,
/// parked in a registry, and dropped independently of whoever loaded the
/// graph.
pub type OwnedEngine = QueryEngine<'static>;

/// A per-graph query-serving engine: build once, answer many queries.
///
/// Owns the string-keyed solver registry and the state worth amortizing
/// across queries (see the [module docs](self)). Shareable across threads
/// (`&QueryEngine` is `Send + Sync`); [`Self::solve_batch`] exploits that
/// with scoped worker threads. Engines either borrow their graph
/// ([`Self::new`], the zero-cost embedding) or share ownership of it
/// ([`Self::new_shared`], yielding an [`OwnedEngine`] free of borrowed
/// data).
pub struct QueryEngine<'g> {
    graph: GraphStore<'g>,
    solvers: Vec<Box<dyn ConnectorSolver + Send + Sync>>,
    shared: SharedState,
    cache: SolveCache,
}

impl std::fmt::Debug for QueryEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryEngine")
            .field("nodes", &self.graph().num_nodes())
            .field("edges", &self.graph().num_edges())
            .field("solvers", &self.solver_names())
            .finish()
    }
}

impl<'g> QueryEngine<'g> {
    /// An engine over `graph` with this crate's solvers registered
    /// (`ws-q`, `ws-q-approx`, `ws-q+ls`, `exact`). Use
    /// `mwc_baselines::full_engine` for the paper's complete method table.
    pub fn new(graph: &'g Graph) -> Self {
        Self::with_store(GraphStore::Borrowed(graph), true)
    }

    /// An engine with an empty registry (register solvers yourself).
    pub fn empty(graph: &'g Graph) -> Self {
        Self::with_store(GraphStore::Borrowed(graph), false)
    }

    /// An [`OwnedEngine`] sharing ownership of `graph`, with this crate's
    /// solvers registered. Unlike [`Self::new`], the result carries no
    /// borrowed data, so it can outlive the caller's frame — the shape a
    /// serving catalog needs. The `Arc` is cloned freely: callers keep
    /// their handle to the same graph.
    pub fn new_shared(graph: Arc<Graph>) -> OwnedEngine {
        QueryEngine::with_store(GraphStore::Shared(graph), true)
    }

    /// An [`OwnedEngine`] sharing ownership of `graph`, with an empty
    /// registry.
    pub fn empty_shared(graph: Arc<Graph>) -> OwnedEngine {
        QueryEngine::with_store(GraphStore::Shared(graph), false)
    }

    fn with_store(graph: GraphStore<'g>, with_solvers: bool) -> Self {
        let approx_defaults = ApproxWsqConfig::default();
        let degree = centrality::degree_centrality(graph.get());
        let mut engine = QueryEngine {
            graph,
            solvers: Vec::new(),
            shared: SharedState {
                pool: WorkspacePool::new(),
                degree,
                betweenness: OnceLock::new(),
                oracle: OnceLock::new(),
                landmarks: approx_defaults.landmarks,
                landmark_strategy: approx_defaults.strategy,
                oracle_seed: 0x5EED,
                kernel: true,
                batch: true,
            },
            cache: SolveCache::new(
                DEFAULT_SOLVE_CACHE_CAPACITY,
                DEFAULT_SOLVE_CACHE_BYTES,
                None,
            ),
        };
        if with_solvers {
            engine
                .register(Box::new(WsqSolver::default()))
                .register(Box::new(ApproxWsqSolver::default()))
                .register(Box::new(LocalSearchSolver::default()))
                .register(Box::new(ExactSolver::default()));
        }
        engine
    }

    /// Configures the shared landmark oracle that `ws-q-approx` (and any
    /// solver calling [`QueryContext::landmark_oracle`]) uses. Must be
    /// called before the first approximate solve — the oracle is built
    /// once on first use and cached for the engine's lifetime, so later
    /// calls have no effect (debug builds assert).
    pub fn set_oracle_config(
        &mut self,
        landmarks: usize,
        strategy: LandmarkStrategy,
        seed: u64,
    ) -> &mut Self {
        debug_assert!(
            self.shared.oracle.get().is_none(),
            "set_oracle_config called after the oracle was already built"
        );
        self.shared.landmarks = landmarks;
        self.shared.landmark_strategy = strategy;
        self.shared.oracle_seed = seed;
        self
    }

    /// Resizes the engine's solve cache (`0` disables caching). Existing
    /// entries and counters are discarded — sizing is a deployment-time
    /// decision, not a hot-path one. The byte budget
    /// ([`Self::set_solve_cache_bytes`]) and TTL
    /// ([`Self::set_solve_cache_ttl`]) are kept.
    pub fn set_solve_cache_capacity(&mut self, capacity: usize) -> &mut Self {
        self.cache = SolveCache::new(capacity, self.cache.max_bytes, self.cache.ttl);
        self
    }

    /// Sets the solve cache's **byte** budget (`0` disables caching).
    /// Entries are charged an approximate resident size (per-entry
    /// overhead + connector and canonical-query vectors + strings), and
    /// LRU eviction keeps the total under the budget — the bound that
    /// matters to long-lived servers, where a handful of giant connectors
    /// could otherwise pin unbounded memory behind a sane entry count.
    /// Existing entries and counters are discarded; the entry capacity
    /// ([`Self::set_solve_cache_capacity`]) and TTL are kept.
    pub fn set_solve_cache_bytes(&mut self, max_bytes: usize) -> &mut Self {
        self.cache = SolveCache::new(self.cache.capacity, max_bytes, self.cache.ttl);
        self
    }

    /// Sets the solve cache's time-to-live (`None` — the default — keeps
    /// entries until displaced). Entries older than the TTL are dropped
    /// when a lookup discovers them, counting in [`CacheStats::expired`]
    /// and as a miss; the freshness bound long-lived servers want for
    /// answers that should not be replayed for hours. Measured from
    /// insertion, not last use — popularity must not pin staleness.
    /// Existing entries and counters are discarded; capacity and byte
    /// budget are kept.
    pub fn set_solve_cache_ttl(&mut self, ttl: Option<Duration>) -> &mut Self {
        self.cache = SolveCache::new(self.cache.capacity, self.cache.max_bytes, ttl);
        self
    }

    /// Toggles the direction-optimizing distance kernel for all solvers
    /// of this engine (default: on). Distances — and therefore connectors
    /// — are identical either way; the switch exists for benchmarking and
    /// parity testing.
    pub fn set_kernel_enabled(&mut self, enabled: bool) -> &mut Self {
        self.shared.kernel = enabled;
        self
    }

    /// Toggles the multi-source batched root sweep for all solvers of
    /// this engine (default: on). Connectors are identical either way —
    /// per-root parent trees are reconstructed from distances by a
    /// deterministic rule, and multi-source distances are bit-identical
    /// to per-source BFS; the switch exists for benchmarking and parity
    /// testing (`wsq_batching_toggle_is_invisible_in_results`).
    pub fn set_batch_enabled(&mut self, enabled: bool) -> &mut Self {
        self.shared.batch = enabled;
        self
    }

    /// A snapshot of the solve cache's hit/miss/eviction counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Snapshot of the solve cache's resident entries — `(solver,
    /// canonical query, size budget)` keys with their cached reports,
    /// most recently used first. The handoff side of warm-cache
    /// migration: a departing replica exports, the arriving replica
    /// replays through [`Self::seed_cache`]. Expired entries are
    /// excluded; stats counters are untouched.
    pub fn export_cache(&self) -> Vec<(String, Vec<NodeId>, Option<usize>, SolveReport)> {
        self.cache
            .export()
            .into_iter()
            .map(|((solver, q, max_size), report)| (solver, q, max_size, report))
            .collect()
    }

    /// Inserts an already-solved report into the solve cache under the
    /// same key a fresh [`Self::solve`] of `(solver, q, max_size)` would
    /// probe — the import side of warm-cache migration. The query is
    /// canonicalized (sorted, deduplicated) exactly like the solve path;
    /// normal LRU/byte/TTL budgets apply, so seeding more than fits
    /// simply keeps the most recent inserts. No-op when caching is
    /// disabled. Returns whether the entry was accepted.
    pub fn seed_cache(
        &self,
        solver: &str,
        q: &[NodeId],
        max_size: Option<usize>,
        report: SolveReport,
    ) -> bool {
        if self.cache.disabled() {
            return false;
        }
        let mut canonical = q.to_vec();
        canonical.sort_unstable();
        canonical.dedup();
        let key = (solver.to_string(), canonical, max_size);
        let size = approx_entry_bytes(&key, &report);
        if size > self.cache.max_bytes {
            return false;
        }
        self.cache.insert(key, report);
        true
    }

    /// Registers `solver` under [`ConnectorSolver::name`], replacing any
    /// earlier registration of the same name ([`Self::solver_names`]
    /// reports the registry sorted, so registration order never shows).
    /// The solve cache is cleared: cached reports may have been produced
    /// by the replaced registration.
    pub fn register(&mut self, solver: Box<dyn ConnectorSolver + Send + Sync>) -> &mut Self {
        match self.solvers.iter().position(|s| s.name() == solver.name()) {
            Some(i) => self.solvers[i] = solver,
            None => self.solvers.push(solver),
        }
        self.cache = SolveCache::new(self.cache.capacity, self.cache.max_bytes, self.cache.ttl);
        self
    }

    /// The graph this engine serves.
    pub fn graph(&self) -> &Graph {
        self.graph.get()
    }

    /// The shared graph handle, when the engine was built with
    /// [`Self::new_shared`] / [`Self::empty_shared`]; `None` for borrowing
    /// engines.
    pub fn graph_shared(&self) -> Option<Arc<Graph>> {
        match &self.graph {
            GraphStore::Borrowed(_) => None,
            GraphStore::Shared(g) => Some(Arc::clone(g)),
        }
    }

    /// Registered solver names, deterministically sorted (lexicographic),
    /// independent of registration order — stable for wire protocols and
    /// test expectations.
    pub fn solver_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.solvers.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names
    }

    /// Looks up a solver by registry name.
    pub fn solver(&self, name: &str) -> Result<&(dyn ConnectorSolver + Send + Sync)> {
        self.solvers
            .iter()
            .find(|s| s.name() == name)
            .map(|s| s.as_ref())
            .ok_or_else(|| CoreError::UnknownSolver {
                requested: name.to_string(),
                available: self.solver_names().iter().map(|s| s.to_string()).collect(),
            })
    }

    /// A query context carrying the engine's shared caches and `options`
    /// (for driving a [`ConnectorSolver`] by hand; [`Self::solve`] does
    /// this internally).
    pub fn context(&self, options: QueryOptions) -> QueryContext<'_> {
        QueryContext::new(self.graph.get(), &self.shared, options, false)
    }

    /// Solves one query with the named solver and default options.
    pub fn solve(&self, solver: &str, q: &[NodeId]) -> Result<SolveReport> {
        self.solve_with(solver, q, &QueryOptions::default())
    }

    /// Solves one query with the named solver and explicit options.
    pub fn solve_with(
        &self,
        solver: &str,
        q: &[NodeId],
        options: &QueryOptions,
    ) -> Result<SolveReport> {
        self.solve_inner(solver, q, options, false)
    }

    /// Shared solve path; `prefer_sequential` is set by batch workers so
    /// solvers do not nest their own parallelism inside the batch's.
    ///
    /// Consults the engine's solve cache first: repeated `(solver,
    /// canonical query, size budget)` triples are the serving norm, and a
    /// hit returns the stored report (with `seconds` re-stamped to the
    /// lookup time) without touching the solver. Deadline-bearing queries
    /// bypass the cache entirely — their results depend on wall-clock
    /// luck and must not be replayed as canonical answers — and
    /// [`QueryOptions::no_cache`] forces a fresh, unstored solve.
    fn solve_inner(
        &self,
        solver: &str,
        q: &[NodeId],
        options: &QueryOptions,
        prefer_sequential: bool,
    ) -> Result<SolveReport> {
        let start = Instant::now();
        let s = self.solver(solver)?;
        let cacheable =
            !self.cache.disabled() && !options.cache_disabled() && options.time_budget().is_none();
        let key = cacheable.then(|| {
            let mut canonical = q.to_vec();
            canonical.sort_unstable();
            canonical.dedup();
            (solver.to_string(), canonical, options.size_budget())
        });
        if let Some(key) = &key {
            let mut span = options.trace_context().span("cache_lookup");
            let hit = self.cache.get(key);
            span.counter("hit", hit.is_some() as u64);
            drop(span);
            if let Some(mut report) = hit {
                report.seconds = start.elapsed().as_secs_f64();
                return Ok(report);
            }
        }
        let ctx = QueryContext::new(
            self.graph.get(),
            &self.shared,
            options.clone(),
            prefer_sequential,
        );
        let mut report = s.solve(&ctx, q)?;
        report.seconds = start.elapsed().as_secs_f64();
        if let Some(budget) = options.size_budget() {
            if report.connector.len() > budget {
                return Err(CoreError::BudgetExceeded {
                    size: report.connector.len(),
                    budget,
                });
            }
        }
        if let Some(key) = key {
            self.cache.insert(key, report.clone());
        }
        Ok(report)
    }

    /// Solves a batch of queries with the named solver, in parallel across
    /// scoped worker threads (one per available core, capped at the batch
    /// size). Results keep the input order; each query gets its own
    /// context, so deadlines are per query. Per-query errors are reported
    /// in place — one infeasible query does not fail the batch.
    pub fn solve_batch(
        &self,
        solver: &str,
        queries: &[Vec<NodeId>],
        options: &QueryOptions,
    ) -> Vec<Result<SolveReport>> {
        // Surface an unknown solver on every slot rather than panicking
        // (the lookup is repeated per slot; it cannot succeed mid-batch).
        if self.solver(solver).is_err() {
            return queries
                .iter()
                .map(|_| match self.solver(solver) {
                    Err(e) => Err(e),
                    Ok(_) => unreachable!("registry is immutable during solve_batch"),
                })
                .collect();
        }
        if queries.is_empty() {
            return Vec::new();
        }
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(queries.len());
        if threads <= 1 {
            return queries
                .iter()
                .map(|q| self.solve_with(solver, q, options))
                .collect();
        }
        let mut slots: Vec<Option<Result<SolveReport>>> = Vec::new();
        slots.resize_with(queries.len(), || None);
        let chunk = queries.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (q_chunk, s_chunk) in queries.chunks(chunk).zip(slots.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (q, slot) in q_chunk.iter().zip(s_chunk.iter_mut()) {
                        *slot = Some(self.solve_inner(solver, q, options, true));
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("every batch slot is filled by its worker"))
            .collect()
    }

    /// Solves a *heterogeneous* group of queries — mixed solvers, mixed
    /// options — as one coalesced execution: the cross-request entry point
    /// behind `mwc_service`'s per-graph coalescer.
    ///
    /// Three passes:
    ///
    /// 1. **Admission** — per query: resolve the solver (unknown names
    ///    error in place), canonicalize, consult the solve cache under the
    ///    exact policy of [`Self::solve_with`], and *deduplicate* the
    ///    remainder: queries with identical `(solver, canonical query,
    ///    size budget)` share one execution (deadline-bearing queries are
    ///    never shared — their results depend on wall-clock luck).
    /// 2. **Prefetch** — when more than one execution remains, union every
    ///    job's [`ConnectorSolver::coalesce_roots`] answer and run the
    ///    union through shared 64-lane multi-source sweeps, so root BFS
    ///    work that today runs once per request with mostly-empty lanes
    ///    runs once per *window* with packed lanes.
    /// 3. **Execute** — jobs run across scoped worker threads (sequential
    ///    solver internals, as in [`Self::solve_batch`]), each consuming
    ///    the prefetched arrays; results fan back out to every member in
    ///    input order.
    ///
    /// Results are **bit-identical** to per-query [`Self::solve_with`]
    /// calls (multi-source lanes are independent; pinned by the group
    /// parity tests and the service-level coalescer suite).
    pub fn solve_group(&self, queries: &[GroupQuery]) -> GroupOutcome {
        let start = Instant::now();
        let mut stats = GroupStats {
            requests: queries.len() as u64,
            ..GroupStats::default()
        };
        let mut slots: Vec<Option<Result<SolveReport>>> = Vec::new();
        slots.resize_with(queries.len(), || None);

        // Pass 1: admission — errors, cache hits, dedup.
        struct Job<'q> {
            solver: &'q str,
            canonical: Vec<NodeId>,
            options: &'q QueryOptions,
            members: Vec<usize>,
            cache_insert: bool,
        }
        let mut jobs: Vec<Job<'_>> = Vec::new();
        let mut dedup: HashMap<CacheKey, usize> = HashMap::new();
        for (i, gq) in queries.iter().enumerate() {
            if let Err(e) = self.solver(&gq.solver) {
                slots[i] = Some(Err(e));
                continue;
            }
            let mut canonical = gq.q.clone();
            canonical.sort_unstable();
            canonical.dedup();
            let cacheable = !self.cache.disabled()
                && !gq.options.cache_disabled()
                && gq.options.time_budget().is_none();
            let key = (gq.solver.clone(), canonical, gq.options.size_budget());
            if cacheable {
                let mut span = gq.options.trace_context().span("cache_lookup");
                let hit = self.cache.get(&key);
                span.counter("hit", hit.is_some() as u64);
                drop(span);
                if let Some(mut report) = hit {
                    report.seconds = start.elapsed().as_secs_f64();
                    stats.cache_hits += 1;
                    slots[i] = Some(Ok(report));
                    continue;
                }
            }
            if gq.options.time_budget().is_none() {
                if let Some(&j) = dedup.get(&key) {
                    jobs[j].members.push(i);
                    jobs[j].cache_insert |= cacheable;
                    stats.deduped += 1;
                    continue;
                }
                dedup.insert(key.clone(), jobs.len());
            }
            jobs.push(Job {
                solver: &gq.solver,
                canonical: key.1,
                options: &gq.options,
                members: vec![i],
                cache_insert: cacheable,
            });
        }
        stats.executed = jobs.len() as u64;

        // Pass 2: prefetch the union of every job's root sweeps through
        // shared multi-source batches. Only worth it when executions can
        // actually share lanes; a lone job packs its own lanes already.
        let mut shared: Option<Arc<SharedRootDists>> = None;
        if jobs.len() > 1 {
            let mut roots: BTreeSet<NodeId> = BTreeSet::new();
            for job in &jobs {
                let s = self.solver(job.solver).expect("resolved in pass 1");
                let ctx =
                    QueryContext::new(self.graph.get(), &self.shared, job.options.clone(), false);
                if let Some(r) = s.coalesce_roots(&ctx, &job.canonical) {
                    roots.extend(r);
                }
            }
            if roots.len() > 1 {
                let roots: Vec<NodeId> = roots.into_iter().collect();
                let mut ms = MsDistWorkspace::lease(&self.shared.pool, self.graph.get());
                let mut map = SharedRootDists::with_capacity(roots.len());
                for batch in roots.chunks(MS_BFS_LANES) {
                    let arrays =
                        batched_root_distances_dispatch(self.graph.get(), batch, &mut ms);
                    stats.shared_sweeps += 1;
                    stats.shared_lanes += batch.len() as u64;
                    for (&r, d) in batch.iter().zip(arrays) {
                        map.insert(r, Arc::new(d));
                    }
                }
                stats.shared_roots = map.len() as u64;
                shared = Some(Arc::new(map));
            }
        }

        // Pass 3: execute and fan out. Mirrors solve_batch's threading:
        // one chunk per core, sequential solver internals when several
        // jobs run concurrently.
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(jobs.len().max(1));
        let results: Vec<Result<SolveReport>> = if jobs.len() <= 1 || threads <= 1 {
            jobs.iter()
                .map(|job| {
                    self.solve_prefetched(
                        job.solver,
                        &job.canonical,
                        job.options,
                        shared.as_ref(),
                        job.cache_insert,
                        false,
                        start,
                    )
                })
                .collect()
        } else {
            let mut out: Vec<Option<Result<SolveReport>>> = Vec::new();
            out.resize_with(jobs.len(), || None);
            let chunk = jobs.len().div_ceil(threads);
            let shared = &shared;
            std::thread::scope(|scope| {
                for (j_chunk, o_chunk) in jobs.chunks(chunk).zip(out.chunks_mut(chunk)) {
                    scope.spawn(move || {
                        for (job, slot) in j_chunk.iter().zip(o_chunk.iter_mut()) {
                            *slot = Some(self.solve_prefetched(
                                job.solver,
                                &job.canonical,
                                job.options,
                                shared.as_ref(),
                                job.cache_insert,
                                true,
                                start,
                            ));
                        }
                    });
                }
            });
            out.into_iter()
                .map(|s| s.expect("every job slot is filled by its worker"))
                .collect()
        };
        for (job, result) in jobs.iter().zip(results) {
            match result {
                Ok(report) => {
                    for &i in &job.members {
                        slots[i] = Some(Ok(report.clone()));
                    }
                }
                Err(e) => {
                    for &i in &job.members[1..] {
                        slots[i] = Some(Err(duplicate_error(&e)));
                    }
                    slots[job.members[0]] = Some(Err(e));
                }
            }
        }

        GroupOutcome {
            results: slots
                .into_iter()
                .map(|s| s.expect("every group slot is filled"))
                .collect(),
            stats,
        }
    }

    /// One job of a [`Self::solve_group`] window: like
    /// [`Self::solve_inner`] but with the cache lookup already done by the
    /// window's admission pass (`cache_insert` carries its verdict) and
    /// the prefetched root distances attached to the context.
    #[allow(clippy::too_many_arguments)]
    fn solve_prefetched(
        &self,
        solver: &str,
        canonical: &[NodeId],
        options: &QueryOptions,
        shared: Option<&Arc<SharedRootDists>>,
        cache_insert: bool,
        prefer_sequential: bool,
        start: Instant,
    ) -> Result<SolveReport> {
        let s = self.solver(solver)?;
        let ctx = QueryContext::new(
            self.graph.get(),
            &self.shared,
            options.clone(),
            prefer_sequential,
        )
        .with_shared_roots(shared.cloned());
        let mut report = s.solve(&ctx, canonical)?;
        report.seconds = start.elapsed().as_secs_f64();
        if let Some(budget) = options.size_budget() {
            if report.connector.len() > budget {
                return Err(CoreError::BudgetExceeded {
                    size: report.connector.len(),
                    budget,
                });
            }
        }
        if cache_insert {
            self.cache.insert(
                (
                    solver.to_string(),
                    canonical.to_vec(),
                    options.size_budget(),
                ),
                report.clone(),
            );
        }
        Ok(report)
    }

    /// Degree centrality of every vertex (cached at construction).
    pub fn degree_centrality(&self) -> &[f64] {
        &self.shared.degree
    }

    /// Exact betweenness centrality, computed on first use and cached.
    /// `O(|V||E|)` — on large graphs prefer external sampling.
    pub fn betweenness(&self) -> &[f64] {
        self.context(QueryOptions::default()).betweenness()
    }

    /// The shared landmark oracle (built deterministically on first use).
    pub fn landmark_oracle(&self) -> &LandmarkOracle {
        self.context(QueryOptions::default()).landmark_oracle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::generators::karate::karate_club;
    use mwc_graph::generators::structured;

    #[test]
    fn registry_lists_core_solvers_sorted() {
        let g = karate_club();
        let engine = QueryEngine::new(&g);
        // Deterministically sorted, independent of registration order.
        assert_eq!(
            engine.solver_names(),
            vec!["exact", "ws-q", "ws-q+ls", "ws-q-approx"]
        );
    }

    #[test]
    fn shared_engine_outlives_its_builder_frame() {
        let engine: OwnedEngine = {
            let g = Arc::new(karate_club());
            let e = QueryEngine::new_shared(Arc::clone(&g));
            assert_eq!(e.graph_shared().unwrap().num_nodes(), g.num_nodes());
            e
        }; // `g` dropped here: the engine keeps the graph alive.
        let q = [11u32, 24, 25, 29];
        let owned = engine.solve("ws-q", &q).unwrap();
        let g = karate_club();
        let borrowed = QueryEngine::new(&g).solve("ws-q", &q).unwrap();
        assert_eq!(
            owned.connector.vertices(),
            borrowed.connector.vertices(),
            "shared and borrowed engines answer identically"
        );
        assert_eq!(owned.wiener_index, borrowed.wiener_index);
        assert!(QueryEngine::new(&g).graph_shared().is_none());
        // The owned engine crosses threads.
        std::thread::spawn(move || engine.solve("ws-q", &[0, 33]).unwrap())
            .join()
            .unwrap();
    }

    #[test]
    fn report_rendering_is_uniform() {
        let g = karate_club();
        let engine = QueryEngine::new(&g);
        let report = engine.solve("exact", &[0, 1]).unwrap();
        let text = report.render_text();
        assert!(text.starts_with("exact: W = "), "{text}");
        assert!(text.contains("optimal"), "{text}");
        let json = report.to_json();
        assert!(json.starts_with("{\"solver\":\"exact\""), "{json}");
        assert!(json.contains("\"optimal\":true"), "{json}");
        assert!(json.ends_with('}'), "{json}");
        let approx = engine.solve("ws-q", &[0, 33]).unwrap();
        assert!(approx.to_json().contains("\"optimal\":null"));
    }

    #[test]
    fn unknown_solver_is_a_clean_error() {
        let g = karate_club();
        let engine = QueryEngine::new(&g);
        let err = engine.solve("nope", &[0, 33]).unwrap_err();
        match err {
            CoreError::UnknownSolver {
                requested,
                available,
            } => {
                assert_eq!(requested, "nope");
                assert!(available.contains(&"ws-q".to_string()));
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn registering_same_name_replaces_in_place() {
        let g = karate_club();
        let mut engine = QueryEngine::new(&g);
        let before: Vec<String> = engine
            .solver_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        engine.register(Box::new(WsqSolver {
            config: WsqConfig {
                parallel: false,
                ..WsqConfig::default()
            },
        }));
        assert_eq!(engine.solver_names(), before);
    }

    #[test]
    fn engine_solve_matches_legacy_wsq() {
        let g = karate_club();
        let engine = QueryEngine::new(&g);
        let q = [11u32, 24, 25, 29];
        let report = engine.solve("ws-q", &q).unwrap();
        let legacy = crate::wsq::minimum_wiener_connector(&g, &q).unwrap();
        assert_eq!(report.connector.vertices(), legacy.connector.vertices());
        assert_eq!(report.wiener_index, legacy.wiener_index);
        assert!(report.seconds >= 0.0);
        assert_eq!(report.candidates, legacy.num_candidates as u64);
        assert_eq!(report.solver, "ws-q");
    }

    #[test]
    fn exact_solver_reports_optimality() {
        let g = structured::figure2_graph(10);
        let engine = QueryEngine::new(&g);
        let q: Vec<NodeId> = (0..10).collect();
        let report = engine.solve("exact", &q).unwrap();
        assert_eq!(report.wiener_index, 142);
        assert_eq!(report.optimal, Some(true));
        assert!(report.candidates > 0);
    }

    #[test]
    fn exact_solver_uses_shortest_path_for_pairs_on_large_graphs() {
        let g = structured::path(100);
        let engine = QueryEngine::new(&g);
        let report = engine.solve("exact", &[10, 20]).unwrap();
        assert_eq!(report.connector.len(), 11);
        assert_eq!(report.optimal, Some(true));
    }

    #[test]
    fn local_search_never_worse_than_wsq() {
        let g = karate_club();
        let engine = QueryEngine::new(&g);
        let q = [11u32, 24, 25, 29];
        let base = engine.solve("ws-q", &q).unwrap();
        let polished = engine.solve("ws-q+ls", &q).unwrap();
        assert!(polished.wiener_index <= base.wiener_index);
        assert!(polished.connector.contains_all(&q));
    }

    #[test]
    fn size_budget_is_enforced() {
        let g = structured::path(9);
        let engine = QueryEngine::new(&g);
        // The only connector for the endpoints is the whole 9-vertex path.
        let err = engine
            .solve_with("ws-q", &[0, 8], &QueryOptions::new().max_connector_size(4))
            .unwrap_err();
        match err {
            CoreError::BudgetExceeded { size, budget } => {
                assert_eq!(size, 9);
                assert_eq!(budget, 4);
            }
            other => panic!("unexpected error: {other}"),
        }
        // A generous budget passes.
        assert!(engine
            .solve_with("ws-q", &[0, 8], &QueryOptions::new().max_connector_size(9))
            .is_ok());
    }

    #[test]
    fn deadline_still_returns_a_feasible_connector() {
        let g = karate_club();
        let engine = QueryEngine::new(&g);
        let q = [11u32, 24, 25, 29];
        let opts = QueryOptions::new().deadline(Duration::ZERO);
        let report = engine.solve_with("ws-q", &q, &opts).unwrap();
        assert!(report.connector.contains_all(&q));
        assert_eq!(
            report.wiener_index,
            report.connector.wiener_index(&g).unwrap()
        );
        // The expired deadline cut the sweep short.
        let full = engine.solve("ws-q", &q).unwrap();
        assert!(report.candidates <= full.candidates);
    }

    #[test]
    fn batch_results_keep_input_order_and_match_sequential() {
        let g = karate_club();
        let engine = QueryEngine::new(&g);
        let queries: Vec<Vec<NodeId>> = vec![
            vec![0, 33],
            vec![11, 24, 25, 29],
            vec![3, 11, 16],
            vec![5, 28],
        ];
        let batch = engine.solve_batch("ws-q", &queries, &QueryOptions::default());
        assert_eq!(batch.len(), queries.len());
        for (q, r) in queries.iter().zip(&batch) {
            let r = r.as_ref().expect("feasible query");
            let seq = engine.solve("ws-q", q).unwrap();
            assert_eq!(r.connector.vertices(), seq.connector.vertices());
            assert_eq!(r.wiener_index, seq.wiener_index);
        }
    }

    #[test]
    fn batch_reports_per_query_errors_in_place() {
        let split = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let engine = QueryEngine::new(&split);
        let queries: Vec<Vec<NodeId>> = vec![vec![0, 1], vec![0, 3], vec![2, 3]];
        let batch = engine.solve_batch("ws-q", &queries, &QueryOptions::default());
        assert!(batch[0].is_ok());
        assert!(matches!(batch[1], Err(CoreError::QueryNotConnectable)));
        assert!(batch[2].is_ok());
        // Unknown solvers error on every slot instead of panicking.
        let bad = engine.solve_batch("nope", &queries, &QueryOptions::default());
        assert!(bad
            .iter()
            .all(|r| matches!(r, Err(CoreError::UnknownSolver { .. }))));
    }

    #[test]
    fn solve_cache_hits_and_bypasses() {
        let g = karate_club();
        let engine = QueryEngine::new(&g);
        let q = [11u32, 24, 25, 29];

        let cold = engine.solve("ws-q", &q).unwrap();
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 1, 1));

        // Same query, permuted and with duplicates: canonicalization hits.
        let hot = engine.solve("ws-q", &[29, 11, 25, 24, 11]).unwrap();
        assert_eq!(hot.connector.vertices(), cold.connector.vertices());
        assert_eq!(hot.wiener_index, cold.wiener_index);
        assert_eq!(hot.candidates, cold.candidates);
        assert_eq!(engine.cache_stats().hits, 1);

        // no_cache bypasses without touching the counters or the store.
        let fresh = engine
            .solve_with("ws-q", &q, &QueryOptions::new().no_cache())
            .unwrap();
        assert_eq!(fresh.connector.vertices(), cold.connector.vertices());
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));

        // A deadline-bearing query is never cached or replayed.
        let opts = QueryOptions::new().deadline(Duration::from_secs(60));
        engine.solve_with("ws-q", &q, &opts).unwrap();
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));

        // Different solver and different size budget are distinct keys.
        engine.solve("ws-q+ls", &q).unwrap();
        engine
            .solve_with("ws-q", &q, &QueryOptions::new().max_connector_size(30))
            .unwrap();
        assert_eq!(engine.cache_stats().entries, 3);
    }

    #[test]
    fn solve_cache_capacity_bounds_and_evicts_lru() {
        let g = structured::path(40);
        let mut engine = QueryEngine::new(&g);
        engine.set_solve_cache_capacity(2);
        engine.solve("ws-q", &[0, 1]).unwrap();
        engine.solve("ws-q", &[1, 2]).unwrap();
        engine.solve("ws-q", &[0, 1]).unwrap(); // refresh {0,1}
        engine.solve("ws-q", &[2, 3]).unwrap(); // evicts LRU {1,2}
        let stats = engine.cache_stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.capacity, 2);
        // {0,1} survived the eviction, {1,2} did not.
        engine.solve("ws-q", &[0, 1]).unwrap();
        assert_eq!(engine.cache_stats().hits, 2);
        engine.solve("ws-q", &[1, 2]).unwrap();
        assert_eq!(engine.cache_stats().hits, 2);

        // Capacity 0 disables caching entirely.
        engine.set_solve_cache_capacity(0);
        engine.solve("ws-q", &[0, 1]).unwrap();
        engine.solve("ws-q", &[0, 1]).unwrap();
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.entries, stats.capacity), (0, 0, 0));
    }

    #[test]
    fn cached_and_fresh_reports_agree_for_every_core_solver() {
        let g = karate_club();
        let engine = QueryEngine::new(&g);
        let q = [11u32, 24, 25, 29];
        for solver in engine.solver_names() {
            let first = engine.solve(solver, &q).unwrap();
            let cached = engine.solve(solver, &q).unwrap();
            let uncached = engine
                .solve_with(solver, &q, &QueryOptions::new().no_cache())
                .unwrap();
            for other in [&cached, &uncached] {
                assert_eq!(first.connector.vertices(), other.connector.vertices());
                assert_eq!(first.wiener_index, other.wiener_index);
                assert_eq!(first.candidates, other.candidates);
                assert_eq!(first.optimal, other.optimal);
            }
        }
    }

    #[test]
    fn kernel_toggle_is_observable_and_parity_holds() {
        let g = karate_club();
        let mut engine = QueryEngine::new(&g);
        assert!(engine.context(QueryOptions::default()).kernel_enabled());
        let q = [11u32, 24, 25, 29];
        let on = engine.solve("ws-q", &q).unwrap();
        engine.set_kernel_enabled(false);
        assert!(!engine.context(QueryOptions::default()).kernel_enabled());
        let off = engine
            .solve_with("ws-q", &q, &QueryOptions::new().no_cache())
            .unwrap();
        assert_eq!(on.connector.vertices(), off.connector.vertices());
        assert_eq!(on.wiener_index, off.wiener_index);
    }

    #[test]
    fn wsq_batching_toggle_is_invisible_in_results() {
        let g = karate_club();
        let mut engine = QueryEngine::new(&g);
        assert!(engine.context(QueryOptions::default()).batch_enabled());
        let q = [11u32, 24, 25, 29];
        let on = engine.solve("ws-q", &q).unwrap();
        engine.set_batch_enabled(false);
        assert!(!engine.context(QueryOptions::default()).batch_enabled());
        let off = engine
            .solve_with("ws-q", &q, &QueryOptions::new().no_cache())
            .unwrap();
        assert_eq!(on.connector.vertices(), off.connector.vertices());
        assert_eq!(on.wiener_index, off.wiener_index);
        assert_eq!(on.candidates, off.candidates);
        // The approximate solver honors the toggle too.
        engine.set_batch_enabled(true);
        let a_on = engine.solve("ws-q-approx", &q).unwrap();
        engine.set_batch_enabled(false);
        let a_off = engine
            .solve_with("ws-q-approx", &q, &QueryOptions::new().no_cache())
            .unwrap();
        assert_eq!(a_on.connector.vertices(), a_off.connector.vertices());
        assert_eq!(a_on.wiener_index, a_off.wiener_index);
    }

    #[test]
    fn solve_cache_is_bounded_in_bytes() {
        let g = structured::path(60);
        let mut engine = QueryEngine::new(&g);
        // Room for plenty of entries by count, almost none by bytes: the
        // byte budget must do the bounding.
        engine.set_solve_cache_capacity(1024);
        engine.set_solve_cache_bytes(600);
        let stats = engine.cache_stats();
        assert_eq!(stats.capacity, 1024);
        assert_eq!(stats.capacity_bytes, 600);
        for i in 0..10u32 {
            engine.solve("ws-q", &[i, i + 1]).unwrap();
        }
        let stats = engine.cache_stats();
        assert!(
            stats.bytes_used <= 600,
            "{} bytes resident",
            stats.bytes_used
        );
        assert!(stats.entries < 10, "byte budget never evicted");
        assert!(stats.evictions > 0);
        // Cached entries still replay correctly after byte-driven
        // evictions.
        let fresh = engine
            .solve_with("ws-q", &[8, 9], &QueryOptions::new().no_cache())
            .unwrap();
        let replay = engine.solve("ws-q", &[8, 9]).unwrap();
        assert_eq!(fresh.connector.vertices(), replay.connector.vertices());

        // An entry bigger than the whole budget is skipped, not cached.
        engine.set_solve_cache_bytes(8);
        engine.solve("ws-q", &[0, 1]).unwrap();
        let stats = engine.cache_stats();
        assert_eq!((stats.entries, stats.bytes_used), (0, 0));

        // Byte budget 0 disables caching like capacity 0 does.
        engine.set_solve_cache_bytes(0);
        engine.solve("ws-q", &[0, 1]).unwrap();
        engine.solve("ws-q", &[0, 1]).unwrap();
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 0));
    }

    #[test]
    fn solve_cache_ttl_expires_entries() {
        let g = karate_club();
        let mut engine = QueryEngine::new(&g);
        engine.set_solve_cache_ttl(Some(Duration::from_millis(40)));
        let q = [11u32, 24, 25, 29];

        let cold = engine.solve("ws-q", &q).unwrap();
        // Within the TTL: a normal hit.
        let hot = engine.solve("ws-q", &q).unwrap();
        assert_eq!(hot.connector.vertices(), cold.connector.vertices());
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.expired), (1, 1, 0));

        // Past the TTL: the entry is dropped on discovery and re-solved.
        std::thread::sleep(Duration::from_millis(60));
        let fresh = engine.solve("ws-q", &q).unwrap();
        assert_eq!(fresh.connector.vertices(), cold.connector.vertices());
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.expired), (1, 2, 1));
        // The re-solve repopulated the cache; it hits again until the next
        // expiry.
        engine.solve("ws-q", &q).unwrap();
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.entries), (2, 1));

        // Expiry is measured from insertion, not last use: repeated hits
        // cannot keep an entry alive past the TTL.
        std::thread::sleep(Duration::from_millis(60));
        engine.solve("ws-q", &q).unwrap();
        assert_eq!(engine.cache_stats().expired, 2);

        // No TTL (the default) never expires.
        engine.set_solve_cache_ttl(None);
        engine.solve("ws-q", &q).unwrap();
        std::thread::sleep(Duration::from_millis(60));
        engine.solve("ws-q", &q).unwrap();
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.expired), (1, 0));
    }

    #[test]
    fn cache_bytes_track_inserts_and_replacements() {
        let g = structured::path(30);
        let engine = QueryEngine::new(&g);
        engine.solve("ws-q", &[0, 3]).unwrap();
        let one = engine.cache_stats();
        assert!(one.bytes_used > 0);
        assert_eq!(one.capacity_bytes, DEFAULT_SOLVE_CACHE_BYTES);
        engine.solve("ws-q", &[5, 9]).unwrap();
        let two = engine.cache_stats();
        assert!(two.bytes_used > one.bytes_used);
        // A cache hit does not change residency.
        engine.solve("ws-q", &[0, 3]).unwrap();
        assert_eq!(engine.cache_stats().bytes_used, two.bytes_used);
    }

    #[test]
    fn oracle_config_is_respected_before_first_use() {
        let g = karate_club();
        let mut engine = QueryEngine::new(&g);
        engine.set_oracle_config(4, mwc_graph::oracle::LandmarkStrategy::HighestDegree, 7);
        assert_eq!(engine.landmark_oracle().num_landmarks(), 4);
        // Oracle is cached: same landmarks on re-access.
        assert_eq!(engine.landmark_oracle().num_landmarks(), 4);
    }

    #[test]
    fn shared_caches_are_deterministic_and_reused() {
        let g = karate_club();
        let engine = QueryEngine::new(&g);
        let o1 = engine.landmark_oracle().landmarks().to_vec();
        let o2 = engine.landmark_oracle().landmarks().to_vec();
        assert_eq!(o1, o2);
        assert_eq!(engine.degree_centrality().len(), g.num_nodes());
        // The approx solver goes through the same shared oracle.
        let q = [11u32, 24, 25, 29];
        let a = engine.solve("ws-q-approx", &q).unwrap();
        let b = engine.solve("ws-q-approx", &q).unwrap();
        assert_eq!(a.connector.vertices(), b.connector.vertices());
        // Workspaces returned to the pool after the solves.
        assert!(
            engine
                .context(QueryOptions::default())
                .workspace_pool()
                .idle()
                > 0
        );
    }

    #[test]
    fn solve_group_matches_individual_solves_across_mixed_solvers() {
        let g = karate_club();
        let grouped = QueryEngine::new(&g);
        let reference = QueryEngine::new(&g);
        let queries = vec![
            GroupQuery::new("ws-q", vec![11, 24, 25, 29], QueryOptions::default()),
            GroupQuery::new("ws-q+ls", vec![0, 33], QueryOptions::default()),
            GroupQuery::new("ws-q-approx", vec![3, 11, 16], QueryOptions::default()),
            GroupQuery::new("exact", vec![5, 28], QueryOptions::default()),
            GroupQuery::new("ws-q", vec![2, 8, 30], QueryOptions::new().no_cache()),
            GroupQuery::new(
                "ws-q",
                vec![0, 16, 26],
                QueryOptions::new().max_connector_size(34),
            ),
        ];
        let outcome = grouped.solve_group(&queries);
        assert_eq!(outcome.results.len(), queries.len());
        for (gq, result) in queries.iter().zip(&outcome.results) {
            let coalesced = result.as_ref().expect("feasible query");
            let direct = reference
                .solve_with(&gq.solver, &gq.q, &gq.options)
                .unwrap();
            assert_eq!(
                coalesced.connector.vertices(),
                direct.connector.vertices(),
                "{} {:?}",
                gq.solver,
                gq.q
            );
            assert_eq!(coalesced.wiener_index, direct.wiener_index);
            assert_eq!(coalesced.candidates, direct.candidates);
            assert_eq!(coalesced.optimal, direct.optimal);
        }
        // Multiple multi-root ws-q jobs in one window: the prefetch ran
        // and packed every distinct root into shared sweeps.
        assert!(outcome.stats.shared_sweeps >= 1);
        assert!(outcome.stats.shared_roots > 2);
        assert_eq!(outcome.stats.requests, queries.len() as u64);
        assert_eq!(outcome.stats.executed, queries.len() as u64);
    }

    #[test]
    fn solve_group_dedups_identical_work_and_counts_cache_hits() {
        let g = karate_club();
        let engine = QueryEngine::new(&g);
        let q = vec![11u32, 24, 25, 29];
        // Permutations and duplicates canonicalize to one execution.
        let queries = vec![
            GroupQuery::new("ws-q", q.clone(), QueryOptions::default()),
            GroupQuery::new("ws-q", vec![29, 11, 25, 24, 11], QueryOptions::default()),
            GroupQuery::new("ws-q", q.clone(), QueryOptions::new().no_cache()),
        ];
        let outcome = engine.solve_group(&queries);
        assert_eq!(outcome.stats.requests, 3);
        assert_eq!(outcome.stats.deduped, 2);
        assert_eq!(outcome.stats.executed, 1);
        assert_eq!(outcome.stats.cache_hits, 0);
        let first = outcome.results[0].as_ref().unwrap();
        for r in &outcome.results[1..] {
            let r = r.as_ref().unwrap();
            assert_eq!(r.connector.vertices(), first.connector.vertices());
            assert_eq!(r.wiener_index, first.wiener_index);
        }
        // The execution populated the cache: a second window replays it.
        let again =
            engine.solve_group(&[GroupQuery::new("ws-q", q.clone(), QueryOptions::default())]);
        assert_eq!(again.stats.cache_hits, 1);
        assert_eq!(again.stats.executed, 0);
        assert_eq!(
            again.results[0].as_ref().unwrap().connector.vertices(),
            first.connector.vertices()
        );
        // Deadline-bearing queries are neither deduplicated nor cached.
        let opts = QueryOptions::new().deadline(Duration::from_secs(60));
        let timed = engine.solve_group(&[
            GroupQuery::new("ws-q", vec![0, 33], opts.clone()),
            GroupQuery::new("ws-q", vec![0, 33], opts),
        ]);
        assert_eq!(timed.stats.deduped, 0);
        assert_eq!(timed.stats.executed, 2);
    }

    #[test]
    fn solve_group_reports_errors_in_place() {
        let split = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let engine = QueryEngine::new(&split);
        let queries = vec![
            GroupQuery::new("ws-q", vec![0, 1], QueryOptions::default()),
            GroupQuery::new("nope", vec![0, 1], QueryOptions::default()),
            GroupQuery::new("ws-q", vec![0, 3], QueryOptions::default()),
            // Duplicate of the infeasible query: the shared error fans out.
            GroupQuery::new("ws-q", vec![3, 0], QueryOptions::default()),
        ];
        let outcome = engine.solve_group(&queries);
        assert!(outcome.results[0].is_ok());
        assert!(matches!(
            outcome.results[1],
            Err(CoreError::UnknownSolver { .. })
        ));
        assert!(matches!(
            outcome.results[2],
            Err(CoreError::QueryNotConnectable)
        ));
        assert!(matches!(
            outcome.results[3],
            Err(CoreError::QueryNotConnectable)
        ));
        assert_eq!(outcome.stats.deduped, 1);
        // Size budgets are enforced per query inside the group.
        let path = structured::path(9);
        let engine = QueryEngine::new(&path);
        let outcome = engine.solve_group(&[GroupQuery::new(
            "ws-q",
            vec![0, 8],
            QueryOptions::new().max_connector_size(4),
        )]);
        assert!(matches!(
            outcome.results[0],
            Err(CoreError::BudgetExceeded { size: 9, budget: 4 })
        ));
    }

    #[test]
    fn solve_group_empty_and_single_are_degenerate() {
        let g = karate_club();
        let engine = QueryEngine::new(&g);
        let empty = engine.solve_group(&[]);
        assert!(empty.results.is_empty());
        assert_eq!(empty.stats, GroupStats::default());
        // A lone query runs without a prefetch (its own sweep already
        // packs lanes) and matches the direct call.
        let lone = engine.solve_group(&[GroupQuery::new(
            "ws-q",
            vec![11, 24, 25, 29],
            QueryOptions::new().no_cache(),
        )]);
        assert_eq!(lone.stats.shared_sweeps, 0);
        let direct = engine
            .solve_with("ws-q", &[11, 24, 25, 29], &QueryOptions::new().no_cache())
            .unwrap();
        assert_eq!(
            lone.results[0].as_ref().unwrap().connector.vertices(),
            direct.connector.vertices()
        );
    }

    use mwc_graph::Graph;
}
