//! The [`Connector`] solution type shared by `ws-q`, the exact solvers, and
//! the baselines.

use mwc_graph::connectivity::is_connected_subset;
use mwc_graph::{wiener, Graph, InducedSubgraph, NodeId};

use crate::error::{CoreError, Result};

/// A connector for a query set: a vertex set `S ⊇ Q` whose induced
/// subgraph `G[S]` is connected (paper §2).
///
/// The struct stores only the vertex set; all derived quantities (Wiener
/// index, density, …) are computed against the graph on demand, since the
/// baselines can return solutions with tens of thousands of vertices where
/// eager evaluation would be wasteful.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Connector {
    vertices: Vec<NodeId>,
}

impl Connector {
    /// Wraps a vertex set after validating it is non-empty, in range, and
    /// induces a connected subgraph.
    pub fn new(g: &Graph, vertices: &[NodeId]) -> Result<Self> {
        let mut vs: Vec<NodeId> = vertices.to_vec();
        vs.sort_unstable();
        vs.dedup();
        if vs.is_empty() {
            return Err(CoreError::EmptyQuery);
        }
        for &v in &vs {
            g.check_node(v)?;
        }
        if !is_connected_subset(g, &vs)? {
            return Err(CoreError::Graph(mwc_graph::GraphError::Disconnected));
        }
        Ok(Connector { vertices: vs })
    }

    /// Wraps a vertex set that is connected by construction (e.g. the node
    /// set of a tree), skipping the `O(|S| log |S| + Σ deg)` validation of
    /// [`Connector::new`]. Debug builds still verify; callers in this
    /// workspace only use it for sets produced by a traversal.
    pub fn new_unchecked(g: &Graph, mut vertices: Vec<NodeId>) -> Self {
        vertices.sort_unstable();
        vertices.dedup();
        debug_assert!(is_connected_subset(g, &vertices).unwrap_or(false));
        let _ = g;
        Connector { vertices }
    }

    /// Wraps an already-solved vertex set *without* a graph to validate
    /// against — for re-inflating a connector received over a wire
    /// protocol (`mwc_service`'s client), where the graph lives on the
    /// other end. Sorts and dedups; connectivity is the sender's
    /// contract. Graph-dependent accessors ([`Connector::induced`],
    /// [`Connector::wiener_index`], …) still work once a graph is
    /// supplied, and error if the set does not fit it.
    pub fn from_vertices(mut vertices: Vec<NodeId>) -> Self {
        vertices.sort_unstable();
        vertices.dedup();
        Connector { vertices }
    }

    /// The sorted vertex set.
    pub fn vertices(&self) -> &[NodeId] {
        &self.vertices
    }

    /// Number of vertices `|V(H)|`.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Whether the connector is empty (never true for validated
    /// connectors).
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Whether `v` belongs to the connector.
    pub fn contains(&self, v: NodeId) -> bool {
        self.vertices.binary_search(&v).is_ok()
    }

    /// Whether the connector covers the whole query set.
    pub fn contains_all(&self, q: &[NodeId]) -> bool {
        q.iter().all(|&v| self.contains(v))
    }

    /// The induced subgraph `G[S]`.
    pub fn induced(&self, g: &Graph) -> Result<InducedSubgraph> {
        g.induced(&self.vertices).map_err(CoreError::from)
    }

    /// Exact Wiener index `W(G[S])`.
    ///
    /// `O(|S| · (|S| + |E[S]|))`; prefer [`Connector::wiener_index_sampled`]
    /// for very large baseline solutions.
    pub fn wiener_index(&self, g: &Graph) -> Result<u64> {
        self.wiener_index_with(g, false)
    }

    /// Exact Wiener index `W(G[S])`, with explicit control over the
    /// evaluation kernel. `prefer_sequential = true` pins the per-source
    /// loop even on connectors large enough (≥ 1024 vertices) for
    /// [`wiener::wiener_index`] to spawn its own worker threads — the
    /// contract batch workers need: N queries already saturate the cores,
    /// and a nested pool per large connector oversubscribes them. The
    /// value is identical either way (the property tests pin the two
    /// kernels against each other).
    pub fn wiener_index_with(&self, g: &Graph, prefer_sequential: bool) -> Result<u64> {
        let sub = self.induced(g)?;
        let w = if prefer_sequential {
            wiener::wiener_index_sequential(sub.graph())
        } else {
            wiener::wiener_index(sub.graph())
        };
        w.ok_or(CoreError::Graph(mwc_graph::GraphError::Disconnected))
    }

    /// Sampled Wiener index estimate (see
    /// [`mwc_graph::wiener::wiener_index_sampled`]).
    pub fn wiener_index_sampled<R: rand::Rng>(
        &self,
        g: &Graph,
        samples: usize,
        rng: &mut R,
    ) -> Result<f64> {
        let sub = self.induced(g)?;
        wiener::wiener_index_sampled(sub.graph(), samples, rng)
            .ok_or(CoreError::Graph(mwc_graph::GraphError::Disconnected))
    }

    /// Density of the induced subgraph, `|E[S]| / C(|S|, 2)` (Table 3's
    /// `δ(H)`).
    pub fn density(&self, g: &Graph) -> Result<f64> {
        let sub = self.induced(g)?;
        Ok(mwc_graph::metrics::density(sub.graph()))
    }

    /// Average of a per-vertex score (e.g. betweenness centrality of the
    /// *input* graph — Table 3's `bc(H)`) over the connector's vertices.
    pub fn average_score(&self, score: &[f64]) -> f64 {
        if self.vertices.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.vertices.iter().map(|&v| score[v as usize]).sum();
        sum / self.vertices.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::generators::structured;

    #[test]
    fn validates_connectivity() {
        let g = structured::path(5);
        assert!(Connector::new(&g, &[1, 2, 3]).is_ok());
        assert!(Connector::new(&g, &[1, 3]).is_err());
        assert!(Connector::new(&g, &[]).is_err());
        assert!(Connector::new(&g, &[9]).is_err());
    }

    #[test]
    fn dedups_and_sorts() {
        let g = structured::path(5);
        let c = Connector::new(&g, &[3, 1, 2, 3]).unwrap();
        assert_eq!(c.vertices(), &[1, 2, 3]);
        assert_eq!(c.len(), 3);
        assert!(c.contains(2));
        assert!(!c.contains(0));
        assert!(c.contains_all(&[1, 3]));
        assert!(!c.contains_all(&[1, 4]));
    }

    #[test]
    fn derived_metrics() {
        let g = structured::complete(6);
        let c = Connector::new(&g, &[0, 1, 2, 3]).unwrap();
        assert_eq!(c.wiener_index(&g).unwrap(), 6); // K4: all pairs at 1
        assert_eq!(c.density(&g).unwrap(), 1.0);
        let score = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        assert_eq!(c.average_score(&score), 2.5);
    }

    #[test]
    fn sequential_and_parallel_wiener_agree_above_threshold() {
        // 40×40 grid: 1600 vertices, past the parallel kernel's 1024-node
        // cutoff, so `prefer_sequential = false` takes the multi-source
        // parallel path and `true` pins the per-source loop. Same value.
        let g = structured::grid(40, 40, false);
        let all: Vec<NodeId> = (0..1600).collect();
        let c = Connector::new_unchecked(&g, all);
        let parallel = c.wiener_index_with(&g, false).unwrap();
        let sequential = c.wiener_index_with(&g, true).unwrap();
        assert_eq!(parallel, sequential);
        assert_eq!(parallel, c.wiener_index(&g).unwrap());
        // Below the cutoff the two flags trivially agree too.
        let small = Connector::new(&g, &[0, 1, 2, 3]).unwrap();
        assert_eq!(
            small.wiener_index_with(&g, true).unwrap(),
            small.wiener_index_with(&g, false).unwrap()
        );
    }

    #[test]
    fn sampled_wiener_close_to_exact() {
        use rand::SeedableRng;
        let g = structured::grid(12, 12, false);
        let all: Vec<NodeId> = (0..144).collect();
        let c = Connector::new(&g, &all).unwrap();
        let exact = c.wiener_index(&g).unwrap() as f64;
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let est = c.wiener_index_sampled(&g, 60, &mut rng).unwrap();
        assert!((est - exact).abs() / exact < 0.15);
    }
}
