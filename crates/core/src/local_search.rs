//! Local-search refinement of connectors.
//!
//! Used by the Table 2 reproduction as the upper-bound (`GU`) generator:
//! the paper warm-starts Gurobi with the `ws-q` solution so the solver's
//! upper bound can only improve on it; here a vertex add/remove local
//! search plays that role. Also exposed as an optional polish step on any
//! connector.

use std::time::Instant;

use mwc_graph::{wiener, Graph, NodeId};

use crate::connector::Connector;
use crate::error::{CoreError, Result};
use crate::wsq::normalize_query;

/// Limits for [`refine`].
#[derive(Debug, Clone)]
pub struct LocalSearchConfig {
    /// Maximum improvement rounds (each round scans all moves once).
    pub max_rounds: usize,
    /// Skip *addition* moves once the connector reaches this size (keeps
    /// the `O(|S|² · (|S| + |E[S]|))` per-round cost bounded).
    pub max_size: usize,
    /// Try swap moves (replace one non-query member by one frontier
    /// vertex) when the connector has at most this many vertices — swaps
    /// escape local optima that pure add/remove cannot, at `O(|S| ·
    /// frontier)` Wiener evaluations per round.
    pub swap_threshold: usize,
    /// Cooperative wall-clock deadline, checked between passes: once
    /// passed, [`refine`] stops and returns the best connector found so
    /// far (never worse than `initial`). Set by the engine's `ws-q+ls`
    /// solver from
    /// [`QueryOptions::deadline`](crate::engine::QueryOptions::deadline).
    pub deadline: Option<Instant>,
    /// Keep every Wiener evaluation on the sequential per-source kernel,
    /// even on connectors large enough for the parallel one. Set by the
    /// engine's batch workers (which already parallelize *across*
    /// queries) so a batch of large-connector refinements cannot nest a
    /// thread pool per move evaluation. Results are identical either way.
    pub prefer_sequential: bool,
}

impl Default for LocalSearchConfig {
    fn default() -> Self {
        LocalSearchConfig {
            max_rounds: 64,
            max_size: 512,
            swap_threshold: 48,
            deadline: None,
            prefer_sequential: false,
        }
    }
}

/// Improves `initial` by repeated first-improvement vertex removals and
/// additions, preserving `Q ⊆ S` and connectivity. Returns the refined
/// connector and its Wiener index.
///
/// Deterministic: moves are scanned in ascending vertex order.
pub fn refine(
    g: &Graph,
    q: &[NodeId],
    initial: &Connector,
    cfg: &LocalSearchConfig,
) -> Result<(Connector, u64)> {
    let q = normalize_query(g, q)?;
    if !initial.contains_all(&q) {
        return Err(CoreError::UnsupportedInstance {
            what: "initial connector does not contain the query set".into(),
        });
    }
    let mut current: Vec<NodeId> = initial.vertices().to_vec();
    let mut best_w = initial.wiener_index_with(g, cfg.prefer_sequential)?;
    let expired = || cfg.deadline.is_some_and(|d| Instant::now() >= d);

    for _round in 0..cfg.max_rounds {
        if expired() {
            break;
        }
        let mut improved = false;

        // Removal pass: try dropping each non-query vertex.
        let snapshot = current.clone();
        for &v in &snapshot {
            if q.binary_search(&v).is_ok() || current.len() <= 2 {
                continue;
            }
            let candidate: Vec<NodeId> = current.iter().copied().filter(|&x| x != v).collect();
            if let Some(w) = subset_wiener(g, &candidate, cfg.prefer_sequential) {
                if w < best_w {
                    current = candidate;
                    best_w = w;
                    improved = true;
                }
            }
        }

        // Addition pass: try each frontier vertex (neighbor of the set).
        if current.len() < cfg.max_size && !expired() {
            for v in frontier(g, &current) {
                let mut candidate = current.clone();
                candidate.push(v);
                candidate.sort_unstable();
                if let Some(w) = subset_wiener(g, &candidate, cfg.prefer_sequential) {
                    if w < best_w {
                        current = candidate;
                        best_w = w;
                        improved = true;
                    }
                }
                if current.len() >= cfg.max_size {
                    break;
                }
            }
        }

        // Swap pass: exchange one removable member for one frontier vertex.
        // Only on small connectors — the move set is quadratic.
        if !improved && current.len() <= cfg.swap_threshold && !expired() {
            let frontier_now = frontier(g, &current);
            'swaps: for &out in &current.clone() {
                if q.binary_search(&out).is_ok() {
                    continue;
                }
                for &inn in &frontier_now {
                    if inn == out {
                        continue;
                    }
                    let mut candidate: Vec<NodeId> =
                        current.iter().copied().filter(|&x| x != out).collect();
                    candidate.push(inn);
                    candidate.sort_unstable();
                    if let Some(w) = subset_wiener(g, &candidate, cfg.prefer_sequential) {
                        if w < best_w {
                            current = candidate;
                            best_w = w;
                            improved = true;
                            break 'swaps;
                        }
                    }
                }
            }
        }

        if !improved {
            break;
        }
    }

    Ok((Connector::new_unchecked(g, current), best_w))
}

/// Sorted frontier: vertices adjacent to the set but outside it.
fn frontier(g: &Graph, set: &[NodeId]) -> Vec<NodeId> {
    let mut out: Vec<NodeId> = Vec::new();
    for &u in set {
        for &v in g.neighbors(u) {
            if set.binary_search(&v).is_err() {
                out.push(v);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Wiener index of `G[S]`, `None` if disconnected. Thin wrapper keeping
/// the hot path free of `Result` plumbing. This is the refinement loop's
/// hot spot — one all-pairs evaluation per attempted move — and routes
/// through the batched distance kernel inside [`wiener::wiener_index`]
/// (multi-source BFS above the small-subgraph cutoff) unless
/// `prefer_sequential` pins the per-source loop (batch workers must not
/// nest a thread pool per move evaluation).
fn subset_wiener(g: &Graph, set: &[NodeId], prefer_sequential: bool) -> Option<u64> {
    let sub = g.induced(set).ok()?;
    if prefer_sequential {
        wiener::wiener_index_sequential(sub.graph())
    } else {
        wiener::wiener_index(sub.graph())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::generators::{karate::karate_club, structured};

    #[test]
    fn refinement_never_worsens() {
        let g = karate_club();
        let q: Vec<NodeId> = vec![11, 24, 25, 29];
        let sol = crate::wsq::minimum_wiener_connector(&g, &q).unwrap();
        let (refined, w) = refine(&g, &q, &sol.connector, &LocalSearchConfig::default()).unwrap();
        assert!(w <= sol.wiener_index);
        assert!(refined.contains_all(&q));
        assert_eq!(w, refined.wiener_index(&g).unwrap());
    }

    #[test]
    fn removes_useless_vertices() {
        // Start from the whole path but query only the middle: local search
        // should peel the dangling ends.
        let g = structured::path(9);
        let q: Vec<NodeId> = vec![3, 5];
        let all = Connector::new(&g, &(0..9).collect::<Vec<_>>()).unwrap();
        let (refined, w) = refine(&g, &q, &all, &LocalSearchConfig::default()).unwrap();
        assert_eq!(refined.vertices(), &[3, 4, 5]);
        assert_eq!(w, 4); // path of 3: 1 + 1 + 2
    }

    #[test]
    fn adds_profitable_hub() {
        // Figure 2: start from the bare line (W = 165); adding the roots
        // reaches the optimum 142.
        let g = structured::figure2_graph(10);
        let q: Vec<NodeId> = (0..10).collect();
        let line = Connector::new(&g, &q).unwrap();
        let (refined, w) = refine(&g, &q, &line, &LocalSearchConfig::default()).unwrap();
        assert!(w < 165, "local search failed to improve: {w}");
        assert!(refined.len() > 10);
        assert_eq!(w, 142, "both roots should be added");
    }

    #[test]
    fn respects_query_containment() {
        let g = structured::path(5);
        let q: Vec<NodeId> = vec![0, 4];
        let all = Connector::new(&g, &(0..5).collect::<Vec<_>>()).unwrap();
        let (refined, _) = refine(&g, &q, &all, &LocalSearchConfig::default()).unwrap();
        assert!(refined.contains_all(&q));
        assert_eq!(refined.len(), 5); // nothing removable on a path
    }

    #[test]
    fn rejects_initial_missing_query() {
        let g = structured::path(5);
        let c = Connector::new(&g, &[0, 1]).unwrap();
        assert!(refine(&g, &[0, 4], &c, &LocalSearchConfig::default()).is_err());
    }

    #[test]
    fn swap_escapes_add_remove_local_optimum() {
        // Two parallel 2-hop routes between query endpoints: 0-1-3 and
        // 0-2-3 where vertex 2 additionally shortcuts to both queries'
        // far sides... construct: diamond + pendant making route via 1
        // initially chosen but route via 2 strictly better after a swap
        // (2 also adjacent to an extra query vertex 4).
        // Edges: 0-1, 1-3, 0-2, 2-3, 2-4, 3-4.
        let g = Graph::from_edges(5, &[(0, 1), (1, 3), (0, 2), (2, 3), (2, 4), (3, 4)]).unwrap();
        let q: Vec<NodeId> = vec![0, 3, 4];
        // Start from the suboptimal route through 1: {0, 1, 3, 4}, W = 10.
        // Vertex 1 cannot be removed (0 would disconnect) and adding 2
        // raises W to 14 — only the swap 1 → 2 reaches the optimum
        // {0, 2, 3, 4} with W = 8.
        let start = Connector::new(&g, &[0, 1, 3, 4]).unwrap();
        assert_eq!(start.wiener_index(&g).unwrap(), 10);
        let (refined, w) = refine(&g, &q, &start, &LocalSearchConfig::default()).unwrap();
        assert_eq!(w, 8, "refined to {:?}", refined.vertices());
        assert!(refined.contains(2) && !refined.contains(1));
    }

    #[test]
    fn prefer_sequential_refinement_is_bit_identical() {
        // `refine` is deterministic given identical Wiener values, and the
        // sequential and parallel kernels are value-identical — so the
        // escape hatch must be invisible in the result. A 1100-vertex path
        // crosses the parallel kernel's 1024-node cutoff on the initial
        // evaluation (and on every attempted removal, all of which
        // disconnect), while keeping each move cheap enough for a test.
        // Query everything except the dangling endpoint 0, so exactly one
        // removal move exists (dropping 0 shrinks the path and improves W)
        // and each round costs only a handful of large evaluations.
        let g = structured::path(1100);
        let q: Vec<NodeId> = (1..1100).collect();
        let all = Connector::new(&g, &(0..1100).collect::<Vec<_>>()).unwrap();
        let cfg = |prefer_sequential| LocalSearchConfig {
            prefer_sequential,
            ..Default::default()
        };
        let (par, w_par) = refine(&g, &q, &all, &cfg(false)).unwrap();
        let (seq, w_seq) = refine(&g, &q, &all, &cfg(true)).unwrap();
        assert_eq!(par.vertices(), seq.vertices());
        assert_eq!(w_par, w_seq);
        // Both kernels must have taken the same improving move (peel
        // vertex 0) and agree with the path closed form W(P_n)=(n³−n)/6.
        assert_eq!(par.vertices(), (1..1100).collect::<Vec<_>>());
        let n = 1099u64;
        assert_eq!(w_par, (n * n * n - n) / 6);
    }

    #[test]
    fn max_rounds_zero_is_identity() {
        let g = structured::path(5);
        let c = Connector::new(&g, &(0..5).collect::<Vec<_>>()).unwrap();
        let cfg = LocalSearchConfig {
            max_rounds: 0,
            ..Default::default()
        };
        let (refined, w) = refine(&g, &[0, 4], &c, &cfg).unwrap();
        assert_eq!(refined.vertices(), c.vertices());
        assert_eq!(w, c.wiener_index(&g).unwrap());
    }
}
