//! The objective functions of the paper's relaxation chain (§4):
//!
//! * `W(H)` — the Wiener index (Problem 1), provided by `mwc_graph::wiener`;
//! * `A(H, r) = |V(H)| · Σ_u d_H(u, r)` (Problem 2, via Lemma 1:
//!   `A(H)/2 ≤ W(H) ≤ A(H)`);
//! * `Ã(H, r) = |V(H)| · Σ_u d_G(u, r)` — distances in the *input* graph
//!   (Problem 3);
//! * `B(H, r, λ) = λ|H| + Σ_u d_G(r, u) / λ` — the linearization
//!   (Problem 4, Lemma 3).

use mwc_graph::traversal::bfs::{BfsWorkspace, MsBfsWorkspace, MS_BFS_LANES};
use mwc_graph::traversal::delta::{DeltaWorkspace, MsDeltaWorkspace};
use mwc_graph::{Graph, NodeId};

use crate::error::{CoreError, Result};

/// `A(G[S], r)`: `|S| · Σ_{u ∈ S} d_{G[S]}(u, r)` with distances measured
/// inside the induced subgraph, computed by the direction-optimizing
/// distance kernel.
///
/// Errors if `r ∉ S`; returns `None` if `G[S]` is disconnected (the
/// objective is infinite).
pub fn objective_a(g: &Graph, vertices: &[NodeId], r: NodeId) -> Result<Option<u64>> {
    let sub = g.induced(vertices)?;
    let Some(r_local) = sub.to_local(r) else {
        return Err(CoreError::UnsupportedInstance {
            what: format!("root {r} not contained in the vertex set"),
        });
    };
    let (sum, reached) = if sub.graph().is_weighted() {
        let mut ws = DeltaWorkspace::new();
        ws.run(sub.graph(), r_local);
        ws.last_run_distance_sum()
    } else {
        let mut ws = BfsWorkspace::new();
        ws.run_auto(sub.graph(), r_local);
        ws.last_run_distance_sum()
    };
    if reached != sub.num_nodes() {
        return Ok(None);
    }
    Ok(Some(sum * sub.num_nodes() as u64))
}

/// `A(H) = min_r A(H, r)` over all vertices of the induced subgraph,
/// returning `(argmin, value)`. `None` if disconnected.
///
/// The `|S|` single-source sweeps are batched through the multi-source
/// BFS kernel (64 roots per CSR sweep), so evaluating every root costs a
/// handful of passes over the subgraph instead of `|S|`.
pub fn objective_a_best_root(g: &Graph, vertices: &[NodeId]) -> Result<Option<(NodeId, u64)>> {
    let sub = g.induced(vertices)?;
    let k = sub.num_nodes();
    if k == 0 {
        return Err(CoreError::EmptyQuery);
    }
    let weighted = sub.graph().is_weighted();
    let mut bfs = (!weighted).then(MsBfsWorkspace::new);
    let mut delta = weighted.then(MsDeltaWorkspace::new);
    let mut best: Option<(NodeId, u64)> = None;
    for batch_lo in (0..k).step_by(MS_BFS_LANES) {
        let batch_hi = (batch_lo + MS_BFS_LANES).min(k);
        let sources: Vec<NodeId> = (batch_lo as NodeId..batch_hi as NodeId).collect();
        if let Some(ws) = delta.as_mut() {
            ws.run(sub.graph(), &sources);
        } else if let Some(ws) = bfs.as_mut() {
            ws.run(sub.graph(), &sources);
        }
        for (lane, &local) in sources.iter().enumerate() {
            let (sum, reached) = match delta.as_ref() {
                Some(ws) => ws.distance_sum(lane),
                None => bfs.as_ref().expect("one kernel is leased").distance_sum(lane),
            };
            if reached != k {
                return Ok(None);
            }
            let val = sum * k as u64;
            let global = sub.to_global(local);
            if best.is_none_or(|(_, b)| val < b) {
                best = Some((global, val));
            }
        }
    }
    Ok(best)
}

/// `Ã(H, r) = |H| · sum_dist_g` where `sum_dist_g = Σ_{u ∈ H} d_G(u, r)` is
/// computed by the caller from the precomputed BFS from `r`.
#[inline]
pub fn objective_a_tilde(num_vertices: usize, sum_dist_g: u64) -> u64 {
    num_vertices as u64 * sum_dist_g
}

/// `B(H, r, λ) = λ·|H| + sum_dist_g / λ` (Eq. 3).
#[inline]
pub fn objective_b(num_vertices: usize, sum_dist_g: u64, lambda: f64) -> f64 {
    debug_assert!(lambda > 0.0);
    lambda * num_vertices as f64 + sum_dist_g as f64 / lambda
}

/// The λ of Lemma 3 for a known solution: `λ* = sqrt(sum_dist / |H|)`,
/// the value at which `B` best mirrors `Ã` (by the AM–GM argument of
/// Lemma 10).
#[inline]
pub fn optimal_lambda(num_vertices: usize, sum_dist_g: u64) -> f64 {
    debug_assert!(num_vertices > 0);
    (sum_dist_g as f64 / num_vertices as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::generators::structured;
    use mwc_graph::wiener::wiener_index_of_subset;
    use rand::{Rng, SeedableRng};

    #[test]
    fn objective_a_on_a_path() {
        let g = structured::path(5);
        // S = {0..4}, r = 0: Σd = 10, |S| = 5 → 50.
        let all: Vec<NodeId> = (0..5).collect();
        assert_eq!(objective_a(&g, &all, 0).unwrap(), Some(50));
        // r = 2 (center): Σd = 6 → 30.
        assert_eq!(objective_a(&g, &all, 2).unwrap(), Some(30));
        let (r, val) = objective_a_best_root(&g, &all).unwrap().unwrap();
        assert_eq!((r, val), (2, 30));
    }

    #[test]
    fn objective_a_requires_membership() {
        let g = structured::path(5);
        assert!(objective_a(&g, &[0, 1], 4).is_err());
    }

    #[test]
    fn objective_a_none_when_disconnected() {
        let g = structured::path(5);
        assert_eq!(objective_a(&g, &[0, 1, 3], 0).unwrap(), None);
        assert_eq!(objective_a_best_root(&g, &[0, 1, 3]).unwrap(), None);
    }

    #[test]
    fn weighted_objective_a_uses_weighted_distances() {
        // Path 0 -5- 1 -3- 2 -2- 3: A(·, r) must sum *weighted* distances.
        let g = Graph::from_weighted_edges(4, &[(0, 1, 5), (1, 2, 3), (2, 3, 2)]).unwrap();
        let all: Vec<NodeId> = (0..4).collect();
        // r = 0: Σd = 5 + 8 + 10 = 23 → 92.
        assert_eq!(objective_a(&g, &all, 0).unwrap(), Some(92));
        // r = 1 and r = 2 tie at Σd = 13 → 52; the scan keeps the first.
        let (r, val) = objective_a_best_root(&g, &all).unwrap().unwrap();
        assert_eq!((r, val), (1, 52));
        // Disconnected weighted subsets still report None.
        assert_eq!(objective_a(&g, &[0, 2, 3], 0).unwrap(), None);
        assert_eq!(objective_a_best_root(&g, &[0, 2, 3]).unwrap(), None);
    }

    #[test]
    fn lemma1_sandwich_on_random_subgraphs() {
        // Lemma 1: min_r Σ d_H(v,r) ≤ 2 W(H)/|V(H)| ≤ 2 min_r Σ d_H(v,r),
        // i.e. A(H)/2 ≤ W(H) ≤ A(H).
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        for _ in 0..25 {
            let g = mwc_graph::generators::barabasi_albert(60, 2, &mut rng);
            let size = rng.gen_range(2..20);
            let mut set: Vec<NodeId> = (0..size).map(|_| rng.gen_range(0..60)).collect();
            set.sort_unstable();
            set.dedup();
            let Some(w) = wiener_index_of_subset(&g, &set).unwrap() else {
                continue; // disconnected sample
            };
            let Some((_, a)) = objective_a_best_root(&g, &set).unwrap() else {
                panic!("W finite but A infinite");
            };
            assert!(a / 2 <= w, "A/2 = {} > W = {w}", a / 2);
            assert!(w <= a, "W = {w} > A = {a}");
        }
    }

    #[test]
    fn b_at_optimal_lambda_squares_to_a_tilde() {
        // By AM–GM, B(H, r, λ*)² = 4 · Ã(H, r) at λ* = sqrt(Σd / |H|).
        for (k, sum) in [(3usize, 12u64), (7, 5), (10, 100), (1, 0)] {
            if sum == 0 {
                continue;
            }
            let lambda = optimal_lambda(k, sum);
            let b = objective_b(k, sum, lambda);
            let a = objective_a_tilde(k, sum) as f64;
            assert!((b * b - 4.0 * a).abs() < 1e-6, "k={k} sum={sum}");
        }
    }

    #[test]
    fn b_is_minimized_at_optimal_lambda() {
        let (k, sum) = (6usize, 57u64);
        let star = optimal_lambda(k, sum);
        let at_star = objective_b(k, sum, star);
        for factor in [0.5, 0.8, 1.25, 2.0] {
            assert!(objective_b(k, sum, star * factor) >= at_star - 1e-9);
        }
    }
}
