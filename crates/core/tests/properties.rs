//! Property-based tests for the solver crate's theoretical guarantees.

use proptest::prelude::*;

use mwc_core::adjust::{adjust_distances, ALPHA};
use mwc_core::exact::BitGraph;
use mwc_core::objective::{objective_a_tilde, objective_b, optimal_lambda};
use mwc_core::steiner::mehlhorn_steiner;
use mwc_core::wsq::normalize_query;
use mwc_graph::traversal::bfs::{bfs_distances, bfs_parents};
use mwc_graph::wiener::wiener_index_of_subset;
use mwc_graph::{Graph, GraphBuilder, NodeId};

fn arb_connected_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2usize..max_n, any::<u64>()).prop_map(|(n, seed)| {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        for v in 1..n as NodeId {
            b.add_edge(rng.gen_range(0..v), v).unwrap();
        }
        for _ in 0..rng.gen_range(0..2 * n) {
            b.add_edge(rng.gen_range(0..n as NodeId), rng.gen_range(0..n as NodeId))
                .unwrap();
        }
        b.build()
    })
}

fn pick_terminals(g: &Graph, seed: u64, max_k: usize) -> Vec<NodeId> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let n = g.num_nodes() as NodeId;
    let k = rng.gen_range(1..=max_k.min(g.num_nodes()));
    (0..k).map(|_| rng.gen_range(0..n)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Mehlhorn output is a valid tree spanning the terminals whose weight
    /// is at least the largest terminal-pair distance (any Steiner tree
    /// contains a path between the farthest pair).
    #[test]
    fn steiner_tree_structure(g in arb_connected_graph(40), seed in any::<u64>()) {
        let terminals = pick_terminals(&g, seed, 6);
        let tree = mehlhorn_steiner(&g, &terminals, |_, _| 1.0).unwrap();
        prop_assert!(tree.validate());
        for &t in &terminals {
            prop_assert!(tree.contains(t));
        }
        // Lower bound: weight >= eccentricity within the terminal set.
        let d0 = bfs_distances(&g, terminals[0]);
        let max_pair = terminals.iter().map(|&t| d0[t as usize]).max().unwrap();
        prop_assert!(tree.total_weight >= max_pair as f64);
        // Edges are graph edges.
        for &(u, v) in &tree.edges {
            prop_assert!(g.has_edge(u, v));
        }
    }

    /// For two terminals, Mehlhorn returns an exact shortest path.
    #[test]
    fn steiner_two_terminals_exact(g in arb_connected_graph(40), seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = g.num_nodes() as NodeId;
        let (s, t) = (rng.gen_range(0..n), rng.gen_range(0..n));
        prop_assume!(s != t);
        let tree = mehlhorn_steiner(&g, &[s, t], |_, _| 1.0).unwrap();
        let d = bfs_distances(&g, s);
        prop_assert_eq!(tree.total_weight, d[t as usize] as f64);
    }

    /// All four Lemma 2 properties of AdjustDistances.
    #[test]
    fn adjust_distances_lemma2(g in arb_connected_graph(60), seed in any::<u64>()) {
        let terminals = pick_terminals(&g, seed, 5);
        let tree = mehlhorn_steiner(&g, &terminals, |_, _| 1.0).unwrap();
        let root = terminals[0];
        let bfs = bfs_parents(&g, root);
        let out = adjust_distances(&g, &tree, root, &bfs.dist, &bfs.parent);
        prop_assert!(out.validate());
        // (a) superset
        for &v in &tree.nodes {
            prop_assert!(out.contains(v));
        }
        // (b) size growth
        prop_assert!(out.num_nodes() as f64 <= ALPHA * tree.num_nodes() as f64 + 1e-9);
        // (c) stretch: recompute distances inside the output tree.
        let adj = out.adjacency();
        let mut dist: std::collections::HashMap<NodeId, u32> = Default::default();
        dist.insert(root, 0);
        let mut queue = vec![root];
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            let du = dist[&u];
            for &v in &adj[&u] {
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(v) {
                    e.insert(du + 1);
                    queue.push(v);
                }
            }
        }
        for (&v, &dt) in &dist {
            prop_assert!(dt as f64 <= ALPHA * bfs.dist[v as usize] as f64 + 1e-9,
                "stretch violated at {v}");
        }
        // (d) total distance growth
        let sum = |nodes: &[NodeId]| -> u64 {
            nodes.iter().map(|&v| bfs.dist[v as usize] as u64).sum()
        };
        prop_assert!(sum(&out.nodes) as f64
            <= std::f64::consts::SQRT_2 * sum(&tree.nodes) as f64 + 1e-9);
    }

    /// BitGraph Wiener matches the reference implementation on arbitrary
    /// vertex subsets.
    #[test]
    fn bitgraph_wiener_matches_reference(g in arb_connected_graph(20), mask_seed in any::<u64>()) {
        let bg = BitGraph::from_graph(&g).unwrap();
        let n = g.num_nodes();
        let mask = if n == 64 { mask_seed } else { mask_seed % (1u64 << n) };
        let verts: Vec<NodeId> = (0..n as u32).filter(|&v| mask >> v & 1 == 1).collect();
        let reference = wiener_index_of_subset(&g, &verts).unwrap();
        prop_assert_eq!(bg.wiener(mask), reference);
    }

    /// Lemma 10 / Lemma 3's AM-GM machinery: at λ* = sqrt(sum/|H|),
    /// B(·)² = 4·Ã(·); for any other λ, B is no smaller.
    #[test]
    fn lambda_optimality(k in 1usize..500, sum in 1u64..100_000, factor in 0.1f64..10.0) {
        let star = optimal_lambda(k, sum);
        prop_assume!(star.is_finite() && star > 0.0);
        let b_star = objective_b(k, sum, star);
        let a = objective_a_tilde(k, sum) as f64;
        prop_assert!((b_star * b_star - 4.0 * a).abs() <= 1e-6 * (4.0 * a).max(1.0));
        prop_assert!(objective_b(k, sum, star * factor) >= b_star - 1e-9);
    }

    /// normalize_query is idempotent and order-insensitive.
    #[test]
    fn normalize_query_canonical(g in arb_connected_graph(30), seed in any::<u64>()) {
        let q = pick_terminals(&g, seed, 8);
        let once = normalize_query(&g, &q).unwrap();
        let twice = normalize_query(&g, &once).unwrap();
        prop_assert_eq!(&once, &twice);
        let mut reversed = q.clone();
        reversed.reverse();
        prop_assert_eq!(once, normalize_query(&g, &reversed).unwrap());
    }

    /// Batched vs per-root `ws-q` parity on the paper's evaluation
    /// families (ER / BA / SBM): routing Algorithm 1's root sweep
    /// through the multi-source kernel — with parent trees reconstructed
    /// on demand from the distance matrix — must produce bit-identical
    /// connectors, objective values, and candidate counts.
    #[test]
    fn wsq_batched_matches_per_root_on_families(
        (family, seed) in (0usize..3, any::<u64>()),
        q_seed in any::<u64>(),
    ) {
        use mwc_core::wsq::{WienerSteiner, WsqConfig};
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 120 + (seed % 80) as usize;
        let raw = match family {
            0 => mwc_graph::generators::gnp(n, 0.04, &mut rng),
            1 => mwc_graph::generators::barabasi_albert(n, 3, &mut rng),
            _ => {
                let third = n / 3;
                mwc_graph::generators::planted_partition(
                    &[third, third, n - 2 * third],
                    0.12,
                    0.01,
                    &mut rng,
                )
                .graph
            }
        };
        // Query inside one component so both paths solve (parity on the
        // rejection path is covered by unit tests).
        let (g, _) = mwc_graph::connectivity::largest_component_graph(&raw).unwrap();
        prop_assume!(g.num_nodes() >= 8);
        let mut qrng = rand::rngs::StdRng::seed_from_u64(q_seed);
        let size = qrng.gen_range(2..=5usize);
        let q: Vec<NodeId> = (0..size)
            .map(|_| qrng.gen_range(0..g.num_nodes() as NodeId))
            .collect();
        let solve = |batch: bool| {
            WienerSteiner::with_config(
                &g,
                WsqConfig { batch, parallel: false, ..WsqConfig::default() },
            )
            .solve(&q)
            .unwrap()
        };
        let on = solve(true);
        let off = solve(false);
        prop_assert_eq!(on.connector.vertices(), off.connector.vertices());
        prop_assert_eq!(on.wiener_index, off.wiener_index);
        prop_assert_eq!(on.num_candidates, off.num_candidates);
        prop_assert_eq!(on.best_root, off.best_root);
    }

    /// Coalesced-group parity: packing heterogeneous concurrent queries
    /// into one `solve_group` window — shared cross-request MS-BFS sweeps,
    /// within-window dedup, mixed solvers and options — must answer every
    /// query bit-identically to a direct per-query `solve_with` call.
    #[test]
    fn solve_group_matches_direct_solves(
        g in arb_connected_graph(80),
        seeds in proptest::collection::vec(any::<u64>(), 2..7),
    ) {
        use mwc_core::engine::{GroupQuery, QueryEngine, QueryOptions};
        use rand::{Rng, SeedableRng};
        let (g, _) = mwc_graph::connectivity::largest_component_graph(&g).unwrap();
        prop_assume!(g.num_nodes() >= 6);
        let solvers = ["ws-q", "ws-q+ls", "ws-q-approx"];
        let queries: Vec<GroupQuery> = seeds
            .iter()
            .map(|&s| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(s);
                let size = rng.gen_range(2..=4usize);
                let q: Vec<NodeId> = (0..size)
                    .map(|_| rng.gen_range(0..g.num_nodes() as NodeId))
                    .collect();
                let solver = solvers[(s % solvers.len() as u64) as usize];
                let options = if s % 3 == 0 {
                    QueryOptions::new().no_cache()
                } else {
                    QueryOptions::default()
                };
                GroupQuery::new(solver, q, options)
            })
            .collect();
        let grouped = QueryEngine::new(&g);
        let reference = QueryEngine::new(&g);
        let outcome = grouped.solve_group(&queries);
        prop_assert_eq!(outcome.results.len(), queries.len());
        for (gq, result) in queries.iter().zip(&outcome.results) {
            let direct = reference.solve_with(&gq.solver, &gq.q, &gq.options);
            match (result, direct) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(a.connector.vertices(), b.connector.vertices());
                    prop_assert_eq!(a.wiener_index, b.wiener_index);
                    prop_assert_eq!(a.candidates, b.candidates);
                }
                (Err(a), Err(b)) => {
                    prop_assert_eq!(a.to_string(), b.to_string());
                }
                (a, b) => prop_assert!(false, "outcome mismatch: {a:?} vs {b:?}"),
            }
        }
    }

    /// Lemma 4's sandwich: for any Steiner tree T of G_{r,λ},
    /// B(T,r,λ) − λ ≤ Σ_{(u,v) ∈ T} w(u,v) ≤ 2(B(T,r,λ) − λ).
    #[test]
    fn lemma4_sandwich(g in arb_connected_graph(40), seed in any::<u64>(), lam_num in 1u32..40) {
        let lambda = lam_num as f64 / 4.0;
        let terminals = pick_terminals(&g, seed, 5);
        let r = terminals[0];
        let dist_r = bfs_distances(&g, r);
        let weight = |u: NodeId, v: NodeId| {
            lambda + dist_r[u as usize].max(dist_r[v as usize]) as f64 / lambda
        };
        let tree = mehlhorn_steiner(&g, &terminals, weight).unwrap();
        let tree_weight: f64 = tree.edges.iter().map(|&(u, v)| weight(u, v)).sum();
        let sum_dist: u64 = tree.nodes.iter().map(|&v| dist_r[v as usize] as u64).sum();
        let b = objective_b(tree.num_nodes(), sum_dist, lambda);
        prop_assert!(b - lambda <= tree_weight + 1e-6, "lower side: B-λ = {}, w = {tree_weight}", b - lambda);
        prop_assert!(tree_weight <= 2.0 * (b - lambda) + 1e-6, "upper side");
    }
}
